//! Regression suite for the deterministic observability layer
//! (`wf_platform::telemetry`).
//!
//! Locks down the three guarantees DESIGN.md §8 promises:
//!
//! 1. **Determinism** — the same chaos seed produces a bit-identical
//!    [`TelemetrySnapshot`] (and byte-identical JSON export) no matter how
//!    the shard workers interleave, because every recorded value derives
//!    from the seeded simulation, never from wall time.
//! 2. **Conservation** — counters reconcile: every entity entering a
//!    pipeline run leaves as processed or failed, every bus call is ok or
//!    error, and histogram bucket counts sum to the observation count.
//! 3. **Format stability** — the canonical JSON export matches a golden
//!    file (sorted keys, stable field set), so the `wfsm metrics` output
//!    format cannot drift silently.

use std::sync::Arc;
use wf_platform::{
    ChaosCluster, Entity, EntityMiner, MinerPipeline, NodeHealth, TelemetrySnapshot,
};
use wf_types::{NodeId, Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

fn touch_pipeline() -> MinerPipeline {
    MinerPipeline::new().add(Box::new(TouchMiner))
}

/// A full chaos run: ingest-seeded store, degraded and down nodes, bus
/// traffic, a pipeline pass, an index rebuild, and some queries — then
/// one cluster-wide snapshot.
fn chaos_snapshot(seed: u64) -> TelemetrySnapshot {
    let cluster = ChaosCluster::new(4, 60)
        .chaos(seed, 0.15)
        .retry(RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            timeout_budget_ms: 50_000,
        })
        .degrade(NodeId(1))
        .down(NodeId(2))
        .build()
        .unwrap();
    cluster
        .bus()
        .register("annotate", Arc::new(|v: &serde_json::Value| Ok(v.clone())));
    for i in 0..20 {
        let _ = cluster.bus().call("annotate", &serde_json::json!(i));
    }
    cluster.run_pipeline(&touch_pipeline());
    cluster.rebuild_index();
    for query in ["cameras", "synthetic", "absent"] {
        let _ = cluster
            .indexer()
            .query(&wf_platform::Query::Term(query.into()));
    }
    cluster.metrics_snapshot()
}

/// Guarantee 1: bit-identical snapshots from identical seeds, across
/// fully concurrent runs touching every instrumented component.
#[test]
fn same_seed_gives_identical_snapshots() {
    let a = chaos_snapshot(20050405);
    let b = chaos_snapshot(20050405);
    assert_eq!(a, b, "same seed must reproduce the exact snapshot");
    assert_eq!(
        a.to_json_string(),
        b.to_json_string(),
        "JSON export must be byte-identical"
    );
}

/// Different seeds must actually change something (the layer is not
/// accidentally constant).
#[test]
fn different_seeds_diverge() {
    let a = chaos_snapshot(1);
    let b = chaos_snapshot(2);
    assert_ne!(a, b, "different fault seeds should perturb the metrics");
}

/// Guarantee 2 on the bus: calls partition into ok + errors.
#[test]
fn bus_counters_conserve_calls() {
    let snap = chaos_snapshot(0xBEEF);
    assert!(snap.counter("bus.calls") > 0);
    assert_eq!(
        snap.counter("bus.calls"),
        snap.counter("bus.ok") + snap.counter("bus.errors")
    );
    // flushed per-service stats agree with the bus-wide totals
    assert_eq!(
        snap.counter("bus.service.annotate.calls"),
        snap.counter("bus.calls")
    );
}

/// The JSON export round-trips exactly through the parser.
#[test]
fn snapshot_export_round_trips() {
    let snap = chaos_snapshot(7);
    let text = snap.to_json_string();
    let back = TelemetrySnapshot::from_json_str(&text).unwrap();
    assert_eq!(snap, back);
}

/// Guarantee 3: the export format matches the golden file. Regenerate
/// with `UPDATE_GOLDEN=1 cargo test --test telemetry -- golden`.
#[test]
fn golden_json_snapshot() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_snapshot.json"
    );
    let rendered = chaos_snapshot(20050405).to_json_string() + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "metrics JSON drifted from tests/golden/metrics_snapshot.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Parse-error paths of the snapshot format: every malformed input is a
/// descriptive `Err`, never a panic or a silently-wrong snapshot.
#[test]
fn snapshot_parse_rejects_malformed_input() {
    // not JSON at all
    let err = TelemetrySnapshot::from_json_str("counters: 1").unwrap_err();
    assert!(!err.is_empty());
    // truncated file (cut mid-object, as a partial download would be)
    let full = chaos_snapshot(5).to_json_string();
    let truncated = &full[..full.len() / 2];
    assert!(TelemetrySnapshot::from_json_str(truncated).is_err());
    // root must be an object
    let err = TelemetrySnapshot::from_json_str("[1, 2]").unwrap_err();
    assert!(err.contains("must be an object"), "{err}");
    // sections must be objects
    let err = TelemetrySnapshot::from_json_str(r#"{"counters": 7}"#).unwrap_err();
    assert!(err.contains("counters must be an object"), "{err}");
    // counters must be non-negative integers, and the message names the key
    let err = TelemetrySnapshot::from_json_str(r#"{"counters": {"x": -1}}"#).unwrap_err();
    assert!(err.contains("counter x"), "{err}");
    let err = TelemetrySnapshot::from_json_str(r#"{"counters": {"x": "many"}}"#).unwrap_err();
    assert!(err.contains("counter x"), "{err}");
    // gauges must be integers
    let err = TelemetrySnapshot::from_json_str(r#"{"gauges": {"g": true}}"#).unwrap_err();
    assert!(err.contains("gauge g"), "{err}");
    // histogram fields and buckets are validated too
    let err =
        TelemetrySnapshot::from_json_str(r#"{"histograms": {"h": {"count": "x"}}}"#).unwrap_err();
    assert!(err.contains("count"), "{err}");
    let err = TelemetrySnapshot::from_json_str(
        r#"{"histograms": {"h": {"count": 1, "sum": 1, "min": 1, "max": 1,
            "buckets": [{"le": "wide", "count": 1}]}}}"#,
    )
    .unwrap_err();
    assert!(err.contains("bucket le"), "{err}");
    let err = TelemetrySnapshot::from_json_str(
        r#"{"histograms": {"h": {"count": 1, "sum": 1, "min": 1, "max": 1,
            "buckets": [{"le": 8, "count": 1, "exemplar": {"value": null, "trace": 1}}]}}}"#,
    )
    .unwrap_err();
    assert!(err.contains("exemplar value"), "{err}");
}

/// Unknown keys are ignored (old readers accept newer exports), and
/// missing sections default to empty.
#[test]
fn snapshot_parse_tolerates_unknown_keys_and_missing_sections() {
    let snap = TelemetrySnapshot::from_json_str(
        r#"{"counters": {"a": 1}, "future_section": {"x": [1, 2]}, "schema_version": 9}"#,
    )
    .unwrap();
    assert_eq!(snap.counter("a"), 1);
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    // an empty object parses as the default snapshot
    assert_eq!(
        TelemetrySnapshot::from_json_str("{}").unwrap(),
        TelemetrySnapshot::default()
    );
}

/// A fully-down cluster still snapshots deterministically, with every
/// entity accounted as failed.
#[test]
fn fully_down_cluster_accounts_everything_failed() {
    let cluster = ChaosCluster::new(2, 10)
        .chaos(3, 0.1)
        .down(NodeId(0))
        .down(NodeId(1))
        .build()
        .unwrap();
    cluster.run_pipeline(&touch_pipeline());
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("pipeline.entities_in"), 10);
    assert_eq!(snap.counter("pipeline.processed"), 0);
    assert_eq!(snap.counter("pipeline.failed"), 10);
    assert_eq!(snap.counter("pipeline.skipped_shards"), 2);
}

/// Percentiles (p50/p95/p99) are derived from the bucket counts at
/// export time and shown in both renderings.
#[test]
fn percentiles_render_in_table_and_json() {
    let snap = chaos_snapshot(20050405);
    let table = snap.to_table();
    for col in ["p50", "p95", "p99"] {
        assert!(table.contains(col), "missing {col} column in:\n{table}");
    }
    let json = snap.to_json_string();
    for key in ["\"p50\"", "\"p95\"", "\"p99\""] {
        assert!(json.contains(key), "missing {key} in JSON export");
    }
    // spot-check one histogram: the JSON p95 equals the recomputed value
    let (name, hs) = snap
        .histograms
        .iter()
        .find(|(_, h)| h.count > 0)
        .expect("chaos run records histograms");
    let needle = format!("\"p95\": {}", hs.percentile(95.0));
    assert!(
        json.contains(&needle),
        "histogram {name} should export {needle}"
    );
}

/// The chaos run's traces land in the flight recorder, and the recorder's
/// activity shows up in the same snapshot as `trace.*` counters.
#[test]
fn trace_counters_join_the_snapshot() {
    let snap = chaos_snapshot(20050405);
    assert!(
        snap.counter("trace.spans") > 0,
        "pipeline + rebuild runs must record spans"
    );
}

/// Health changes and store churn show up in gauges.
#[test]
fn store_gauge_tracks_mutations() {
    let cluster = ChaosCluster::new(2, 5).build().unwrap();
    cluster.set_health(NodeId(1), NodeHealth::Down);
    let id = cluster.store().ids()[0];
    cluster.store().delete(id);
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.gauge("store.entities"), 4);
    assert_eq!(snap.counter("store.delete.ok"), 1);
    assert_eq!(snap.gauge("store.entities"), cluster.store().len() as i64);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Counter conservation under arbitrary chaos: everything that
        /// goes into a pipeline run comes out processed or failed, and
        /// the registry's counters agree with the returned stats.
        #[test]
        fn entities_in_equals_processed_plus_failed(
            seed in 0u64..10_000,
            nodes in 1usize..5,
            docs in 0usize..60,
            rate_pct in 0u32..50,
        ) {
            let cluster = ChaosCluster::new(nodes, docs)
                .chaos(seed, rate_pct as f64 / 100.0)
                .build()
                .unwrap();
            let stats = cluster.run_pipeline(&touch_pipeline());
            let snap = cluster.metrics_snapshot();
            prop_assert_eq!(snap.counter("pipeline.entities_in"), docs as u64);
            prop_assert_eq!(
                snap.counter("pipeline.entities_in"),
                snap.counter("pipeline.processed") + snap.counter("pipeline.failed")
            );
            prop_assert_eq!(snap.counter("pipeline.processed"), stats.processed as u64);
            prop_assert_eq!(snap.counter("pipeline.failed"), stats.failed as u64);
            prop_assert_eq!(snap.counter("pipeline.retries"), stats.retries);
        }

        /// Histogram bucket invariants for arbitrary observation sets:
        /// bucket counts sum to the observation count, min ≤ max, and
        /// the sum matches exactly.
        #[test]
        fn histogram_invariants_hold(values in prop::collection::vec(0u64..200_000, 0..50)) {
            let tele = wf_platform::Telemetry::new();
            let h = tele.histogram("prop");
            for &v in &values {
                h.record(v);
            }
            let snap = tele.snapshot();
            let hs = snap.histogram("prop").unwrap();
            prop_assert_eq!(hs.count as usize, values.len());
            prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
            // bucket counts must partition the observations
            prop_assert_eq!(hs.buckets.iter().map(|(_, c)| c).sum::<u64>(), hs.count);
            if values.is_empty() {
                prop_assert_eq!(hs.min, 0);
                prop_assert_eq!(hs.max, 0);
                prop_assert!(hs.buckets.is_empty());
            } else {
                prop_assert_eq!(hs.min, *values.iter().min().unwrap());
                prop_assert_eq!(hs.max, *values.iter().max().unwrap());
                prop_assert!(hs.min <= hs.max);
            }
            // bucket bounds strictly ascend, overflow (None) last if present
            for pair in hs.buckets.windows(2) {
                match (pair[0].0, pair[1].0) {
                    (Some(a), Some(b)) => prop_assert!(a < b),
                    (Some(_), None) => {}
                    (None, _) => prop_assert!(false, "overflow bucket must be last"),
                }
            }
        }

        /// The JSON export is a fixpoint: export → parse → export
        /// reproduces the exact bytes, for arbitrary snapshots including
        /// empty histograms and zero-count buckets. (The derived
        /// percentile keys are recomputed, not stored, so they must come
        /// out identical on re-export.)
        #[test]
        fn snapshot_json_export_is_a_fixpoint(
            counters in prop::collection::vec(0u64..1_000_000, 0..5),
            gauges in prop::collection::vec(-500i64..500, 0..4),
            steps in prop::collection::vec(1u64..50, 0..6),  // ascending bound increments
            bucket_counts in prop::collection::vec(0u64..4, 0..6), // may be zero
            overflow in 0u64..4,                             // 0 = no overflow bucket
            sum in 0u64..100_000,
        ) {
            let mut snap = TelemetrySnapshot::default();
            for (i, v) in counters.into_iter().enumerate() {
                snap.counters.insert(format!("c.{i}"), v);
            }
            for (i, v) in gauges.into_iter().enumerate() {
                snap.gauges.insert(format!("g.{i}"), v);
            }
            let mut bound = 0u64;
            let mut buckets: Vec<(Option<u64>, u64)> = Vec::new();
            let mut count = 0u64;
            for (step, c) in steps.iter().zip(bucket_counts.iter()) {
                bound += step; // strictly ascending bounds, counts may be 0
                buckets.push((Some(bound), *c));
                count += c;
            }
            if overflow > 0 {
                buckets.push((None, overflow - 1)); // possibly zero-count overflow
                count += overflow - 1;
            }
            snap.histograms.insert(
                "h.main".to_string(),
                wf_platform::HistogramSnapshot {
                    count,
                    sum,
                    min: 0,
                    max: bound,
                    buckets,
                    exemplars: Vec::new(),
                },
            );
            // an explicitly empty histogram in every case
            snap.histograms.insert(
                "h.empty".to_string(),
                wf_platform::HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    min: 0,
                    max: 0,
                    buckets: Vec::new(),
                    exemplars: Vec::new(),
                },
            );
            let text = snap.to_json_string();
            let back = TelemetrySnapshot::from_json_str(&text).unwrap();
            // parse must reconstruct the snapshot, and re-export must
            // reproduce the exact bytes (the derived p50/p95/p99 keys are
            // recomputed from the buckets, never stored)
            prop_assert_eq!(&back, &snap);
            prop_assert_eq!(back.to_json_string(), text);
        }

        /// Span durations land in the span histogram exactly.
        #[test]
        fn spans_accumulate_exactly(durations in prop::collection::vec(0u64..10_000, 1..20)) {
            let tele = wf_platform::Telemetry::new();
            for &d in &durations {
                let mut span = tele.span("step");
                span.advance(d);
                prop_assert_eq!(span.finish(), d);
            }
            let snap = tele.snapshot();
            let hs = snap.histogram("span.step.sim_ms").unwrap();
            prop_assert_eq!(hs.count as usize, durations.len());
            prop_assert_eq!(hs.sum, durations.iter().sum::<u64>());
        }
    }
}

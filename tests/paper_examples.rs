//! The paper's worked examples, end to end through the public API.

use webfountain_sentiment::prelude::*;
use webfountain_sentiment::sentiment::mention_polarities;

fn subjects() -> SubjectList {
    SubjectList::builder()
        .subject("Sony PDA", ["Sony PDA"])
        .subject("NR70", ["NR70", "NR70 series"])
        .subject("T series CLIEs", ["T series CLIEs", "T series"])
        .build()
}

fn polarities(text: &str) -> Vec<(String, Polarity)> {
    let miner = SentimentMiner::with_default_resources();
    let records = miner.analyze_text(text, &subjects());
    mention_polarities(&records)
        .into_iter()
        .map(|(s, _, p)| (s, p))
        .collect()
}

/// Paper §1.2 sample sentence 1: "As with every Sony PDA before it, the
/// NR70 series is equipped with Sony's own Memory Stick expansion."
/// Expected: Sony PDA positive, NR70 positive.
#[test]
fn sample_sentence_1() {
    let got = polarities(
        "As with every Sony PDA before it, the NR70 series is equipped with \
         Sony's own Memory Stick expansion.",
    );
    assert!(
        got.contains(&("Sony PDA".to_string(), Polarity::Positive)),
        "{got:?}"
    );
    assert!(
        got.contains(&("NR70".to_string(), Polarity::Positive)),
        "{got:?}"
    );
}

/// Paper §1.2 sample sentence 2: expected T series CLIEs negative, NR70
/// positive — the case where ReviewSeer "would assign the same polarity
/// to Sony PDA and T series CLIEs as that of NR70, which is wrong".
#[test]
fn sample_sentence_2() {
    let got = polarities(
        "Unlike the more recent T series CLIEs, the NR70 does not require an \
         add-on adapter for MP3 playback, which is certainly a welcome change.",
    );
    assert!(
        got.contains(&("T series CLIEs".to_string(), Polarity::Negative)),
        "{got:?}"
    );
    assert!(
        got.contains(&("NR70".to_string(), Polarity::Positive)),
        "{got:?}"
    );
}

/// Paper §1.2 sample sentence 3: NR70 positive (primary phrase) and a
/// negative aspect (the lack of non-memory Memory Sticks).
#[test]
fn sample_sentence_3() {
    let text = "The Memory Stick support in the NR70 series is well implemented \
                and functional, although there is still a lack of non-memory \
                Memory Sticks for consumer consumption.";
    let miner = SentimentMiner::with_default_resources();
    let subjects = SubjectList::builder()
        .subject("NR70", ["NR70", "NR70 series"])
        .subject("Memory Stick", ["Memory Stick", "Memory Sticks"])
        .build();
    let records = miner.analyze_text(text, &subjects);
    let got: Vec<(String, Polarity)> = records
        .iter()
        .map(|r| (r.subject.clone(), r.polarity))
        .collect();
    // the positive primary phrase reaches the NR70 series (subject PP)
    assert!(
        got.contains(&("NR70".to_string(), Polarity::Positive)),
        "{got:?}"
    );
    // the existential "lack of ..." clause marks the Memory Stick aspect
    // negative
    assert!(
        got.contains(&("Memory Stick".to_string(), Polarity::Negative)),
        "{got:?}"
    );
}

/// Paper §4.2: "I am impressed by the flash capabilities." →
/// (flash capability, +).
#[test]
fn impress_pattern_example() {
    let miner = SentimentMiner::with_default_resources();
    let subjects = SubjectList::builder()
        .subject("flash", ["flash", "flash capabilities"])
        .build();
    let records = miner.analyze_text("I am impressed by the flash capabilities.", &subjects);
    assert!(records
        .iter()
        .any(|r| r.subject == "flash" && r.polarity == Polarity::Positive));
}

/// Paper §4.2: "This camera takes excellent pictures." → (camera, +).
#[test]
fn take_pattern_example() {
    let miner = SentimentMiner::with_default_resources();
    let subjects = SubjectList::builder().subject("camera", ["camera"]).build();
    let records = miner.analyze_text("This camera takes excellent pictures.", &subjects);
    assert!(records
        .iter()
        .any(|r| r.subject == "camera" && r.polarity == Polarity::Positive));
}

/// Paper §4.2 lexicon/pattern examples: "The colors are vibrant." /
/// "The company offers high quality products." / "The company offers
/// mediocre services."
#[test]
fn trans_verb_examples() {
    let miner = SentimentMiner::with_default_resources();
    let subjects = SubjectList::builder()
        .subject("colors", ["colors"])
        .subject("company", ["company"])
        .build();
    let pos = miner.analyze_text("The colors are vibrant.", &subjects);
    assert!(pos
        .iter()
        .any(|r| r.subject == "colors" && r.polarity == Polarity::Positive));
    let pos = miner.analyze_text("The company offers high quality products.", &subjects);
    assert!(pos
        .iter()
        .any(|r| r.subject == "company" && r.polarity == Polarity::Positive));
    let neg = miner.analyze_text("The company offers mediocre services.", &subjects);
    assert!(neg
        .iter()
        .any(|r| r.subject == "company" && r.polarity == Polarity::Negative));
}

/// Paper §4.2: "The picture is flawless." (positive) and "The product
/// fails to meet our quality expectations." (negative).
#[test]
fn definition_examples() {
    let miner = SentimentMiner::with_default_resources();
    let subjects = SubjectList::builder()
        .subject("picture", ["picture"])
        .subject("product", ["product"])
        .build();
    let records = miner.analyze_text("The picture is flawless.", &subjects);
    assert!(records
        .iter()
        .any(|r| r.subject == "picture" && r.polarity == Polarity::Positive));
    let records = miner.analyze_text(
        "The product fails to meet our quality expectations.",
        &subjects,
    );
    assert!(records
        .iter()
        .any(|r| r.subject == "product" && r.polarity == Polarity::Negative));
}

/// Paper §3 disambiguation example: "SUN" must not refer to Sunday.
#[test]
fn sun_disambiguation_example() {
    use webfountain_sentiment::spotter::{
        Disambiguator, SpotVerdict, Spotter, SubjectList as SL, TopicContext,
    };
    let subjects = SL::builder().subject("SUN", ["SUN"]).build();
    let spotter = Spotter::new(&subjects);
    let disambiguator = Disambiguator::with_context(TopicContext {
        on_topic: vec!["microsystems".into(), "server".into(), "java".into()],
        off_topic: vec!["sunday".into(), "weather".into(), "sunshine".into()],
        affinities: vec![],
    });
    let on = "SUN Microsystems shipped a new Java server line today.";
    let spots = spotter.spot(on);
    let verdicts = disambiguator.disambiguate(on, &spots);
    assert!(verdicts.iter().all(|v| *v == SpotVerdict::OnTopic));

    let off = "The sun was out all sunday and the weather was kind.";
    let spots = spotter.spot(off);
    let verdicts = disambiguator.disambiguate(off, &spots);
    assert!(verdicts.iter().all(|v| *v == SpotVerdict::OffTopic));
}

/// Paper §3 NER example: "Prof. Wilson of American University" splits
/// into two named entities.
#[test]
fn ner_split_example() {
    use webfountain_sentiment::nlp::Pipeline;
    let entities = Pipeline::new()
        .named_entities("We interviewed Prof. Wilson of American University on Monday.");
    let names: Vec<&str> = entities.iter().map(|e| e.text.as_str()).collect();
    assert!(names.contains(&"Prof. Wilson"), "{names:?}");
    assert!(names.contains(&"American University"), "{names:?}");
}

//! Acceptance suite for the query-time sentiment serving tier
//! (`wf_platform::serving` + `wf_sentiment::{sindex, serve}`).
//!
//! Locks down the PR's guarantees end to end:
//!
//! 1. **Cache coherence** (property) — any answer served from the LRU
//!    result cache is byte-identical to recomputing the same request
//!    against the sentiment index.
//! 2. **Shard-merge** (property) — merging per-shard postings of a
//!    4-way sharded index reproduces exactly the single-shard build:
//!    same postings, same summaries, same top-k ranking.
//! 3. **Conservation under chaos** — with a pinned seed, injected
//!    faults, a mid-stream slow shard, and a mid-stream node loss,
//!    every arrival is accounted for: `requests == ok + shed + errors`,
//!    on both the report and the `serving.*` telemetry counters.
//! 4. **Determinism** — same-seed chaos runs export byte-identical
//!    reports and byte-identical `serving.*` telemetry snapshots, and
//!    the snapshot matches a golden file (`UPDATE_GOLDEN=1` regens).
//! 5. **SLO wiring** — the serving-latency SLO from `default_slos()`
//!    fires under the chaos scenario, so `wfsm doctor` observes the
//!    serving tier like any other subsystem.

use proptest::prelude::*;
use std::sync::Arc;
use wf_platform::{
    default_slos, Annotation, DataStore, Entity, FaultPlan, HealthEngine, NodeHealth, ServeLoop,
    ServingBackend, ServingConfig, SourceKind, Telemetry, TelemetrySnapshot,
};
use wf_sentiment::{SentimentServingBackend, ShardedSentimentIndex};
use wf_types::{Polarity, Span};

const SUBJECTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const POLARITIES: [Polarity; 3] = [Polarity::Positive, Polarity::Negative, Polarity::Neutral];

/// Decodes one generated mark (0..12) into a (subject, polarity) pair.
fn decode(mark: usize) -> (&'static str, Polarity) {
    (SUBJECTS[mark % 4], POLARITIES[(mark / 4) % 3])
}

/// One document per mark, annotated directly (no NLP pipeline) so the
/// property fixtures stay fast across the shim's 64 cases.
fn seeded_store(shards: usize, marks: &[usize]) -> DataStore {
    let store = DataStore::new(shards).unwrap();
    for (i, &mark) in marks.iter().enumerate() {
        let (subject, polarity) = decode(mark);
        let text = format!("document {i} mentions {subject} here");
        let mut entity = Entity::new(format!("test://serving/{i}"), SourceKind::Web, &text);
        entity.annotate(
            Annotation::new("sentiment", Span::new(0, text.len()))
                .with_attr("subject", subject.to_string())
                .with_attr("polarity", polarity.to_string()),
        );
        store.insert(entity);
    }
    store
}

/// The full request surface: every subject, both top-k forms, and an
/// unknown subject to keep the error path in play.
fn full_workload() -> Vec<String> {
    let mut pool: Vec<String> = SUBJECTS
        .iter()
        .map(|s| format!("sentiment of {s}"))
        .collect();
    pool.push("sentiment of alpha".to_string()); // popularity skew
    pool.push("sentiment of alpha".to_string());
    pool.push("top 2 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

/// Renders only the `serving.*` slice of a telemetry snapshot, so the
/// byte-identity assertions are not diluted by unrelated subsystems.
fn serving_snapshot_json(snapshot: &TelemetrySnapshot) -> String {
    let mut filtered = TelemetrySnapshot::default();
    for (name, value) in &snapshot.counters {
        if name.starts_with("serving.") {
            filtered.counters.insert(name.clone(), *value);
        }
    }
    for (name, value) in &snapshot.gauges {
        if name.starts_with("serving.") {
            filtered.gauges.insert(name.clone(), *value);
        }
    }
    for (name, value) in &snapshot.histograms {
        if name.starts_with("serving.") {
            filtered.histograms.insert(name.clone(), value.clone());
        }
    }
    filtered.to_json_string() + "\n"
}

proptest! {
    /// Cache-coherence invariant: every answer the serve loop marks as
    /// a cache hit carries exactly the bytes a fresh recomputation from
    /// the sentiment index produces.
    #[test]
    fn cache_hits_match_recomputation(
        marks in prop::collection::vec(0usize..12, 4..40),
        seed in 0u64..100_000,
    ) {
        let store = seeded_store(4, &marks);
        let backend = SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(&store));
        let config = ServingConfig {
            seed,
            clients: 4,
            qps: 400,
            requests: 48,
            cache_capacity: 3, // small: force evictions and re-inserts
            record_answers: true,
            ..ServingConfig::default()
        };
        let report = ServeLoop::new(&backend, Telemetry::new(), config, full_workload())
            .run()
            .unwrap();
        prop_assert_eq!(report.answers.len() as u64, report.ok + report.errors);
        let mut hits_checked = 0;
        for answer in &report.answers {
            if !answer.cached {
                continue;
            }
            let fresh = backend.execute(&answer.request).unwrap();
            prop_assert!(
                answer.body == fresh.body,
                "cache hit for {:?} diverged from recomputation",
                &answer.request
            );
            hits_checked += 1;
        }
        prop_assert_eq!(hits_checked, report.cache_hits);
    }

    /// Shard-merge invariant: building the index 4-way sharded and
    /// merging per-shard postings reproduces the single-shard build
    /// exactly — postings, summaries, and top-k ranking.
    #[test]
    fn sharded_index_merges_to_single_shard_build(
        marks in prop::collection::vec(0usize..12, 1..40),
    ) {
        let sharded = ShardedSentimentIndex::build_from_store(&seeded_store(4, &marks));
        let single = ShardedSentimentIndex::build_from_store(&seeded_store(1, &marks));
        prop_assert_eq!(sharded.shard_count(), 4);
        prop_assert_eq!(single.shard_count(), 1);
        prop_assert_eq!(sharded.posting_count(), single.posting_count());
        prop_assert_eq!(sharded.subjects(), single.subjects());
        for subject in sharded.subjects() {
            let merged = sharded.merged_postings(&subject);
            let flat = single.merged_postings(&subject);
            prop_assert_eq!(merged.len(), flat.len());
            for (m, f) in merged.iter().zip(flat.iter()) {
                prop_assert_eq!(m.doc, f.doc);
                prop_assert_eq!(m.subject.clone(), f.subject.clone());
                prop_assert_eq!(m.polarity, f.polarity);
                prop_assert_eq!(m.sentence_span, f.sentence_span);
                prop_assert_eq!(m.sentence.clone(), f.sentence.clone());
            }
            prop_assert_eq!(sharded.summary(&subject), single.summary(&subject));
        }
        for polarity in POLARITIES {
            prop_assert_eq!(sharded.top_k(3, polarity), single.top_k(3, polarity));
        }
    }
}

/// The pinned chaos scenario shared by the conservation, determinism,
/// golden, and SLO tests: faults on the serving path, a shard turning
/// slow a third of the way in, and a node loss at the halfway mark.
const CHAOS_SEED: u64 = 20050405;

fn chaos_backend() -> SentimentServingBackend {
    let marks: Vec<usize> = (0..24).map(|i| i % 12).collect();
    let store = seeded_store(4, &marks);
    SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(&store))
}

fn chaos_config(seed: u64) -> ServingConfig {
    ServingConfig {
        seed,
        clients: 6,
        qps: 800,
        requests: 240,
        cache_capacity: 8,
        queue_capacity: 32,
        ..ServingConfig::default()
    }
}

/// Runs the chaos scenario and returns the report plus the `serving.*`
/// telemetry export; optionally drives a health engine on the side.
fn chaos_run(
    seed: u64,
    mut engine: Option<&mut HealthEngine>,
) -> (wf_platform::ServingReport, String) {
    let backend = chaos_backend();
    let telemetry = Telemetry::new();
    if let Some(engine) = engine.as_deref_mut() {
        *engine = HealthEngine::with_telemetry(default_slos(), Arc::clone(&telemetry));
    }
    let telemetry_for_observer = Arc::clone(&telemetry);
    let mut observe = |now_sim_ms: u64| {
        if let Some(engine) = engine.as_deref_mut() {
            engine.observe(now_sim_ms, &telemetry_for_observer.snapshot());
        }
    };
    let report = ServeLoop::new(
        &backend,
        Arc::clone(&telemetry),
        chaos_config(seed),
        full_workload(),
    )
    .with_fault_plan(FaultPlan::uniform(seed, 0.15))
    .with_trigger(80, || backend.set_shard_health(1, NodeHealth::Degraded))
    .with_trigger(120, || backend.set_shard_health(2, NodeHealth::Down))
    .run_observed(&mut observe)
    .unwrap();
    (report, serving_snapshot_json(&telemetry.snapshot()))
}

/// Conservation law: every arrival is exactly one of ok / shed / error,
/// on the report and on the exported counters alike — even with faults,
/// a degraded shard, and a node loss mid-stream.
#[test]
fn chaos_stream_conserves_every_request() {
    let backend = chaos_backend();
    let telemetry = Telemetry::new();
    let report = ServeLoop::new(
        &backend,
        Arc::clone(&telemetry),
        chaos_config(CHAOS_SEED),
        full_workload(),
    )
    .with_fault_plan(FaultPlan::uniform(CHAOS_SEED, 0.15))
    .with_trigger(80, || backend.set_shard_health(1, NodeHealth::Degraded))
    .with_trigger(120, || backend.set_shard_health(2, NodeHealth::Down))
    .run()
    .unwrap();

    assert_eq!(report.requests, 240);
    assert_eq!(
        report.requests,
        report.ok + report.shed + report.errors,
        "conservation law violated: {report:?}"
    );
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counter("serving.requests"), report.requests);
    assert_eq!(
        snapshot.counter("serving.requests"),
        snapshot.counter("serving.ok")
            + snapshot.counter("serving.shed")
            + snapshot.counter("serving.errors"),
    );
    // The scenario actually exercises every path: successes before (and
    // cached ones after) the node loss, shedding under the slow shard's
    // convoy, and Unavailable/NotFound/injected errors.
    assert!(report.ok > 0, "no request succeeded: {report:?}");
    assert!(report.shed > 0, "admission control never shed: {report:?}");
    assert!(
        report.errors > 0,
        "node loss produced no errors: {report:?}"
    );
    assert!(report.cache_hits > 0, "cache never hit: {report:?}");
    assert_eq!(
        snapshot
            .histogram("serving.latency.sim_ms")
            .map(|h| h.count)
            .unwrap_or_default(),
        report.ok + report.errors,
        "every completion records a latency sample"
    );
}

/// Same seed, same bytes: the full report and the `serving.*` telemetry
/// export are byte-identical across runs. A different seed produces a
/// different trajectory (sanity check that the assertion has teeth).
#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let (report_a, snapshot_a) = chaos_run(CHAOS_SEED, None);
    let (report_b, snapshot_b) = chaos_run(CHAOS_SEED, None);
    assert_eq!(report_a.to_json_string(), report_b.to_json_string());
    assert_eq!(snapshot_a, snapshot_b, "serving.* export must not drift");

    let (_, snapshot_other) = chaos_run(CHAOS_SEED + 1, None);
    assert_ne!(
        snapshot_a, snapshot_other,
        "different seeds should diverge; assertion would be vacuous"
    );
}

/// The `serving.*` export of the pinned chaos scenario matches the
/// checked-in golden byte for byte. `UPDATE_GOLDEN=1` regenerates.
#[test]
fn serving_snapshot_matches_golden() {
    let (_, snapshot) = chaos_run(CHAOS_SEED, None);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/serving_snapshot.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &snapshot).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden exists; UPDATE_GOLDEN=1 to create");
    assert_eq!(
        snapshot, golden,
        "serving snapshot drifted from golden; UPDATE_GOLDEN=1 to regen"
    );
}

/// The serving SLOs added to `default_slos()` actually observe the
/// workload: the latency objective breaches (and fires) under the slow
/// shard + node loss, deterministically.
#[test]
fn serving_slo_fires_under_chaos() {
    let mut engine = HealthEngine::with_telemetry(default_slos(), Telemetry::new());
    let (report, _) = chaos_run(CHAOS_SEED, Some(&mut engine));
    assert!(report.errors > 0);
    let status = engine.status();
    let latency = status
        .iter()
        .find(|s| s.name == "serving-latency-p95")
        .expect("default_slos carries the serving latency SLO");
    assert!(
        latency.firing,
        "slow-shard chaos must breach the serving latency SLO: {status:?}"
    );
    assert!(
        status.iter().any(|s| s.name == "serving-error-rate"),
        "default_slos carries the serving error-rate SLO"
    );
}

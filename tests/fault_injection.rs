//! Robustness suite: the simulated cluster under deterministic fault
//! injection.
//!
//! Every scenario drives real platform components (service bus, sharded
//! store, miner pipeline, cluster manager) through a seeded [`FaultPlan`]
//! and asserts the invariants that make chaos testing trustworthy:
//! conservation (`processed + failed == store.len()`), retry idempotence
//! (entity versions never double-increment), bounded monotone backoff,
//! and bit-for-bit reproducibility from the seed — all on a simulated
//! clock, with no wall-clock sleeps anywhere.

use std::sync::Arc;
use wf_platform::{
    ChaosCluster, Entity, EntityMiner, FaultKind, FaultPlan, FaultRates, MinerPipeline, NodeHealth,
    ServiceBus, SourceKind,
};
use wf_types::{Error, NodeId, Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

struct PanicOnMarker;
impl EntityMiner for PanicOnMarker {
    fn name(&self) -> &str {
        "panic-on-marker"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        assert!(
            !entity.text.contains("KABOOM"),
            "injected mid-pipeline crash"
        );
        Ok(())
    }
}

fn touch_pipeline() -> MinerPipeline {
    MinerPipeline::new().add(Box::new(TouchMiner))
}

/// Scenario 1: conservation holds under a moderate uniform fault plan.
#[test]
fn conservation_under_uniform_chaos() {
    let cluster = ChaosCluster::new(4, 200)
        .chaos(0xBAD5EED, 0.15)
        .build()
        .unwrap();
    let stats = cluster.run_pipeline(&touch_pipeline());
    assert_eq!(
        stats.processed + stats.failed,
        cluster.store().len(),
        "every entity is accounted for exactly once: {stats:?}"
    );
    assert!(stats.retries > 0, "15% fault rate must provoke retries");
    assert_eq!(stats.shard_sim_ms.len(), 4, "one sim-time entry per shard");
}

/// Scenario 2: every node Degraded — amplified fault rates, still
/// conservative, still making progress.
#[test]
fn all_nodes_degraded_still_makes_progress() {
    let cluster = ChaosCluster::new(4, 120)
        .chaos(0xD16E57, 0.05)
        .degrade_all()
        .build()
        .unwrap();
    assert!(cluster.healths().iter().all(|h| *h == NodeHealth::Degraded));
    let stats = cluster.run_pipeline(&touch_pipeline());
    assert_eq!(stats.processed + stats.failed, 120, "{stats:?}");
    assert!(
        stats.processed > 60,
        "a degraded cluster limps, it does not halt: {stats:?}"
    );
    assert!(stats.retries > 0, "degradation amplifies transient faults");
}

/// Scenario 3: a shard worker panicking mid-pipeline is contained — the
/// crashed shard converts to counted failures, other shards finish.
#[test]
fn worker_panic_mid_pipeline_is_contained() {
    let cluster = ChaosCluster::new(4, 40).build().unwrap();
    // plant a poison document; DocId 40 lands on shard 40 % 4 == 0
    let poison = cluster
        .store()
        .insert(Entity::new("chaos://poison", SourceKind::Web, "KABOOM"));
    let poisoned_shard = NodeId((poison.as_u64() % 4) as u32);
    let pipeline = MinerPipeline::new().add(Box::new(PanicOnMarker));
    let stats = cluster.run_pipeline(&pipeline);
    assert_eq!(stats.skipped_shards, 1, "{stats:?}");
    assert_eq!(stats.processed + stats.failed, 41, "{stats:?}");
    let shard_size = cluster.store().shard_ids(poisoned_shard).len();
    assert_eq!(
        stats.failed, shard_size,
        "whole crashed shard counted failed"
    );
}

/// Scenario 4: a Down node's shard fails over to a healthy node; with
/// the whole cluster down, shards are skipped instead of panicking.
#[test]
fn down_nodes_fail_over_then_skip() {
    let cluster = ChaosCluster::new(4, 80).down(NodeId(3)).build().unwrap();
    let stats = cluster.run_pipeline(&touch_pipeline());
    assert_eq!(stats.processed, 80, "failover loses nothing: {stats:?}");
    assert_eq!(stats.failed_over, 1);
    assert_eq!(stats.skipped_shards, 0);

    for n in 0..4 {
        cluster.set_health(NodeId(n), NodeHealth::Down);
    }
    let stats = cluster.run_pipeline(&touch_pipeline());
    assert_eq!(stats.processed, 0);
    assert_eq!(stats.failed, 80);
    assert_eq!(stats.skipped_shards, 4, "nowhere to fail over: {stats:?}");
    let idx = cluster.rebuild_index();
    assert_eq!(idx.skipped_shards, 4);
    assert_eq!(idx.indexed, 0);
}

/// Scenario 5: retry idempotence — conflicts are injected before the
/// store mutation, so a retried entity's version increments exactly once.
#[test]
fn retries_never_double_increment_versions() {
    let cluster = ChaosCluster::new(2, 60)
        .plan(FaultPlan::new(0x1D3).with_rates(FaultRates {
            store_conflict: 0.5,
            ..FaultRates::default()
        }))
        .retry(RetryPolicy {
            max_retries: 20,
            base_backoff_ms: 1,
            max_backoff_ms: 16,
            timeout_budget_ms: u64::MAX,
        })
        .build()
        .unwrap();
    let stats = cluster.run_pipeline(&touch_pipeline());
    assert_eq!(
        stats.processed, 60,
        "20 retries absorb 50% conflicts: {stats:?}"
    );
    assert!(stats.retries >= 20, "conflicts must actually have fired");
    for id in cluster.store().ids() {
        let e = cluster.store().get(id).unwrap();
        assert_eq!(
            e.version, 2,
            "insert(v1) + exactly one successful update(v2), got v{} for {id}",
            e.version
        );
    }
}

/// Scenario 6: identical chaos seeds produce byte-identical PipelineStats
/// (and different seeds diverge).
#[test]
fn identical_seeds_give_byte_identical_stats() {
    let run = |seed: u64| {
        let cluster = ChaosCluster::new(4, 150)
            .chaos(seed, 0.2)
            .degrade(NodeId(1))
            .down(NodeId(2))
            .build()
            .unwrap();
        cluster.run_pipeline(&touch_pipeline())
    };
    let a = run(0xA11CE);
    let b = run(0xA11CE);
    assert_eq!(a, b);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "Debug rendering must match byte for byte"
    );
    let c = run(0xB0B);
    assert_ne!(a, c, "different seeds must explore different fault paths");
}

/// Scenario 7: the service bus retries injected outages with bounded,
/// monotone backoff and enforces its simulated timeout budget.
#[test]
fn service_bus_backoff_is_bounded_and_monotone() {
    let bus = ServiceBus::new();
    bus.register(
        "search",
        Arc::new(|_: &serde_json::Value| Ok(serde_json::json!("hit"))),
    );
    bus.set_fault_plan(Some(FaultPlan::new(0xFEED).with_rates(FaultRates {
        node_down: 0.6,
        ..FaultRates::default()
    })));
    let policy = RetryPolicy {
        max_retries: 12,
        base_backoff_ms: 4,
        max_backoff_ms: 64,
        timeout_budget_ms: u64::MAX,
    };
    bus.set_retry_policy(policy);
    let mut total_retries = 0;
    for _ in 0..80 {
        let (_, outcome) = bus.call_detailed("search", &serde_json::json!({}));
        for (i, backoff) in outcome.backoffs_ms.iter().enumerate() {
            assert_eq!(*backoff, policy.backoff_for(i as u32 + 1));
            assert!(*backoff <= policy.max_backoff_ms);
            if i > 0 {
                assert!(outcome.backoffs_ms[i] >= outcome.backoffs_ms[i - 1]);
            }
        }
        assert_eq!(outcome.backoffs_ms.len(), outcome.retries as usize);
        total_retries += outcome.retries;
    }
    assert!(total_retries > 0, "60% outage rate must trigger backoff");
}

/// Scenario 8: unregistering a service makes calls fail without retry
/// (application error, not transient) while keeping its statistics.
#[test]
fn unregistered_service_fails_fast_keeps_stats() {
    let bus = ServiceBus::new();
    bus.register(
        "index",
        Arc::new(|_: &serde_json::Value| Ok(serde_json::json!(1))),
    );
    bus.set_retry_policy(RetryPolicy::default());
    assert!(bus.call("index", &serde_json::json!({})).is_ok());
    assert!(bus.unregister("index"));
    let (result, outcome) = bus.call_detailed("index", &serde_json::json!({}));
    assert!(matches!(result, Err(Error::Service(_))), "{result:?}");
    assert_eq!(
        outcome.attempts, 1,
        "unregistered is terminal, never retried"
    );
    assert_eq!(bus.stats("index"), Some((2, 1)));
}

/// Scenario 9: timeouts come from the simulated clock, not wall time —
/// a call that "waits" minutes of simulated backoff returns instantly.
#[test]
fn timeouts_are_simulated_not_slept() {
    let bus = ServiceBus::new();
    bus.register(
        "slow",
        Arc::new(|_: &serde_json::Value| Ok(serde_json::json!("zzz"))),
    );
    bus.set_fault_plan(Some(FaultPlan::new(0x51EE9).with_rates(FaultRates {
        node_down: 1.0,
        slow_latency_ms: 10_000,
        ..FaultRates::default()
    })));
    bus.set_retry_policy(RetryPolicy {
        max_retries: 1_000,
        base_backoff_ms: 1_000,
        max_backoff_ms: 60_000,
        timeout_budget_ms: 120_000, // two simulated minutes
    });
    let wall = std::time::Instant::now();
    let (result, outcome) = bus.call_detailed("slow", &serde_json::json!({}));
    assert!(matches!(result, Err(Error::Timeout(_))), "{result:?}");
    assert!(
        outcome.sim_elapsed_ms > 120_000,
        "simulated clock ran past the budget: {outcome:?}"
    );
    assert!(
        wall.elapsed() < std::time::Duration::from_secs(2),
        "two simulated minutes must cost near-zero wall time"
    );
}

/// Scenario 10: a zero-rate plan is transparent — the seed is irrelevant
/// when no fault can fire, and every entity processes exactly once.
#[test]
fn zero_rate_plan_is_transparent() {
    let with_plan = ChaosCluster::new(3, 50).chaos(9, 0.0).build().unwrap();
    let stats_plan = with_plan.run_pipeline(&touch_pipeline());
    let other_seed = ChaosCluster::new(3, 50).chaos(77, 0.0).build().unwrap();
    let stats_other = other_seed.run_pipeline(&touch_pipeline());
    assert_eq!(stats_plan, stats_other, "seeds cannot matter at rate zero");
    assert_eq!(stats_plan.processed, 50);
    assert_eq!(stats_plan.failed, 0);
    assert_eq!(stats_plan.retries, 0);
    assert_eq!(stats_plan.skipped_shards, 0);
    for id in with_plan.store().ids() {
        assert_eq!(with_plan.store().get(id).unwrap().version, 2);
    }
}

/// Regression: `PipelineStats` totals must equal the telemetry
/// registry's `pipeline.*` counters exactly, under the same three pinned
/// chaos seeds CI's fault suite runs (an ISSUE 2 acceptance criterion —
/// the stats struct and the metrics layer are two views of one run and
/// may never disagree).
#[test]
fn pipeline_stats_reconcile_with_telemetry_counters() {
    for seed in [20050405u64, 3405691582, 3735928559] {
        let cluster = ChaosCluster::new(4, 80)
            .chaos(seed, 0.15)
            .degrade(NodeId(0))
            .down(NodeId(3))
            .build()
            .unwrap();
        let stats = cluster.run_pipeline(&touch_pipeline());
        let snap = cluster.metrics_snapshot();
        assert_eq!(
            snap.counter("pipeline.entities_in"),
            80,
            "seed {seed}: every stored entity enters the run"
        );
        assert_eq!(
            snap.counter("pipeline.processed"),
            stats.processed as u64,
            "seed {seed}"
        );
        assert_eq!(
            snap.counter("pipeline.failed"),
            stats.failed as u64,
            "seed {seed}"
        );
        assert_eq!(
            snap.counter("pipeline.retries"),
            stats.retries,
            "seed {seed}"
        );
        assert_eq!(
            snap.counter("pipeline.skipped_shards"),
            stats.skipped_shards as u64,
            "seed {seed}"
        );
        assert_eq!(
            snap.counter("pipeline.failed_over"),
            stats.failed_over as u64,
            "seed {seed}"
        );
        let spans = snap
            .histogram("span.pipeline.shard.sim_ms")
            .expect("per-shard spans recorded");
        assert_eq!(
            spans.count as usize,
            stats.shard_sim_ms.len(),
            "seed {seed}"
        );
        assert_eq!(
            spans.sum,
            stats.shard_sim_ms.iter().sum::<u64>(),
            "seed {seed}: span histogram carries the exact shard sim-ms"
        );
    }
}

/// Accumulation across runs: a second pipeline pass adds onto the same
/// registry counters rather than resetting them.
#[test]
fn telemetry_accumulates_across_pipeline_runs() {
    let cluster = ChaosCluster::new(2, 30).chaos(42, 0.1).build().unwrap();
    let first = cluster.run_pipeline(&touch_pipeline());
    let second = cluster.run_pipeline(&touch_pipeline());
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("pipeline.runs"), 2);
    assert_eq!(snap.counter("pipeline.entities_in"), 60);
    assert_eq!(
        snap.counter("pipeline.processed"),
        (first.processed + second.processed) as u64
    );
    assert_eq!(
        snap.counter("pipeline.failed"),
        (first.failed + second.failed) as u64
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conservation under arbitrary fault plans, shard counts and
        /// corpus sizes: processed + failed == store.len(), always.
        #[test]
        fn stats_conserve_entities(
            seed in 0u64..10_000,
            nodes in 1usize..6,
            docs in 0usize..80,
            rate_pct in 0u32..60,
        ) {
            let cluster = ChaosCluster::new(nodes, docs)
                .chaos(seed, rate_pct as f64 / 100.0)
                .build()
                .unwrap();
            let stats = cluster.run_pipeline(&touch_pipeline());
            prop_assert_eq!(stats.processed + stats.failed, docs);
            prop_assert_eq!(stats.shard_sim_ms.len(), nodes);
        }

        /// Backoff is monotone non-decreasing and bounded by the cap for
        /// any policy.
        #[test]
        fn backoff_monotone_and_bounded(
            base in 0u64..5_000,
            cap_extra in 0u64..100_000,
            retries in 1u32..64,
        ) {
            let policy = RetryPolicy {
                max_retries: retries,
                base_backoff_ms: base,
                max_backoff_ms: base + cap_extra,
                timeout_budget_ms: u64::MAX,
            };
            let mut prev = 0u64;
            for r in 1..=retries {
                let b = policy.backoff_for(r);
                prop_assert!(b >= prev, "shrank at retry {}: {} < {}", r, b, prev);
                prop_assert!(b <= policy.max_backoff_ms);
                prev = b;
            }
        }

        /// Same seed ⇒ identical CallOutcome sequence from the bus;
        /// sequences are compared field by field via Debug.
        #[test]
        fn call_outcome_sequence_is_deterministic(
            seed in 0u64..100_000,
            calls in 1usize..30,
            rate_pct in 0u32..80,
        ) {
            let run = || {
                let bus = ServiceBus::new();
                bus.register("svc", Arc::new(|_: &serde_json::Value| {
                    Ok(serde_json::json!("ok"))
                }));
                bus.set_fault_plan(Some(FaultPlan::uniform(seed, rate_pct as f64 / 100.0)));
                bus.set_retry_policy(RetryPolicy {
                    max_retries: 4,
                    base_backoff_ms: 2,
                    max_backoff_ms: 32,
                    timeout_budget_ms: 5_000,
                });
                (0..calls)
                    .map(|i| {
                        let (_, outcome) = bus.call_detailed("svc", &serde_json::json!(i));
                        format!("{outcome:?}")
                    })
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(), run());
        }

        /// The per-site stream decouples sites: interleaving traffic on
        /// one site never changes another site's draw sequence.
        #[test]
        fn fault_streams_are_site_independent(
            seed in 0u64..100_000,
            burst in 1usize..8,
        ) {
            let plan = FaultPlan::uniform(seed, 0.5);
            let mut solo = plan.stream("site-a");
            let expected: Vec<Option<FaultKind>> = (0..20).map(|_| solo.draw()).collect();
            let mut a = plan.stream("site-a");
            let mut b = plan.stream("site-b");
            let mut seen = Vec::new();
            for _ in 0..20 {
                for _ in 0..burst {
                    let _ = b.draw(); // site-b traffic between site-a draws
                }
                seen.push(a.draw());
            }
            prop_assert_eq!(seen, expected);
        }
    }
}

//! Acceptance suite for the durable layer (`wf_platform::durable` +
//! the cluster crash/restart lifecycle).
//!
//! Locks down the PR's guarantees end to end:
//!
//! 1. **Crash convergence** — with a pinned seed, killing a node
//!    mid-workload and restarting it from snapshot + WAL replay
//!    converges byte-identically with the uninterrupted same-seed run:
//!    same store bytes, same inverted-index query results, same
//!    sentiment-index postings — and the telemetry conservation laws
//!    hold across the restart.
//! 2. **Mid-serve crash** — the serve loop keeps its conservation law
//!    (`requests == ok + shed + errors`) while a node crashes and
//!    restarts mid-stream, deterministically.
//! 3. **Replay idempotency** (property) — recovering a shard any number
//!    of times from the same durable state yields byte-identical
//!    entities, reproduces the live store exactly, and a rebuilt index
//!    answers queries with identical results and identical
//!    `index.postings_scanned` work.
//! 4. **Corruption handling** — torn tails, flipped CRCs, and truncated
//!    snapshots (pinned seeds) stop replay at exactly the last valid
//!    record, and the node still restarts with the surviving prefix.
//! 5. **Golden recovery report** — the `wfsm recover`-style JSON report
//!    of a pinned corruption scenario matches a checked-in golden byte
//!    for byte (`UPDATE_GOLDEN=1` regens).

use proptest::prelude::*;
use std::sync::Arc;
use wf_platform::{
    parse_query, Annotation, Cluster, CorruptionKind, DataStore, DurableStorage, Entity,
    EntityMiner, FaultPlan, Indexer, Ingestor, MinerPipeline, NodeHealth, RawDocument, ServeLoop,
    ServingConfig, SourceKind, StopReason, Telemetry,
};
use wf_sentiment::{AdhocSentimentMiner, SentimentServingBackend, ShardedSentimentIndex};
use wf_types::{DocId, NodeId, Polarity, Result as WfResult, Span};

const SEED: u64 = 20050405;

/// Deterministic corpus: capitalized subjects the ad-hoc miner spots,
/// cycling through clearly positive / negative / neutral phrasings.
fn corpus(n: usize) -> Vec<RawDocument> {
    let subjects = ["Alpha", "Beta", "Gamma", "Delta"];
    let moods = [
        "takes excellent pictures",
        "is absolutely terrible",
        "shipped on a Tuesday",
    ];
    (0..n)
        .map(|i| {
            RawDocument::new(
                format!("durable://doc{i}"),
                SourceKind::Web,
                format!("{} {}.", subjects[i % 4], moods[i % 3]),
            )
        })
        .collect()
}

/// Canonical bytes of a store: every entity as shim-JSON (sorted keys),
/// one per line, ascending id — the convergence currency of this suite.
fn store_bytes(store: &DataStore) -> String {
    let mut entities: Vec<Entity> = Vec::new();
    store.for_each(|e| entities.push(e.clone()));
    entities.sort_by_key(|e| e.id.0);
    entities
        .iter()
        .map(|e| serde_json::to_value(e).unwrap().to_json_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Canonical bytes of a sentiment index: every subject's merged
/// postings in merge order.
fn sindex_bytes(index: &ShardedSentimentIndex) -> String {
    let mut out = String::new();
    for subject in index.subjects() {
        for p in index.merged_postings(&subject) {
            out.push_str(&format!(
                "{subject} {} {} {}..{} {}\n",
                p.doc.0, p.polarity, p.sentence_span.start, p.sentence_span.end, p.sentence
            ));
        }
    }
    out
}

/// Second-wave miner: stamps metadata so the post-restart pipeline run
/// writes fresh WAL updates through the recovered shard.
struct StampMiner;
impl EntityMiner for StampMiner {
    fn name(&self) -> &str {
        "stamp"
    }
    fn process(&self, entity: &mut Entity) -> WfResult<()> {
        let stamp = entity.text.len().to_string();
        entity.metadata.insert("stamp".into(), stamp);
        Ok(())
    }
}

/// The pinned scenario behind the convergence tests: a 4-node durable
/// cluster, ingest + checkpoint, a chaotic sentiment wave, an optional
/// crash/restart of node 2, a second mining wave, and a full reindex.
fn run_scenario(crash: bool) -> (Cluster, ShardedSentimentIndex, usize) {
    let cluster = Cluster::new(4).unwrap();
    cluster
        .attach_durability(Arc::new(DurableStorage::in_memory(4).unwrap()))
        .unwrap();
    Ingestor::new(cluster.store()).ingest_batch(corpus(24));
    cluster.checkpoint().unwrap();
    cluster.set_fault_plan(Some(FaultPlan::uniform(SEED, 0.1)));

    let wave1 = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    let stats = cluster.run_pipeline(&wave1);
    assert_eq!(stats.processed + stats.failed, 24);
    let mut index = ShardedSentimentIndex::build_from_store(cluster.store());

    let mut lost = 0;
    if crash {
        lost = cluster.drop_node_state(NodeId(2));
        assert!(lost > 0, "shard 2 should hold entities");
        // the co-located sentiment shard dies with the node…
        index.clear_shard(2);
        let mut recovered: Vec<Entity> = Vec::new();
        let restart = cluster
            .restart_node_with(NodeId(2), |e| recovered.push(e.clone()))
            .unwrap();
        // …and is rebuilt incrementally from the replayed entities
        index.rebuild_shard(2, &recovered);
        assert_eq!(restart.reindexed, lost, "replay restores every entity");
        assert_eq!(restart.stats.stop, StopReason::EndOfLog);
        assert!(restart.sim_ms > 0, "recovery consumes simulated time");
    }

    let wave2 = MinerPipeline::new().add(Box::new(StampMiner));
    cluster.run_pipeline(&wave2);
    cluster.rebuild_index();
    (cluster, index, lost)
}

/// Guarantee 1: the crashed-and-restarted run converges byte-identically
/// with the uninterrupted same-seed run, across all three state layers.
#[test]
fn crash_restart_converges_with_uninterrupted_run() {
    let (clean, clean_index, _) = run_scenario(false);
    let (crashed, crashed_index, lost) = run_scenario(true);

    // store layer: byte-identical canonical entities
    assert_eq!(
        store_bytes(clean.store()),
        store_bytes(crashed.store()),
        "store must converge after crash + replay"
    );

    // inverted-index layer: identical results and identical work
    for text in [
        "excellent",
        "excellent AND NOT terrible",
        "\"excellent pictures\"",
        "regex:terr.*",
    ] {
        let query = parse_query(text).unwrap();
        let (docs_a, prof_a) = clean.indexer().query_explained(&query).unwrap();
        let (docs_b, prof_b) = crashed.indexer().query_explained(&query).unwrap();
        assert_eq!(docs_a, docs_b, "query {text:?} diverged");
        assert_eq!(
            prof_a.total_scanned(),
            prof_b.total_scanned(),
            "query {text:?} scanned different postings"
        );
    }

    // sentiment-index layer: identical postings and rankings
    assert_eq!(sindex_bytes(&clean_index), sindex_bytes(&crashed_index));
    for polarity in [Polarity::Positive, Polarity::Negative, Polarity::Neutral] {
        assert_eq!(
            clean_index.top_k(3, polarity),
            crashed_index.top_k(3, polarity)
        );
    }

    // conservation laws on the crashed run's telemetry
    let snap = crashed.metrics_snapshot();
    assert_eq!(snap.gauge("store.entities"), 24);
    assert_eq!(snap.counter("cluster.node_crashes"), 1);
    assert_eq!(snap.counter("cluster.node_restarts"), 1);
    assert_eq!(snap.counter("durable.recovered_entities"), lost as u64);
    assert!(snap.counter("durable.recovery_sim_ms") > 0);
    assert!(snap.counter("durable.records_appended") >= snap.counter("durable.records_replayed"));

    // the restart left a trace for `wfsm profile` to attribute
    let traces = crashed.telemetry().recorder().last_traces(16);
    let restart_root = traces
        .iter()
        .flat_map(|(_, roots)| roots)
        .find(|t| t.name == "cluster.restart_node")
        .expect("restart recorded as a trace");
    assert!(restart_root
        .find("cluster.restart_node/recover.replay")
        .is_some());
    assert!(restart_root
        .find("cluster.restart_node/recover.rebuild")
        .is_some());
}

/// Guarantee 2: a crash + restart *mid-serve* keeps every serving
/// conservation law, converges the store, and is deterministic.
#[test]
fn mid_serve_crash_restart_conserves_and_converges() {
    let serve_run = |crash: bool| {
        let cluster = Cluster::new(4).unwrap();
        cluster
            .attach_durability(Arc::new(DurableStorage::in_memory(4).unwrap()))
            .unwrap();
        Ingestor::new(cluster.store()).ingest_batch(corpus(24));
        cluster.checkpoint().unwrap();
        let wave = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
        cluster.run_pipeline(&wave);
        let backend =
            SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(cluster.store()));
        let workload = vec![
            "sentiment of alpha".to_string(),
            "sentiment of beta".to_string(),
            "top 2 +".to_string(),
            "sentiment of zorblax".to_string(),
        ];
        let config = ServingConfig {
            seed: SEED,
            clients: 4,
            qps: 400,
            requests: 120,
            cache_capacity: 8,
            queue_capacity: 16,
            ..ServingConfig::default()
        };
        let mut serve_loop =
            ServeLoop::new(&backend, Arc::clone(cluster.telemetry()), config, workload)
                .with_fault_plan(FaultPlan::uniform(SEED, 0.1));
        if crash {
            serve_loop = serve_loop
                .with_trigger(40, || {
                    backend.set_shard_health(2, NodeHealth::Down);
                    cluster.drop_node_state(NodeId(2));
                })
                .with_trigger(80, || {
                    cluster.restart_node(NodeId(2)).unwrap();
                    backend.set_shard_health(2, NodeHealth::Up);
                });
        }
        let report = {
            let cluster = &cluster;
            serve_loop
                .run_observed(&mut |now_sim_ms| {
                    cluster.advance_clock(now_sim_ms.saturating_sub(cluster.sim_now()));
                })
                .unwrap()
        };
        let bytes = store_bytes(cluster.store());
        let snap = cluster.metrics_snapshot();
        (report, bytes, snap)
    };

    let (report, crashed_bytes, snap) = serve_run(true);
    assert_eq!(report.requests, report.ok + report.shed + report.errors);
    assert_eq!(
        snap.counter("serving.requests"),
        snap.counter("serving.ok") + snap.counter("serving.shed") + snap.counter("serving.errors"),
    );
    assert_eq!(snap.counter("cluster.node_crashes"), 1);
    assert_eq!(snap.counter("cluster.node_restarts"), 1);

    // the restarted store converges with a run that never crashed
    let (_, clean_bytes, _) = serve_run(false);
    assert_eq!(crashed_bytes, clean_bytes);

    // and the whole crash-mid-serve trajectory is deterministic
    let (report_b, bytes_b, _) = serve_run(true);
    assert_eq!(report.to_json_string(), report_b.to_json_string());
    assert_eq!(crashed_bytes, bytes_b);
}

const SUBJECTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const POLARITIES: [Polarity; 3] = [Polarity::Positive, Polarity::Negative, Polarity::Neutral];

/// Directly-annotated entity fixture (no NLP), as in the serving suite.
fn marked_entity(i: usize, mark: usize) -> Entity {
    let subject = SUBJECTS[mark % 4];
    let polarity = POLARITIES[(mark / 4) % 3];
    let text = format!("document {i} mentions {subject} here");
    let mut entity = Entity::new(format!("test://durable/{i}"), SourceKind::Web, &text);
    entity.annotate(
        Annotation::new("sentiment", Span::new(0, text.len()))
            .with_attr("subject", subject.to_string())
            .with_attr("polarity", polarity.to_string()),
    );
    entity
}

proptest! {
    /// Guarantee 3: replaying the same durable state any number of times
    /// is idempotent — byte-identical entities that reproduce the live
    /// store, and a rebuilt index that does identical query work.
    #[test]
    fn wal_replay_is_idempotent(
        marks in prop::collection::vec(0usize..12, 1..24),
        ops in prop::collection::vec(0usize..48, 0..10),
        checkpoint_coin in 0usize..2,
    ) {
        let checkpoint = checkpoint_coin == 1;
        let store = DataStore::new(4).unwrap();
        let storage = Arc::new(DurableStorage::in_memory(4).unwrap());
        store.attach_durability(Arc::clone(&storage)).unwrap();
        let ids: Vec<DocId> = marks
            .iter()
            .enumerate()
            .map(|(i, &mark)| store.insert(marked_entity(i, mark)))
            .collect();
        if checkpoint {
            storage.checkpoint(&store).unwrap();
        }
        // a mixed tail of updates and deletes lands in the WAL
        for &op in &ops {
            let id = ids[op % ids.len()];
            if op % 3 == 0 {
                store.delete(id);
            } else {
                let _ = store.update(id, |e| {
                    e.metadata.insert("touch".into(), op.to_string());
                });
            }
        }

        let recovered_store = |()| {
            let fresh = DataStore::new(4).unwrap();
            for shard in 0..4u32 {
                let recovery = storage.recover_shard(shard).unwrap();
                assert_eq!(recovery.stats.stop, StopReason::EndOfLog);
                for entity in recovery.entities {
                    fresh.restore_entity(entity);
                }
            }
            fresh
        };
        let (first, second) = (recovered_store(()), recovered_store(()));
        prop_assert_eq!(store_bytes(&first), store_bytes(&second));
        prop_assert_eq!(store_bytes(&first), store_bytes(&store));

        // identical query results *and* identical postings-scanned work
        let query = parse_query("mentions").unwrap();
        let indexed = |s: &DataStore| {
            let telemetry = Telemetry::new();
            let indexer = Indexer::with_telemetry(Arc::clone(&telemetry));
            s.for_each(|e| indexer.index_entity(e));
            let (docs, profile) = indexer.query_explained(&query).unwrap();
            (docs, profile.total_scanned())
        };
        let (docs_a, scanned_a) = indexed(&first);
        let (docs_b, scanned_b) = indexed(&second);
        prop_assert_eq!(docs_a, docs_b);
        prop_assert_eq!(scanned_a, scanned_b);
    }
}

/// A durable cluster with a populated WAL tail: ingest, checkpoint,
/// then a mining wave whose updates follow the snapshot in the log.
fn durable_cluster() -> (Cluster, Arc<DurableStorage>) {
    let cluster = Cluster::new(4).unwrap();
    let storage = Arc::new(DurableStorage::in_memory(4).unwrap());
    cluster.attach_durability(Arc::clone(&storage)).unwrap();
    Ingestor::new(cluster.store()).ingest_batch(corpus(16));
    cluster.checkpoint().unwrap();
    let wave = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&wave);
    (cluster, storage)
}

/// Guarantee 4a: a torn WAL tail (pinned seed) stops replay at exactly
/// the record before the victim, and the node restarts on the prefix.
#[test]
fn torn_tail_restart_stops_at_exact_lsn() {
    let (cluster, storage) = durable_cluster();
    let mut stream = FaultPlan::new(99).stream("durable:2");
    let outcome = storage
        .inject_corruption(2, CorruptionKind::TornTail, &mut stream)
        .unwrap();
    let victim = outcome.victim_lsn.expect("torn frame has an LSN");
    cluster.drop_node_state(NodeId(2));
    let restart = cluster.restart_node(NodeId(2)).unwrap();
    assert_eq!(restart.stats.stop, StopReason::TornTail);
    assert_eq!(restart.stats.last_lsn, victim - 1);
    assert!(restart.stats.truncated_bytes > 0);
    // the node is back up and the shard holds the surviving prefix
    assert_eq!(cluster.health_of(NodeId(2)), NodeHealth::Up);
    assert_eq!(
        cluster.store().shard_ids(NodeId(2)).len(),
        restart.reindexed
    );
}

/// Guarantee 4b: a flipped payload byte (pinned seed) fails the CRC and
/// stops replay at exactly the record before the victim.
#[test]
fn bad_crc_restart_stops_at_exact_lsn() {
    let (cluster, storage) = durable_cluster();
    let mut stream = FaultPlan::new(7).stream("durable:1");
    let outcome = storage
        .inject_corruption(1, CorruptionKind::BadCrc, &mut stream)
        .unwrap();
    let victim = outcome.victim_lsn.expect("corrupted frame has an LSN");
    cluster.drop_node_state(NodeId(1));
    let restart = cluster.restart_node(NodeId(1)).unwrap();
    assert_eq!(restart.stats.stop, StopReason::BadCrc);
    assert_eq!(restart.stats.last_lsn, victim - 1);
    assert!(restart.stats.truncated_records > 0);
}

/// Guarantee 4c: a truncated snapshot (pinned seed) keeps its valid
/// prefix; the WAL still replays to end-of-log on top of it.
#[test]
fn truncated_snapshot_restart_recovers_valid_prefix() {
    let (cluster, storage) = durable_cluster();
    let declared = cluster.store().shard_ids(NodeId(3)).len() as u64;
    let mut stream = FaultPlan::new(11).stream("durable:3");
    let outcome = storage
        .inject_corruption(3, CorruptionKind::TruncatedSnapshot, &mut stream)
        .unwrap();
    assert!(outcome.victim_lsn.is_none(), "snapshot damage has no LSN");
    cluster.drop_node_state(NodeId(3));
    let restart = cluster.restart_node(NodeId(3)).unwrap();
    assert!(restart.stats.snapshot_truncated);
    assert_eq!(restart.stats.snapshot_declared, declared);
    assert!(restart.stats.snapshot_entities < declared);
    assert_eq!(restart.stats.stop, StopReason::EndOfLog);
}

/// Guarantee 5: the recovery report of the pinned bad-CRC scenario
/// matches the checked-in golden byte for byte. `UPDATE_GOLDEN=1`
/// regenerates.
#[test]
fn recovery_report_matches_golden() {
    let (_cluster, storage) = durable_cluster();
    let mut stream = FaultPlan::new(7).stream("durable:1");
    storage
        .inject_corruption(1, CorruptionKind::BadCrc, &mut stream)
        .unwrap();
    let report = storage.recovery_report().unwrap().to_json_string();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/recovery_report.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &report).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden exists; UPDATE_GOLDEN=1 to create");
    assert_eq!(
        report, golden,
        "recovery report drifted from golden; UPDATE_GOLDEN=1 to regen"
    );
}

//! Acceptance suite for the structured event log (`wf_platform::evlog`)
//! added by this PR — the third observability pillar next to metrics
//! (`timeseries`) and traces (`trace`/`profile`).
//!
//! Locks down the PR's guarantees end to end:
//!
//! 1. **Conservation law** (property) — `emitted = kept + sampled +
//!    dropped` holds under random emission plans across arbitrary
//!    capacities and sampling budgets, and a zero-capacity log stays
//!    silent (`emitted == 0`).
//! 2. **Sampling determinism** (property) — replaying the same emission
//!    plan yields the identical canonical snapshot, byte for byte.
//! 3. **Chaos goldens** — the pinned chaos serving scenario's event log
//!    matches `tests/golden/evlog_snapshot.json` byte for byte
//!    (`UPDATE_GOLDEN=1` regens), double runs are byte-identical in
//!    both text and JSON, and the JSON export round-trips through
//!    `from_json_str` to the same bytes (parse ↔ export fixpoint).
//! 4. **Trace correlation** — every `error`-level record emitted from a
//!    traced path carries a trace ID that resolves in the flight
//!    recorder (`wfsm trace` can dump the owning trace).

use proptest::prelude::*;
use std::sync::Arc;
use wf_platform::{
    Annotation, DataStore, Entity, EvLog, EvLogSnapshot, FaultPlan, Level, LogFilter, NodeHealth,
    ServeLoop, ServingConfig, SourceKind, Telemetry, TimeSeriesStore,
};
use wf_sentiment::{SentimentServingBackend, ShardedSentimentIndex};
use wf_types::Polarity;

// ---------------------------------------------------------------------
// fixtures: the pinned chaos serving scenario (same shape as
// tests/timeline_profile.rs so the goldens describe one run family)
// ---------------------------------------------------------------------

const CHAOS_SEED: u64 = 20050405;
const SUBJECTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const POLARITIES: [Polarity; 3] = [Polarity::Positive, Polarity::Negative, Polarity::Neutral];

fn seeded_store(shards: usize, marks: &[usize]) -> DataStore {
    let store = DataStore::new(shards).unwrap();
    for (i, &mark) in marks.iter().enumerate() {
        let subject = SUBJECTS[mark % 4];
        let polarity = POLARITIES[(mark / 4) % 3];
        let text = format!("document {i} mentions {subject} here");
        let mut entity = Entity::new(format!("test://evlog/{i}"), SourceKind::Web, &text);
        entity.annotate(
            Annotation::new("sentiment", wf_types::Span::new(0, text.len()))
                .with_attr("subject", subject.to_string())
                .with_attr("polarity", polarity.to_string()),
        );
        store.insert(entity);
    }
    store
}

fn full_workload() -> Vec<String> {
    let mut pool: Vec<String> = SUBJECTS
        .iter()
        .map(|s| format!("sentiment of {s}"))
        .collect();
    pool.push("sentiment of alpha".to_string());
    pool.push("sentiment of alpha".to_string());
    pool.push("top 2 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

fn chaos_backend() -> SentimentServingBackend {
    let marks: Vec<usize> = (0..24).map(|i| i % 12).collect();
    SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(&seeded_store(
        4, &marks,
    )))
}

fn chaos_config() -> ServingConfig {
    ServingConfig {
        seed: CHAOS_SEED,
        clients: 6,
        qps: 800,
        requests: 240,
        cache_capacity: 8,
        queue_capacity: 32,
        ..ServingConfig::default()
    }
}

/// Chaos serving run: returns the telemetry registry whose event log
/// observed the shed / fault / shard-loss decisions.
fn observed_chaos_run() -> Arc<Telemetry> {
    let backend = chaos_backend();
    let telemetry = Telemetry::new();
    let timeline = Arc::new(TimeSeriesStore::new(64, 20));
    ServeLoop::new(
        &backend,
        Arc::clone(&telemetry),
        chaos_config(),
        full_workload(),
    )
    .with_timeline(Arc::clone(&timeline))
    .with_fault_plan(FaultPlan::uniform(CHAOS_SEED, 0.15))
    .with_trigger(80, || backend.set_shard_health(1, NodeHealth::Degraded))
    .with_trigger(120, || backend.set_shard_health(2, NodeHealth::Down))
    .run()
    .unwrap();
    telemetry
}

// ---------------------------------------------------------------------
// 1 + 2. conservation law and replay determinism (properties)
// ---------------------------------------------------------------------

/// One random emission plan entry: (level pick, target pick, sim-ms
/// step). Levels and targets cycle through fixed pools so token-bucket
/// state is exercised per (target, level) pair.
type PlanEntry = (u8, u8, u64);

const PLAN_LEVELS: [Level; 4] = [Level::Error, Level::Warn, Level::Info, Level::Debug];
const PLAN_TARGETS: [&str; 3] = ["bus.svc:probe", "miner.shard:0", "serving.loop"];

fn replay(plan: &[PlanEntry], capacity: usize, burst: u64, refill_ms: u64) -> EvLog {
    let log = EvLog::with_capacity(capacity).with_sampling(burst, refill_ms);
    let mut now = 0u64;
    for (i, &(level, target, step)) in plan.iter().enumerate() {
        now += step;
        log.event(
            PLAN_LEVELS[level as usize % PLAN_LEVELS.len()],
            PLAN_TARGETS[target as usize % PLAN_TARGETS.len()],
            now,
            format!("event {i}"),
            &[("seq", i.to_string())],
        );
    }
    log
}

proptest! {
    /// Every emission is accounted for exactly once: kept in the ring,
    /// suppressed by the sampler, or displaced by capacity.
    #[test]
    fn emission_counters_obey_conservation(
        plan in prop::collection::vec((0u8..8, 0u8..8, 0u64..16), 1..120),
        capacity in 1usize..48,
        burst in 1u64..12,
        refill_ms in 1u64..10,
    ) {
        let log = replay(&plan, capacity, burst, refill_ms);
        prop_assert_eq!(log.emitted(), plan.len() as u64);
        prop_assert_eq!(log.emitted(), log.kept() + log.sampled() + log.dropped());
        prop_assert!(log.kept() <= capacity as u64, "ring can keep at most capacity");
        let snapshot = log.snapshot();
        prop_assert!(snapshot.conserved(), "snapshot must carry the conservation law");
        prop_assert_eq!(snapshot.records.len() as u64, log.kept());
    }

    /// Same plan, same budgets ⇒ the same canonical snapshot. The
    /// token-bucket sampler keys off the simulated clock only, so a
    /// replay cannot diverge.
    #[test]
    fn same_plan_replays_to_identical_snapshot(
        plan in prop::collection::vec((0u8..8, 0u8..8, 0u64..16), 1..80),
        capacity in 1usize..32,
        burst in 1u64..8,
        refill_ms in 1u64..10,
    ) {
        let a = replay(&plan, capacity, burst, refill_ms).snapshot();
        let b = replay(&plan, capacity, burst, refill_ms).snapshot();
        prop_assert_eq!(a.to_json_string(), b.to_json_string());
    }

    /// Capacity zero disables the log entirely — the bench "log-off"
    /// arm: no records, no counters, no overhead accounting.
    #[test]
    fn zero_capacity_log_stays_silent(
        plan in prop::collection::vec((0u8..8, 0u8..8, 0u64..16), 1..40),
    ) {
        let log = replay(&plan, 0, 4, 8);
        prop_assert!(!log.enabled());
        prop_assert_eq!(log.emitted(), 0);
        prop_assert_eq!(log.snapshot().records.len(), 0);
    }
}

// ---------------------------------------------------------------------
// 3. pinned chaos run: golden + byte-identical double export + fixpoint
// ---------------------------------------------------------------------

/// Same seed, same bytes, for both export formats.
#[test]
fn chaos_evlog_exports_are_byte_identical() {
    let a = observed_chaos_run().evlog().snapshot();
    let b = observed_chaos_run().evlog().snapshot();
    assert_eq!(a.to_text(), b.to_text(), "text export drifted");
    assert_eq!(
        a.to_json_string(),
        b.to_json_string(),
        "json export drifted"
    );
    assert!(a.emitted > 0, "chaos run must emit events");
    assert!(a.conserved(), "emitted != kept + sampled + dropped");
    assert!(
        a.records.iter().any(|r| r.target == "serving.loop"),
        "serving loop must log its shed/fault/error decisions"
    );
}

/// The pinned scenario's event log matches the checked-in golden byte
/// for byte. `UPDATE_GOLDEN=1` regenerates.
#[test]
fn chaos_evlog_matches_golden() {
    let json = observed_chaos_run().evlog().snapshot().to_json_string();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/evlog_snapshot.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden exists; UPDATE_GOLDEN=1 to create");
    assert_eq!(
        json, golden,
        "event log drifted from golden; UPDATE_GOLDEN=1 to regen"
    );
}

/// parse ↔ export fixpoint: the JSON export re-parses to an equal
/// snapshot whose re-export is byte-identical.
#[test]
fn evlog_json_round_trips_byte_identically() {
    let snapshot = observed_chaos_run().evlog().snapshot();
    let json = snapshot.to_json_string();
    let parsed = EvLogSnapshot::from_json_str(&json).expect("export must re-parse");
    assert_eq!(parsed, snapshot, "parsed snapshot differs");
    assert_eq!(parsed.to_json_string(), json, "re-export differs");
}

/// Filtering is a view, not a re-run: counters still describe the full
/// log, and a filtered export stays within the filter.
#[test]
fn filtered_view_keeps_conservation_header() {
    let snapshot = observed_chaos_run().evlog().snapshot();
    let mut filter = LogFilter {
        max_level: Some(Level::Warn),
        ..LogFilter::default()
    };
    filter.add_term("kind=node_down").unwrap();
    let view = snapshot.filtered(&filter);
    assert_eq!(view.emitted, snapshot.emitted, "counters must not shrink");
    assert!(view.records.len() < snapshot.records.len());
    for r in &view.records {
        assert!(r.level.rank() <= Level::Warn.rank(), "level leaked: {r:?}");
        assert_eq!(r.fields.get("kind").map(String::as_str), Some("node_down"));
    }
}

// ---------------------------------------------------------------------
// 4. trace correlation: error records resolve in the flight recorder
// ---------------------------------------------------------------------

/// Every error-level record from a traced path carries a trace ID the
/// flight recorder can resolve — `wfsm logs` lines point at dumpable
/// `wfsm trace` waterfalls.
#[test]
fn error_records_resolve_in_flight_recorder() {
    let telemetry = observed_chaos_run();
    let recorder = telemetry.recorder();
    let records = telemetry.evlog().records();
    let errors_with_trace = records
        .iter()
        .filter(|r| r.level == Level::Error && r.trace.is_some())
        .count();
    assert!(errors_with_trace > 0, "chaos run must log traced errors");
    for record in &records {
        if record.level == Level::Error {
            let trace = record
                .trace
                .expect("serving-path errors are emitted inside spans");
            assert!(
                recorder.contains_trace(trace),
                "trace {trace:?} of {:?} not resolvable in recorder",
                record.message
            );
        }
    }
}

//! Acceptance suite for the deterministic health engine
//! (`wf_platform::health`).
//!
//! Locks down the PR's guarantees end to end:
//!
//! 1. **Deterministic alerting** — under a pinned chaos seed, injected
//!    slow responses breach the bus-latency SLO and the multi-window
//!    burn-rate alert fires at the exact same simulated instant on every
//!    run.
//! 2. **Exemplar liveness** — every exemplar the doctor report surfaces
//!    resolves to a trace the flight recorder still retains, so `wfsm
//!    trace` can dump the causal tree behind any SLO breach.
//! 3. **Report stability** — `DoctorReport::to_json_string` is
//!    byte-identical across same-seed runs and matches a golden file.

use std::sync::Arc;
use wf_platform::{
    default_slos, AlertEvent, ChaosCluster, Cluster, DoctorReport, Entity, EntityMiner,
    HealthEngine, MinerPipeline, NodeHealth, TraceId,
};
use wf_types::{NodeId, Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

/// The standard chaos fixture of the observability suites, plus a health
/// engine attached to the cluster's registry.
fn chaos_fixture(seed: u64) -> (Cluster, HealthEngine) {
    let cluster = ChaosCluster::new(4, 60)
        .chaos(seed, 0.15)
        .retry(RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            timeout_budget_ms: 50_000,
        })
        .degrade(NodeId(1))
        .down(NodeId(2))
        .build()
        .unwrap();
    cluster
        .bus()
        .register("annotate", Arc::new(|v: &serde_json::Value| Ok(v.clone())));
    let engine = HealthEngine::with_telemetry(default_slos(), Arc::clone(cluster.telemetry()));
    (cluster, engine)
}

/// Drives `rounds` rounds of traced bus probes → pipeline → rebuild,
/// observing the SLOs on the cluster's simulated clock after each phase.
/// Returns every alert transition in firing order.
fn drive(cluster: &Cluster, engine: &mut HealthEngine, rounds: usize) -> Vec<AlertEvent> {
    let mut transitions = Vec::new();
    let mut observe = |cluster: &Cluster, engine: &mut HealthEngine| {
        let snapshot = cluster.metrics_snapshot();
        transitions.extend(engine.observe(cluster.sim_now(), &snapshot));
    };
    for round in 0..rounds {
        let telemetry = Arc::clone(cluster.telemetry());
        let mut root = telemetry.trace_root(format!("probe#{round}"));
        for i in 0..25 {
            let _ = cluster
                .bus()
                .call_traced("annotate", &serde_json::json!(i), &mut root);
        }
        cluster.advance_clock(root.elapsed_sim_ms());
        root.finish();
        observe(cluster, engine);
        cluster.run_pipeline(&MinerPipeline::new().add(Box::new(TouchMiner)));
        observe(cluster, engine);
        cluster.rebuild_index();
        observe(cluster, engine);
    }
    transitions
}

/// Guarantee 1: the pinned seed's slow responses (250 sim-ms against a
/// 64 sim-ms p99 bound) fire the latency burn-rate alert, at the same
/// simulated instant on every run.
#[test]
fn pinned_chaos_seed_fires_latency_alert_deterministically() {
    let run = || {
        let (cluster, mut engine) = chaos_fixture(20050405);
        drive(&cluster, &mut engine, 2)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must produce the same alert transitions");
    let latency_fire = a
        .iter()
        .find(|e| e.slo == "bus-call-p99" && e.firing)
        .expect("chaos slow-responses must breach the bus latency SLO");
    assert!(
        latency_fire.fast_burn_milli >= 2_000 && latency_fire.slow_burn_milli >= 2_000,
        "both windows must burn past the threshold: {latency_fire:?}"
    );
}

/// Alert transitions are mirrored into the shared registry, so the
/// `health.alerts.*` counters are part of the deterministic snapshot.
#[test]
fn alert_transitions_land_in_the_telemetry_snapshot() {
    let (cluster, mut engine) = chaos_fixture(20050405);
    let transitions = drive(&cluster, &mut engine, 2);
    let fired = transitions.iter().filter(|e| e.firing).count() as u64;
    let resolved = transitions.iter().filter(|e| !e.firing).count() as u64;
    assert!(fired > 0, "the chaos run must fire at least one alert");
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("health.alerts.fired"), fired);
    assert_eq!(snap.counter("health.alerts.resolved"), resolved);
}

/// Guarantee 2: every exemplar in the doctor report — not just the worst
/// — resolves to a trace the flight recorder still retains.
#[test]
fn every_exemplar_resolves_to_a_live_trace() {
    let (cluster, mut engine) = chaos_fixture(20050405);
    drive(&cluster, &mut engine, 2);
    let report = DoctorReport::build(&cluster, &engine, cluster.sim_now());
    assert!(
        !report.exemplars.is_empty(),
        "traced bus calls and pipeline shards must pin exemplars"
    );
    assert!(
        report.exemplars.iter().all(|e| e.live),
        "every exemplar must be dumpable via `wfsm trace`: {:?}",
        report.exemplars
    );
    // the liveness flag agrees with the recorder itself, bucket by bucket
    let recorder = cluster.telemetry().recorder();
    let snapshot = cluster.metrics_snapshot();
    for (name, hist) in &snapshot.histograms {
        for (_, exemplar) in &hist.exemplars {
            assert!(
                recorder.contains_trace(TraceId(exemplar.trace)),
                "{name} exemplar trace {} evicted",
                exemplar.trace
            );
        }
    }
}

/// Guarantee 3a: the doctor JSON is byte-identical across same-seed runs.
#[test]
fn doctor_json_is_byte_identical_across_runs() {
    let render = || {
        let (cluster, mut engine) = chaos_fixture(20050405);
        drive(&cluster, &mut engine, 2);
        DoctorReport::build(&cluster, &engine, cluster.sim_now()).to_json_string()
    };
    assert_eq!(render(), render());
}

/// Guarantee 3b: the format matches the golden file. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test health -- golden`.
#[test]
fn golden_doctor_report() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/doctor_report.json"
    );
    let (cluster, mut engine) = chaos_fixture(20050405);
    drive(&cluster, &mut engine, 2);
    let rendered =
        DoctorReport::build(&cluster, &engine, cluster.sim_now()).to_json_string() + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "doctor JSON drifted from tests/golden/doctor_report.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The per-node scoreboard accumulates across rounds and reflects the
/// fixture's topology: node 2 is Down, its shards fail over, and the
/// degraded node burns the most simulated time per run.
#[test]
fn scoreboard_tracks_chaos_topology() {
    let (cluster, mut engine) = chaos_fixture(20050405);
    drive(&cluster, &mut engine, 2);
    let board = cluster.scoreboard();
    assert_eq!(board.len(), 4);
    for score in &board {
        assert_eq!(score.runs, 2, "every shard sees both pipeline runs");
    }
    let down = &board[2];
    assert_eq!(down.health, NodeHealth::Down);
    assert!(
        down.failovers >= 2,
        "down node's shard fails over in pipeline and rebuild: {down:?}"
    );
    let degraded = &board[1];
    assert_eq!(degraded.health, NodeHealth::Degraded);
    assert!(
        degraded.faults > board[0].faults,
        "degraded node amplifies faults: {} vs {}",
        degraded.faults,
        board[0].faults
    );
    // text renderings share the scoreboard
    let report = DoctorReport::build(&cluster, &engine, cluster.sim_now());
    let table = report.to_table();
    assert!(table.contains("NODES"), "{table}");
    assert!(table.contains("Down"), "{table}");
    assert!(table.contains("Degraded"), "{table}");
}

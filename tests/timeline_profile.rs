//! Acceptance suite for the observability tier added by this PR:
//! `wf_platform::timeseries` (deterministic metrics-over-time) and
//! `wf_platform::profile` (continuous span profiling), fed by the
//! per-stage spans threaded through the serving and mining hot paths.
//!
//! Locks down the PR's guarantees end to end:
//!
//! 1. **Counter conservation** (property) — the summed `increase` over
//!    every timeline window equals the counter's final snapshot value,
//!    even when the scrape ring drops samples.
//! 2. **Profile root-sum** (property + panic scenario) — a profile's
//!    `total_ms` equals the sum of its root spans' durations, including
//!    a panicked shard's accrued time (recorded on unwind via Drop).
//! 3. **Eviction determinism** — same-seed serving runs export
//!    byte-identical collapsed stacks even when the flight recorder
//!    evicted spans (`evicted > 0`).
//! 4. **Attribution** — over the bench serving workload, named leaf
//!    stages account for ≥ 95% of total simulated time (no
//!    "unattributed" bucket above 5%).
//! 5. **Goldens** — the pinned chaos scenario's collapsed profile and
//!    timeline JSON match checked-in goldens byte for byte
//!    (`UPDATE_GOLDEN=1` regens), and double runs are byte-identical.

use proptest::prelude::*;
use std::sync::Arc;
use wf_platform::{
    Annotation, Cluster, DataStore, Entity, EntityMiner, FaultContext, FaultPlan, Ingestor,
    MinerPipeline, NodeHealth, Profile, RawDocument, ServeLoop, ServingConfig, SourceKind,
    Telemetry, TimeSeriesStore,
};
use wf_sentiment::{AdhocSentimentMiner, SentimentServingBackend, ShardedSentimentIndex};
use wf_types::{Polarity, Result, RetryPolicy};

// ---------------------------------------------------------------------
// fixtures: the pinned chaos serving scenario (same shape as
// tests/serving.rs) and the bench serving workload mirror
// ---------------------------------------------------------------------

const CHAOS_SEED: u64 = 20050405;
const SUBJECTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const POLARITIES: [Polarity; 3] = [Polarity::Positive, Polarity::Negative, Polarity::Neutral];

fn seeded_store(shards: usize, marks: &[usize]) -> DataStore {
    let store = DataStore::new(shards).unwrap();
    for (i, &mark) in marks.iter().enumerate() {
        let subject = SUBJECTS[mark % 4];
        let polarity = POLARITIES[(mark / 4) % 3];
        let text = format!("document {i} mentions {subject} here");
        let mut entity = Entity::new(format!("test://profile/{i}"), SourceKind::Web, &text);
        entity.annotate(
            Annotation::new("sentiment", wf_types::Span::new(0, text.len()))
                .with_attr("subject", subject.to_string())
                .with_attr("polarity", polarity.to_string()),
        );
        store.insert(entity);
    }
    store
}

fn full_workload() -> Vec<String> {
    let mut pool: Vec<String> = SUBJECTS
        .iter()
        .map(|s| format!("sentiment of {s}"))
        .collect();
    pool.push("sentiment of alpha".to_string());
    pool.push("sentiment of alpha".to_string());
    pool.push("top 2 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

fn chaos_backend() -> SentimentServingBackend {
    let marks: Vec<usize> = (0..24).map(|i| i % 12).collect();
    SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(&seeded_store(
        4, &marks,
    )))
}

fn chaos_config() -> ServingConfig {
    ServingConfig {
        seed: CHAOS_SEED,
        clients: 6,
        qps: 800,
        requests: 240,
        cache_capacity: 8,
        queue_capacity: 32,
        ..ServingConfig::default()
    }
}

// ---------------------------------------------------------------------
// 1. counter conservation through the scrape ring (property)
// ---------------------------------------------------------------------

proptest! {
    /// Conservation law: summing a counter's `increase` over every
    /// retained window telescopes to exactly its final snapshot value —
    /// monotonicity makes this hold even when the ring drops samples,
    /// because the oldest retained window measures against the implicit
    /// zero baseline.
    #[test]
    fn counter_increase_conserves_final_value(
        deltas in prop::collection::vec(0u64..50, 1..40),
        capacity in 1usize..6,
        step in 1u64..20,
    ) {
        let telemetry = Telemetry::new();
        let series = TimeSeriesStore::new(capacity, 1);
        let counter = telemetry.counter("prop.ops");
        let mut now = 0u64;
        for delta in &deltas {
            counter.add(*delta);
            now += step;
            series.scrape_at(now, telemetry.snapshot());
        }
        let timeline = series.timeline();
        let expected: u64 = deltas.iter().sum();
        prop_assert_eq!(timeline.total_increase("prop.ops"), expected);
        prop_assert_eq!(
            timeline.total_increase("prop.ops"),
            telemetry.snapshot().counter("prop.ops")
        );
        // the ring really did drop samples when it was supposed to
        prop_assert_eq!(
            timeline.dropped,
            (deltas.len() as u64).saturating_sub(capacity as u64)
        );
    }

    /// A profile's `total_ms` is exactly the sum of its root spans'
    /// durations, whatever tree shape the workload produced. (Stage
    /// costs are dealt round-robin onto the roots: the shim's proptest
    /// has no tuple strategies, so the tree is decoded from flat vecs.)
    #[test]
    fn profile_total_is_the_sum_of_root_span_durations(
        owns in prop::collection::vec(0u64..30, 1..8),
        stage_costs in prop::collection::vec(1u64..12, 0..20),
    ) {
        let telemetry = Telemetry::new();
        let mut expected = 0u64;
        for (i, own) in owns.iter().enumerate() {
            let mut root = telemetry.trace_root(format!("job{}", i % 3));
            root.advance(*own);
            for (j, cost) in stage_costs
                .iter()
                .enumerate()
                .filter(|(j, _)| j % owns.len() == i)
            {
                let mut stage = root.child(format!("stage{}", j % 2));
                stage.advance(*cost);
                stage.finish();
                root.advance(*cost);
            }
            expected += root.elapsed_sim_ms();
            root.finish();
        }
        let profile = Profile::from_records(&telemetry.recorder().records());
        prop_assert_eq!(profile.total_ms, expected);
        prop_assert!(profile.attributed_ms() <= profile.total_ms);
    }
}

// ---------------------------------------------------------------------
// 2. panicked shards keep their accrued time in the profile
// ---------------------------------------------------------------------

struct PanicMiner;
impl EntityMiner for PanicMiner {
    fn name(&self) -> &str {
        "panic-miner"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        if entity.text.contains("poison") {
            panic!("injected miner crash");
        }
        Ok(())
    }
}

/// The root-sum law survives a shard panic: the crashed shard's span
/// records its accrued simulated time on unwind (via Drop), and the
/// profile counts it — crash time is attributed, not lost.
#[test]
fn profile_total_includes_panicked_shards_accrued_time() {
    let store = DataStore::new(2).unwrap();
    store.insert(Entity::new("a", SourceKind::Web, "fine")); // doc 0, shard 0
    store.insert(Entity::new("b", SourceKind::Web, "fine")); // doc 1, shard 1
    store.insert(Entity::new("c", SourceKind::Web, "fine")); // doc 2, shard 0
    store.insert(Entity::new("d", SourceKind::Web, "poison pill")); // doc 3, shard 1
    let plan = FaultPlan::new(7); // zero fault rates, 1 sim-ms per op
    let ctx = FaultContext {
        plan: Some(&plan),
        retry: RetryPolicy::default(),
        health: &[],
    };
    let stats = MinerPipeline::new()
        .add(Box::new(PanicMiner))
        .run_with(&store, &ctx);
    assert_eq!(stats.skipped_shards, 1);
    assert_eq!(stats.shard_sim_ms, vec![2, 2]);

    let records = store.telemetry().recorder().records();
    let root_sum: u64 = records
        .iter()
        .filter(|r| !r.path.contains('/'))
        .map(|r| r.duration_sim_ms)
        .sum();
    let profile = Profile::from_records(&records);
    assert_eq!(profile.total_ms, root_sum, "root-sum law holds under panic");
    let run = &profile.roots["pipeline.run"];
    assert_eq!(
        run.children["shard:1"].total_ms, 2,
        "crashed shard keeps the 2 sim-ms it accrued before the panic"
    );
}

// ---------------------------------------------------------------------
// 3. eviction does not break collapsed-stack determinism
// ---------------------------------------------------------------------

fn evicting_chaos_collapsed() -> (u64, String) {
    let backend = chaos_backend();
    // tiny ring: the 240-request scenario must overflow it
    let telemetry = Telemetry::with_trace_capacity(64);
    ServeLoop::new(
        &backend,
        Arc::clone(&telemetry),
        chaos_config(),
        full_workload(),
    )
    .with_fault_plan(FaultPlan::uniform(CHAOS_SEED, 0.15))
    .with_trigger(80, || backend.set_shard_health(1, NodeHealth::Degraded))
    .with_trigger(120, || backend.set_shard_health(2, NodeHealth::Down))
    .run()
    .unwrap();
    let profile = Profile::from_recorder(telemetry.recorder(), usize::MAX);
    (telemetry.recorder().evicted(), profile.to_collapsed())
}

/// Same-seed runs export byte-identical collapsed stacks even when the
/// flight recorder evicted spans: the serving loop is single-threaded,
/// so the retained span *set* is identical, and the fold keys on paths.
#[test]
fn eviction_preserves_collapsed_stack_determinism() {
    let (evicted_a, collapsed_a) = evicting_chaos_collapsed();
    let (evicted_b, collapsed_b) = evicting_chaos_collapsed();
    assert!(
        evicted_a > 0,
        "scenario must actually overflow the 64-span ring"
    );
    assert_eq!(evicted_a, evicted_b);
    assert_eq!(
        collapsed_a, collapsed_b,
        "collapsed stacks must not drift under eviction"
    );
    assert!(
        collapsed_a.contains("serve.query;"),
        "stages survive: {collapsed_a}"
    );
}

// ---------------------------------------------------------------------
// 4. attribution over the bench serving workload (acceptance criterion)
// ---------------------------------------------------------------------

/// The serving scenario of `crates/bench/benches/serving.rs`, rebuilt
/// here so the acceptance criterion is enforced by `cargo test`.
fn bench_corpus() -> Vec<String> {
    const BRANDS: [&str; 5] = ["Canon", "Nikon", "Sony", "Kodak", "Pentax"];
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..96)
        .map(|i| {
            format!(
                "{} {} in trial {i}.",
                BRANDS[i % BRANDS.len()],
                MOODS[i % MOODS.len()]
            )
        })
        .collect()
}

fn bench_workload() -> Vec<String> {
    let mut pool = Vec::new();
    for _ in 0..4 {
        pool.push("sentiment of canon".to_string());
    }
    for _ in 0..2 {
        pool.push("sentiment of nikon".to_string());
    }
    pool.push("sentiment of sony".to_string());
    pool.push("sentiment of kodak".to_string());
    pool.push("sentiment of pentax".to_string());
    pool.push("top 3 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

/// ≥ 95% of the bench serving workload's simulated time lands in named
/// leaf stages (queue_wait / cache_lookup / shard_fanout / ...): the
/// per-stage spans threaded through the miss path leave no
/// "unattributed" bucket above 5%.
#[test]
fn bench_serving_workload_attribution_exceeds_95_percent() {
    let cluster = Cluster::new(4).unwrap();
    let raw: Vec<RawDocument> = bench_corpus()
        .iter()
        .enumerate()
        .map(|(i, text)| {
            RawDocument::new(
                format!("bench://serving/{i}"),
                SourceKind::Web,
                text.clone(),
            )
        })
        .collect();
    Ingestor::new(cluster.store()).ingest_batch(raw);
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&pipeline);
    let backend =
        SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(cluster.store()));

    // fresh telemetry, sized so 1200 requests' spans all fit: eviction
    // would silently shrink the denominator
    let telemetry = Telemetry::with_trace_capacity(1 << 15);
    let config = ServingConfig {
        seed: CHAOS_SEED,
        clients: 16,
        qps: 500,
        requests: 1200,
        cache_capacity: 32,
        queue_capacity: 24,
        ..ServingConfig::default()
    };
    ServeLoop::new(&backend, Arc::clone(&telemetry), config, bench_workload())
        .run()
        .unwrap();
    assert_eq!(telemetry.recorder().evicted(), 0, "grow the ring");

    let profile = Profile::from_recorder(telemetry.recorder(), usize::MAX);
    assert!(profile.total_ms > 0);
    let milli = profile.attributed_milli();
    assert!(
        milli >= 950,
        "only {milli}‰ of {} sim-ms attributed to named stages:\n{}",
        profile.total_ms,
        profile.to_text()
    );
}

// ---------------------------------------------------------------------
// 5. pinned chaos run: goldens + byte-identical double export
// ---------------------------------------------------------------------

/// Chaos serving run with a timeline attached: returns the collapsed
/// profile and the timeline JSON export.
fn observed_chaos_run() -> (String, String) {
    let backend = chaos_backend();
    let telemetry = Telemetry::new();
    let timeline = Arc::new(TimeSeriesStore::new(64, 20));
    ServeLoop::new(
        &backend,
        Arc::clone(&telemetry),
        chaos_config(),
        full_workload(),
    )
    .with_timeline(Arc::clone(&timeline))
    .with_fault_plan(FaultPlan::uniform(CHAOS_SEED, 0.15))
    .with_trigger(80, || backend.set_shard_health(1, NodeHealth::Degraded))
    .with_trigger(120, || backend.set_shard_health(2, NodeHealth::Down))
    .run()
    .unwrap();
    let collapsed = Profile::from_recorder(telemetry.recorder(), usize::MAX).to_collapsed();
    let timeline_json = timeline.timeline().to_json_string() + "\n";
    (collapsed, timeline_json)
}

/// Same seed, same bytes, for both exports — and the timeline actually
/// sampled the run rather than just the final flush.
#[test]
fn observed_run_exports_are_byte_identical() {
    let (collapsed_a, timeline_a) = observed_chaos_run();
    let (collapsed_b, timeline_b) = observed_chaos_run();
    assert_eq!(collapsed_a, collapsed_b, "collapsed stacks drifted");
    assert_eq!(timeline_a, timeline_b, "timeline JSON drifted");
    assert!(timeline_a.contains("\"serving.requests\""));
    assert!(collapsed_a.contains("serve.query;shard_fanout"));
}

/// The pinned scenario's collapsed profile matches the checked-in
/// golden byte for byte. `UPDATE_GOLDEN=1` regenerates.
#[test]
fn collapsed_profile_matches_golden() {
    let (collapsed, _) = observed_chaos_run();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/profile_collapsed.txt"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &collapsed).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden exists; UPDATE_GOLDEN=1 to create");
    assert_eq!(
        collapsed, golden,
        "collapsed profile drifted from golden; UPDATE_GOLDEN=1 to regen"
    );
}

/// The pinned scenario's timeline JSON matches the checked-in golden
/// byte for byte. `UPDATE_GOLDEN=1` regenerates.
#[test]
fn timeline_json_matches_golden() {
    let (_, timeline_json) = observed_chaos_run();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/timeline.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &timeline_json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden exists; UPDATE_GOLDEN=1 to create");
    assert_eq!(
        timeline_json, golden,
        "timeline export drifted from golden; UPDATE_GOLDEN=1 to regen"
    );
}

//! Integration of the corpus-level miners (dedup, template detection,
//! clustering, statistics) with the sentiment pipeline, plus aspect and
//! trend aggregation through the public API.

use webfountain_sentiment::platform::{
    cluster_documents, corpus_stats, Cluster, CorpusMiner, DuplicateDetector, Ingestor,
    MinerPipeline, RawDocument, SourceKind, TemplateDetector,
};
use webfountain_sentiment::sentiment::{
    aggregate, sentiment_trends, AspectModel, SentimentEntityMiner, SubjectList, TrendDirection,
};
use webfountain_sentiment::types::DocId;

const FOOTER: &str = "Subscribe to our newsletter for weekly camera deals and updates.";

fn review(body: &str) -> String {
    format!("{body} {FOOTER}")
}

#[test]
fn full_preprocessing_then_sentiment() {
    let cluster = Cluster::new(2).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        // site A: five pages sharing a footer, one exact duplicate pair
        let pages = [
            review("The Canon takes excellent pictures in daylight."),
            review("The Canon battery drains quickly on long trips."),
            review("The Canon menu is confusing at first."),
            review("The Canon takes excellent pictures in daylight."), // dup of page 0
            review("The Canon viewfinder is sharp and bright."),
        ];
        for (i, text) in pages.iter().enumerate() {
            ing.ingest(
                RawDocument::new(format!("http://site-a.example/{i}"), SourceKind::Web, text)
                    .with_metadata("month", if i < 3 { "2004-01" } else { "2004-02" }),
            );
        }
    }

    // corpus-level preprocessing
    TemplateDetector::default().run(cluster.store()).unwrap();
    DuplicateDetector::default().run(cluster.store()).unwrap();

    // the duplicate page points at its representative
    let dup = cluster.store().get(DocId(3)).unwrap();
    assert_eq!(dup.metadata.get("duplicate-of").unwrap(), "doc:0");
    // the shared footer is flagged as template on every page
    for i in 0..5 {
        let e = cluster.store().get(DocId(i)).unwrap();
        let flagged: Vec<String> = e
            .annotations_of("template")
            .map(|a| a.span.slice(&e.text).to_string())
            .collect();
        assert!(
            flagged.iter().any(|t| t.contains("newsletter")),
            "page {i}: {flagged:?}"
        );
    }

    // entity-level sentiment mining still works on the same store
    let subjects = SubjectList::builder().subject("Canon", ["Canon"]).build();
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects))));
    let stats = corpus_stats(cluster.store(), 5);
    assert_eq!(stats.documents, 5);
    assert!(stats
        .annotations
        .iter()
        .any(|(kind, n)| kind == "sentiment" && *n > 0));
    assert!(stats
        .annotations
        .iter()
        .any(|(kind, n)| kind == "template" && *n >= 5));

    // trends over the month metadata
    let trends = sentiment_trends(cluster.store(), "month");
    let canon = trends.iter().find(|t| t.subject == "canon").unwrap();
    assert_eq!(canon.points.len(), 2);
    assert!(canon.total_mentions() > 0);
    // direction is well-defined even on two points
    let _ = canon.direction(0.05);
}

#[test]
fn clustering_separates_domains() {
    let cluster = Cluster::new(1).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        for i in 0..5 {
            ing.ingest(RawDocument::new(
                format!("c{i}"),
                SourceKind::Web,
                format!("camera lens battery zoom pictures review number {i}"),
            ));
            ing.ingest(RawDocument::new(
                format!("m{i}"),
                SourceKind::Web,
                format!("song album guitar lyrics melody review number {i}"),
            ));
        }
    }
    let clustering = cluster_documents(cluster.store(), 2, 15);
    assert_eq!(clustering.sizes.iter().sum::<usize>(), 10);
    assert_eq!(clustering.sizes, vec![5, 5]);
}

#[test]
fn aspect_aggregation_via_public_api() {
    use webfountain_sentiment::prelude::*;
    let subjects = SubjectList::builder()
        .subject("camera", ["camera"])
        .subject("battery", ["battery"])
        .subject("flash", ["flash"])
        .build();
    let miner = SentimentMiner::with_default_resources();
    let records = miner.analyze_text(
        "The camera is excellent. The flash works well. \
         The battery is terrible and the battery drains quickly.",
        &subjects,
    );
    let model = AspectModel::new().topic("camera", ["battery", "flash"]);
    let summaries = aggregate(&model, &records);
    let camera = &summaries["camera"];
    assert_eq!(camera.direct.positive, 1);
    assert_eq!(camera.aspects["flash"].positive, 1);
    assert!(camera.aspects["battery"].negative >= 2);
    assert_eq!(
        camera.weakest_aspects().first().map(|(n, _)| *n),
        Some("battery")
    );
    assert!(camera.overall().net() < camera.direct.net() + 1);
    let _ = Polarity::Positive;
}

#[test]
fn trend_direction_end_to_end() {
    let cluster = Cluster::new(1).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        let schedule = [
            ("2004-01", "The Canon is terrible. The Canon is awful."),
            ("2004-02", "The Canon is terrible. The Canon is excellent."),
            ("2004-03", "The Canon is excellent. The Canon is superb."),
        ];
        for (month, text) in schedule {
            ing.ingest(
                RawDocument::new(format!("u-{month}"), SourceKind::Web, text)
                    .with_metadata("month", month),
            );
        }
    }
    let subjects = SubjectList::builder().subject("Canon", ["Canon"]).build();
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects))));
    let trends = sentiment_trends(cluster.store(), "month");
    let canon = trends.iter().find(|t| t.subject == "canon").unwrap();
    assert_eq!(canon.direction(0.05), TrendDirection::Improving);
}

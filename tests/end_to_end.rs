//! End-to-end platform integration: ingest → mine → index → query across
//! crates, for both operational modes.

use webfountain_sentiment::corpus::{camera_reviews, pharma_web, ReviewConfig, WebConfig};
use webfountain_sentiment::platform::{
    Cluster, Ingestor, MinerPipeline, Query, RawDocument, SourceKind,
};
use webfountain_sentiment::sentiment::{
    AdhocSentimentMiner, SentimentEntityMiner, SentimentQueryService, SpotterMiner, SubjectList,
};
use webfountain_sentiment::types::Polarity;

fn camera_subjects() -> SubjectList {
    let mut b = SubjectList::builder();
    for p in webfountain_sentiment::corpus::vocab::CAMERA_PRODUCTS {
        b = b.subject(p, [p.to_string()]);
    }
    b.build()
}

#[test]
fn mode_a_full_pipeline() {
    let corpus = camera_reviews(99, &ReviewConfig::small());
    let cluster = Cluster::new(3).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ing.ingest(
                RawDocument::new(format!("web://r/{i}"), SourceKind::Web, doc.text())
                    .with_metadata("domain", "digital-camera"),
            );
        }
    }
    let subjects = camera_subjects();
    let pipeline = MinerPipeline::new()
        .add(Box::new(SpotterMiner::new(subjects.clone())))
        .add(Box::new(SentimentEntityMiner::new(subjects)));
    let stats = cluster.run_pipeline(&pipeline);
    assert_eq!(stats.processed, corpus.d_plus.len());
    assert_eq!(stats.failed, 0);

    cluster.rebuild_index();
    let report = cluster.report();
    assert_eq!(report.indexed_docs, corpus.d_plus.len());
    assert!(report.distinct_concepts > 0);

    // every document has spot annotations and version 2 (one update)
    let mut spotted = 0;
    cluster.store().for_each(|e| {
        if e.annotations_of("spot").count() > 0 {
            spotted += 1;
        }
        assert_eq!(e.version, 2);
    });
    assert!(spotted > corpus.d_plus.len() / 2);

    // boolean index query combining text and conceptual tokens
    let docs = cluster
        .indexer()
        .query(&Query::And(vec![
            Query::Concept("sentiment:polarity=+".into()),
            Query::MetaEquals("domain".into(), "digital-camera".into()),
        ]))
        .expect("query");
    assert!(!docs.is_empty());
}

#[test]
fn mode_b_query_time_subjects() {
    let corpus = pharma_web(77, &WebConfig::small());
    let cluster = Cluster::new(2).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ing.ingest(RawDocument::new(
                format!("web://p/{i}"),
                SourceKind::Web,
                doc.text(),
            ));
        }
    }
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new())));
    cluster.rebuild_index();

    // at least one drug accumulates positive and negative evidence
    let mut any_pos = 0;
    let mut any_neg = 0;
    for subject in webfountain_sentiment::corpus::vocab::PHARMA_PRODUCTS {
        any_pos += SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            subject,
            Some(Polarity::Positive),
        )
        .expect("query")
        .len();
        any_neg += SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            subject,
            Some(Polarity::Negative),
        )
        .expect("query")
        .len();
    }
    assert!(any_pos > 0, "no positive hits indexed");
    assert!(any_neg > 0, "no negative hits indexed");
}

#[test]
fn miner_annotations_survive_store_round_trip() {
    let cluster = Cluster::new(1).expect("cluster");
    let id = {
        let mut ing = Ingestor::new(cluster.store());
        ing.ingest(RawDocument::new(
            "u",
            SourceKind::News,
            "The Canon takes excellent pictures. The Nikon is terrible.",
        ))
    };
    let subjects = camera_subjects();
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects))));
    let entity = cluster.store().get(id).expect("entity");
    let sentiments: Vec<(&str, &str)> = entity
        .annotations_of("sentiment")
        .map(|a| (a.attr("subject").unwrap(), a.attr("polarity").unwrap()))
        .collect();
    assert!(sentiments.contains(&("canon", "+")), "{sentiments:?}");
    assert!(sentiments.contains(&("nikon", "-")), "{sentiments:?}");
    // XML serialization carries the annotations
    let xml = entity.to_xml();
    assert!(xml.contains("annotation kind=\"sentiment\""));
    assert!(xml.contains("subject=\"canon\""));
}

#[test]
fn rerunning_miners_is_idempotent() {
    let cluster = Cluster::new(1).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        ing.ingest(RawDocument::new(
            "u",
            SourceKind::Web,
            "The Canon is excellent.",
        ));
    }
    let subjects = camera_subjects();
    let pipeline = MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects)));
    cluster.run_pipeline(&pipeline);
    let first: usize = {
        let e = cluster
            .store()
            .get(webfountain_sentiment::types::DocId(0))
            .unwrap();
        e.annotations_of("sentiment").count()
    };
    cluster.run_pipeline(&pipeline);
    let second: usize = {
        let e = cluster
            .store()
            .get(webfountain_sentiment::types::DocId(0))
            .unwrap();
        e.annotations_of("sentiment").count()
    };
    assert_eq!(first, second, "annotations must not accumulate");
}

#[test]
fn vinci_services_integrate_with_mining() {
    use serde_json::{json, Value};
    use std::sync::Arc;

    let cluster = Cluster::new(1).expect("cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        ing.ingest(RawDocument::new(
            "u",
            SourceKind::Web,
            "The Canon takes excellent pictures.",
        ));
    }
    let subjects = camera_subjects();
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects))));
    cluster.rebuild_index();

    // expose the sentiment query as a Vinci service, as applications would
    let store = cluster.store() as *const _ as usize;
    let _ = store; // services capture by value in this in-process model
    cluster.bus().register(
        "sentiment-count",
        Arc::new(move |req: &Value| {
            let subject = req["subject"].as_str().unwrap_or_default().to_string();
            Ok(json!({ "subject": subject, "status": "ok" }))
        }),
    );
    let reply = cluster
        .bus()
        .call("sentiment-count", &json!({"subject": "Canon"}))
        .expect("service call");
    assert_eq!(reply["status"], "ok");
    assert_eq!(cluster.bus().stats("sentiment-count"), Some((1, 0)));
}

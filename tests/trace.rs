//! Regression suite for the deterministic causal-tracing layer
//! (`wf_platform::trace`).
//!
//! Locks down the guarantees DESIGN.md §9 promises:
//!
//! 1. **Determinism** — the same chaos seed yields byte-identical trace
//!    exports (JSON tree, Chrome `trace_event`, ASCII waterfall), because
//!    every span duration derives from the seeded simulated clock and
//!    raw span ids are renumbered canonically at export time.
//! 2. **Crash safety** — a shard worker that panics mid-entity still
//!    lands its span (with the time accrued so far and a `panicked`
//!    event) in the flight recorder.
//! 3. **Bounded retention** — the flight recorder is a fixed-capacity
//!    ring: oldest spans evict first and the `trace.evicted` counter in
//!    the telemetry snapshot accounts for every overwrite.
//! 4. **Format stability** — the Chrome export of a pinned chaos run
//!    matches a golden file, so `wfsm trace --format chrome` output
//!    cannot drift silently.

use std::sync::Arc;
use wf_platform::{
    ChaosCluster, DataStore, Entity, EntityMiner, FaultContext, FaultPlan, MinerPipeline,
    NodeHealth, SourceKind, Telemetry,
};
use wf_types::{NodeId, Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

/// Panics on any entity whose text contains the poison marker.
struct PoisonMiner;
impl EntityMiner for PoisonMiner {
    fn name(&self) -> &str {
        "poison"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        if entity.text.contains("poison") {
            panic!("poisoned entity {}", entity.id.0);
        }
        Ok(())
    }
}

/// A full chaos run (same shape as the telemetry suite) followed by a
/// traced query pass, returning the cluster so tests can export traces.
fn chaos_run(seed: u64) -> wf_platform::Cluster {
    let cluster = ChaosCluster::new(4, 60)
        .chaos(seed, 0.15)
        .retry(RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            timeout_budget_ms: 50_000,
        })
        .degrade(NodeId(1))
        .down(NodeId(2))
        .build()
        .unwrap();
    cluster
        .bus()
        .register("annotate", Arc::new(|v: &serde_json::Value| Ok(v.clone())));
    for i in 0..20 {
        let _ = cluster.bus().call("annotate", &serde_json::json!(i));
    }
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(TouchMiner)));
    cluster.rebuild_index();
    let mut search = cluster.telemetry().trace_root("search");
    for query in ["cameras", "synthetic", "absent"] {
        let _ = cluster
            .indexer()
            .query_traced(&wf_platform::Query::Term(query.into()), &mut search);
    }
    search.finish();
    cluster
}

/// Guarantee 1: byte-identical exports in every format from identical
/// seeds, across fully concurrent runs.
#[test]
fn same_seed_gives_byte_identical_exports() {
    let a = chaos_run(20050405);
    let b = chaos_run(20050405);
    let (ra, rb) = (a.telemetry().recorder(), b.telemetry().recorder());
    assert_eq!(ra.export_json_string(50), rb.export_json_string(50));
    assert_eq!(ra.export_chrome_string(50), rb.export_chrome_string(50));
    assert_eq!(ra.export_text(50), rb.export_text(50));
    // exporting twice from the same recorder is also stable
    assert_eq!(ra.export_json_string(50), ra.export_json_string(50));
}

/// Different seeds must perturb the trace trees (retry/fault events and
/// span durations come from the fault stream).
#[test]
fn different_seeds_diverge() {
    let a = chaos_run(1);
    let b = chaos_run(2);
    assert_ne!(
        a.telemetry().recorder().export_json_string(50),
        b.telemetry().recorder().export_json_string(50),
        "different fault seeds should perturb the traces"
    );
}

/// The export covers every top-level operation of the run.
#[test]
fn exports_cover_all_cluster_operations() {
    let cluster = chaos_run(7);
    let text = cluster.telemetry().recorder().export_text(50);
    for root in ["cluster.run_pipeline", "cluster.rebuild_index", "search"] {
        assert!(text.contains(root), "waterfall missing {root:?}:\n{text}");
    }
    assert!(text.contains("shard:"), "no shard spans in:\n{text}");
    assert!(text.contains("q:term"), "no query plan spans in:\n{text}");
}

/// Guarantee 2: a panicking shard worker still records its span, with
/// the simulated time accrued before the crash and a `panicked` event.
#[test]
fn panicked_shard_keeps_its_span_in_the_recorder() {
    let store = DataStore::new(2).unwrap();
    for i in 0..6 {
        let text = if i == 3 { "poison pill" } else { "fine review" };
        store.insert(Entity::new(format!("doc://{i}"), SourceKind::Web, text));
    }
    let plan = FaultPlan::new(11); // default rates: fault-free, 1 sim-ms per op
    let ctx = FaultContext {
        plan: Some(&plan),
        retry: RetryPolicy::none(),
        health: &[NodeHealth::Up, NodeHealth::Up],
    };
    let stats = MinerPipeline::new()
        .add(Box::new(PoisonMiner))
        .run_with(&store, &ctx);
    assert_eq!(stats.failed, 3, "whole poisoned shard counts as failed");

    let traces = store.telemetry().recorder().last_traces(1);
    let root = &traces[0].1[0];
    assert_eq!(root.name, "pipeline.run");
    let poisoned = root
        .children
        .iter()
        .find(|s| s.events.iter().any(|e| e.label == "panicked"))
        .expect("one shard span must carry the panicked event");
    assert!(
        poisoned.duration_sim_ms > 0,
        "span must keep the sim-time accrued before the crash"
    );
    let healthy = root
        .children
        .iter()
        .find(|s| !s.events.iter().any(|e| e.label == "panicked"))
        .expect("the healthy shard span");
    assert!(healthy.events.iter().all(|e| e.label != "panicked"));
}

/// Guarantee 3: the ring retains only the newest spans, evicts oldest
/// first, and the snapshot's `trace.evicted` counter reconciles.
#[test]
fn flight_recorder_is_bounded_and_evicts_oldest_first() {
    let tele = Telemetry::with_trace_capacity(3);
    let mut first_ids = Vec::new();
    for i in 0..7 {
        let mut span = tele.trace_root(format!("op:{i}"));
        span.advance(1);
        first_ids.push(span.trace_id());
        span.finish();
    }
    let rec = tele.recorder();
    assert_eq!(rec.recorded(), 7);
    assert_eq!(rec.evicted(), 4);
    assert_eq!(rec.records().len(), 3);
    let retained = rec.trace_ids();
    for old in &first_ids[..4] {
        assert!(!retained.contains(old), "oldest spans must evict first");
    }
    for new in &first_ids[4..] {
        assert!(retained.contains(new), "newest spans must be retained");
    }
    let snap = tele.snapshot();
    assert_eq!(snap.counter("trace.spans"), 7);
    assert_eq!(snap.counter("trace.evicted"), 4);
}

/// Capacity 0 disables tracing entirely — no records, no overhead state.
#[test]
fn zero_capacity_disables_tracing() {
    let tele = Telemetry::with_trace_capacity(0);
    let store = DataStore::with_telemetry(1, Arc::clone(&tele)).unwrap();
    store.insert(Entity::new("doc://0", SourceKind::Web, "fine"));
    MinerPipeline::new().add(Box::new(TouchMiner)).run(&store);
    let rec = tele.recorder();
    assert_eq!(rec.records().len(), 0);
    assert!(rec.trace_ids().is_empty());
    assert_eq!(rec.export_json_string(10), "{\n  \"traces\": []\n}");
}

/// Guarantee 4: the Chrome export of the pinned chaos run matches the
/// golden file. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test trace -- golden`.
#[test]
fn golden_chrome_export() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_chrome.json"
    );
    let rendered = chaos_run(20050405)
        .telemetry()
        .recorder()
        .export_chrome_string(50)
        + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "Chrome trace export drifted from tests/golden/trace_chrome.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

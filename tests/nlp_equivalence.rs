//! Differential-equivalence harness for the zero-copy batched NLP hot path.
//!
//! The optimized paths — span tokens + arena scratch in `wf_nlp`, the
//! batched miners, and the delta+varint compressed postings in
//! `wf_platform::index` — must be *observationally identical* to the frozen
//! naive implementations (`wf_nlp::naive`, `Indexer::naive`). Every test
//! here drives both sides with the same input and asserts equal output:
//!
//! - proptest differentials over arbitrary text and corpus-generated docs
//!   (tokens, tags, chunks, clauses, entities, sentiment records);
//! - naive vs compressed index agreement on every query kind;
//! - varint/delta codec round-trips including edge cases;
//! - a pruning invariant: skip pointers strictly reduce postings scanned
//!   on AND queries (observed via `index.postings_scanned`);
//! - a pinned golden snapshot of the batch API's output
//!   (`tests/golden/nlp_batch_snapshot.json`, regen with `UPDATE_GOLDEN=1`).
//!
//! CI runs this suite under a `PROPTEST_SEED` matrix so three independent
//! case streams must pass.

use std::sync::OnceLock;

use proptest::prelude::*;
use webfountain_sentiment::corpus::{camera_reviews, music_reviews, ReviewConfig, SlotWeights};
use webfountain_sentiment::nlp::{naive, DocScratch, Pipeline};
use webfountain_sentiment::platform::{CompressedPostings, Entity, Indexer, Query, SourceKind};
use webfountain_sentiment::sentiment::SentimentMiner;
use webfountain_sentiment::types::DocId;

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(Pipeline::new)
}

fn miner() -> &'static SentimentMiner {
    static MINER: OnceLock<SentimentMiner> = OnceLock::new();
    MINER.get_or_init(SentimentMiner::with_default_resources)
}

/// A handful of documents per corpus keeps each proptest case cheap while
/// still exercising every sentence template.
fn tiny_config() -> ReviewConfig {
    ReviewConfig {
        n_plus: 3,
        n_minus: 3,
        mention_slots: 2,
        feature_sentences: 2,
        weights: SlotWeights::default(),
    }
}

/// Corpus-generated document texts for one seed (both domains).
fn corpus_texts(seed: u64) -> Vec<String> {
    let cfg = tiny_config();
    let mut texts = Vec::new();
    for corpus in [camera_reviews(seed, &cfg), music_reviews(seed ^ 1, &cfg)] {
        texts.extend(corpus.d_plus_texts());
        texts.extend(corpus.d_minus_texts());
    }
    texts
}

// ---------------------------------------------------------------------------
// NLP pipeline differentials: naive (frozen seed code) vs span/batched path
// ---------------------------------------------------------------------------

proptest! {
    /// On arbitrary unicode text, the span pipeline reproduces the naive
    /// path's full sentence analyses and named entities exactly.
    #[test]
    fn span_pipeline_matches_naive_on_arbitrary_text(text in "\\PC{0,200}") {
        prop_assert_eq!(pipeline().analyze(&text), naive::analyze(&text));
        prop_assert_eq!(pipeline().named_entities(&text), naive::named_entities(&text));
    }

    /// Tokenizer equivalence on punctuation/clitic-heavy ASCII (the split
    /// heuristics' home turf), including spans.
    #[test]
    fn tokenizer_matches_naive(text in "[a-zA-Z0-9 ,.!?'\"()-]{0,160}") {
        let fast = webfountain_sentiment::nlp::tokenizer::tokenize(&text);
        prop_assert_eq!(fast, naive::tokenize(&text));
    }

    /// Batch annotation over corpus-generated documents — shared scratch
    /// across the whole batch — matches the naive per-document path
    /// sentence-for-sentence and entity-for-entity.
    #[test]
    fn batch_annotation_matches_naive_on_corpus_docs(seed in 0u64..10_000) {
        let texts = corpus_texts(seed);
        let batch = pipeline().annotate_batch(&texts);
        prop_assert_eq!(batch.len(), texts.len());
        for (text, doc) in texts.iter().zip(&batch) {
            prop_assert_eq!(&doc.sentences, &naive::analyze(text));
            prop_assert_eq!(&doc.entities, &naive::named_entities(text));
        }
    }

    /// Mode-B sentiment: the single-pass path, its batch form, and the
    /// naive-based reference oracle all emit identical records.
    #[test]
    fn sentiment_batch_and_reference_agree(seed in 0u64..10_000) {
        let texts = corpus_texts(seed);
        let batched = miner().analyze_named_entities_batch(&texts);
        prop_assert_eq!(batched.len(), texts.len());
        for (text, records) in texts.iter().zip(&batched) {
            prop_assert_eq!(records, &miner().analyze_named_entities(text));
            prop_assert_eq!(records, &miner().analyze_named_entities_reference(text));
        }
    }

    /// Scratch reuse leaves no residue: interleaving long and short (and
    /// empty) documents in one batch changes nothing.
    #[test]
    fn scratch_reuse_is_residue_free(texts in prop::collection::vec("\\PC{0,120}", 0..8)) {
        let mut with_empties: Vec<String> = Vec::new();
        for t in &texts {
            with_empties.push(t.clone());
            with_empties.push(String::new());
        }
        let batch = pipeline().annotate_batch(&with_empties);
        let mut scratch = DocScratch::new();
        for (text, doc) in with_empties.iter().zip(&batch) {
            prop_assert_eq!(doc, &pipeline().analyze_doc(text, &mut scratch));
            prop_assert_eq!(&doc.sentences, &naive::analyze(text));
        }
    }
}

// ---------------------------------------------------------------------------
// Postings codec: round trips + edge cases
// ---------------------------------------------------------------------------

/// Deterministic positions for a doc id (ascending, length `doc % 4`).
fn positions_for(doc: u64) -> Vec<u32> {
    let n = (doc % 4) as u32;
    let base = (doc as u32).wrapping_mul(2_654_435_761) % 1000;
    (0..n).map(|i| base + i * (1 + base % 7)).collect()
}

proptest! {
    /// Delta+varint encoding round-trips arbitrary ascending posting lists,
    /// positions included.
    #[test]
    fn postings_round_trip(deltas in prop::collection::vec(1u64..5_000, 0..120)) {
        let mut doc = 0u64;
        let mut entries: Vec<(DocId, Vec<u32>)> = Vec::new();
        for d in deltas {
            doc += d;
            entries.push((DocId(doc), positions_for(doc)));
        }
        let cp = CompressedPostings::from_entries(&entries);
        prop_assert_eq!(cp.doc_count(), entries.len());
        prop_assert_eq!(cp.decode(), entries);
    }

    /// `advance_to` agrees with linear search over the decoded list, from
    /// any starting point, and never decodes more entries than a full scan.
    #[test]
    fn cursor_advance_matches_linear_search(
        deltas in prop::collection::vec(1u64..200, 1..100),
        probes in prop::collection::vec(0u64..30_000, 1..10),
    ) {
        let mut doc = 0u64;
        let mut entries: Vec<(DocId, Vec<u32>)> = Vec::new();
        for d in deltas {
            doc += d;
            entries.push((DocId(doc), positions_for(doc)));
        }
        let cp = CompressedPostings::from_entries(&entries);
        let mut probes = probes;
        probes.sort_unstable();
        let mut cursor = cp.cursor();
        let mut floor = 0u64; // cursor can only move forward
        for p in probes {
            let target = floor.max(p);
            let expect = entries.iter().find(|(d, _)| d.0 >= target).map(|(d, _)| *d);
            let got = cursor.advance_to(DocId(target));
            prop_assert!(got == expect, "advance_to({}) gave {:?}, expected {:?}", target, got, expect);
            match got {
                Some(d) => {
                    let (_, pos) = &entries[entries.iter().position(|(e, _)| e == &d).unwrap()];
                    prop_assert_eq!(&cursor.positions(), pos);
                    floor = d.0;
                }
                None => break,
            }
        }
        prop_assert!(cursor.scanned() <= entries.len() as u64);
    }
}

#[test]
fn postings_edge_cases() {
    // empty list
    let empty = CompressedPostings::new();
    assert!(empty.is_empty());
    assert!(empty.decode().is_empty());
    assert_eq!(empty.cursor().advance_to(DocId(0)), None);

    // single doc, empty and non-empty positions
    for positions in [vec![], vec![0u32], vec![0, 1, u32::MAX]] {
        let single = CompressedPostings::from_entries(&[(DocId(7), positions.clone())]);
        assert_eq!(single.decode(), vec![(DocId(7), positions)]);
    }

    // maximal doc-id delta: first doc 0, second doc u64::MAX
    let wide = CompressedPostings::from_entries(&[
        (DocId(0), vec![3u32]),
        (DocId(u64::MAX), vec![u32::MAX]),
    ]);
    assert_eq!(
        wide.decode(),
        vec![(DocId(0), vec![3]), (DocId(u64::MAX), vec![u32::MAX])]
    );
    let mut c = wide.cursor();
    assert_eq!(c.advance_to(DocId(1)), Some(DocId(u64::MAX)));
    assert_eq!(c.positions(), vec![u32::MAX]);
}

// ---------------------------------------------------------------------------
// Index differentials: compressed + pruned vs naive exhaustive execution
// ---------------------------------------------------------------------------

/// Indexes `texts` into a fresh indexer (entity ids = position).
fn build_index(texts: &[String], naive: bool) -> Indexer {
    let idx = if naive {
        Indexer::naive()
    } else {
        Indexer::new()
    };
    for (i, text) in texts.iter().enumerate() {
        let mut e = Entity::new(format!("uri://{i}"), SourceKind::Web, text.clone())
            .with_metadata("parity", if i % 2 == 0 { "even" } else { "odd" });
        e.id = DocId(i as u64);
        idx.index_entity(&e);
    }
    idx
}

/// Query workload derived from the corpus itself: frequent words, an absent
/// word, AND/OR/NOT combinations, and phrases from real bigrams.
fn workload(texts: &[String]) -> Vec<Query> {
    use std::collections::BTreeMap;
    let mut freq: BTreeMap<String, usize> = BTreeMap::new();
    let mut bigram: Option<(String, String)> = None;
    for text in texts {
        let tokens = naive::tokenize(text);
        for pair in tokens.windows(2) {
            let (a, b) = (pair[0].lower(), pair[1].lower());
            if bigram.is_none()
                && a.chars().all(|c| c.is_ascii_alphabetic())
                && b.chars().all(|c| c.is_ascii_alphabetic())
            {
                bigram = Some((a.clone(), b.clone()));
            }
        }
        for t in &tokens {
            let lower = t.lower();
            if lower.chars().all(|c| c.is_ascii_alphabetic()) {
                *freq.entry(lower).or_default() += 1;
            }
        }
    }
    let mut by_freq: Vec<(String, usize)> = freq.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let term = |i: usize| {
        by_freq
            .get(i)
            .map(|(w, _)| w.clone())
            .unwrap_or_else(|| "absentword".into())
    };
    let mut queries = vec![
        Query::Term(term(0)),
        Query::Term(term(by_freq.len().saturating_sub(1))),
        Query::Term("zzzabsent".into()),
        Query::And(vec![Query::Term(term(0)), Query::Term(term(1))]),
        Query::And(vec![
            Query::Term(term(2)),
            Query::Term(term(0)),
            Query::Term(term(5)),
        ]),
        Query::And(vec![Query::Term(term(0)), Query::Term("zzzabsent".into())]),
        Query::Or(vec![Query::Term(term(3)), Query::Term(term(4))]),
        Query::Not(Box::new(Query::Term(term(0)))),
        Query::And(vec![
            Query::Term(term(1)),
            Query::Not(Box::new(Query::Term(term(2)))),
        ]),
        Query::MetaEquals("parity".into(), "even".into()),
        Query::And(vec![
            Query::MetaEquals("parity".into(), "odd".into()),
            Query::Term(term(1)),
        ]),
    ];
    if let Some((a, b)) = bigram {
        queries.push(Query::Phrase(vec![a.clone(), b.clone()]));
        queries.push(Query::And(vec![
            Query::Phrase(vec![a, b]),
            Query::Term(term(0)),
        ]));
    }
    queries.push(Query::Phrase(vec!["zzzabsent".into(), term(0)]));
    queries
}

proptest! {
    /// The compressed, pruned index answers every query kind identically to
    /// the naive (uncompressed, exhaustive) index over the same corpus.
    #[test]
    fn compressed_index_matches_naive_on_corpus(seed in 0u64..10_000) {
        let texts = corpus_texts(seed);
        let compressed = build_index(&texts, false);
        let naive_idx = build_index(&texts, true);
        for query in workload(&texts) {
            let fast = compressed.query(&query).unwrap();
            let slow = naive_idx.query(&query).unwrap();
            prop_assert!(fast == slow, "query {:?} diverged: {:?} vs {:?}", query, fast, slow);
        }
    }
}

/// Skip-pointer pruning strictly reduces postings scanned on AND queries,
/// as observed by the `index.postings_scanned` histogram the paper-scale
/// telemetry already exports.
#[test]
fn and_pruning_strictly_reduces_postings_scanned() {
    let texts = corpus_texts(20_050_405);
    let compressed = build_index(&texts, false);
    let naive_idx = build_index(&texts, true);

    let ands: Vec<Query> = workload(&texts)
        .into_iter()
        .filter(|q| matches!(q, Query::And(_)))
        .collect();
    assert!(!ands.is_empty());

    let scan_sum = |idx: &Indexer, queries: &[Query]| {
        for q in queries {
            idx.query(q).unwrap();
        }
        idx.telemetry()
            .snapshot()
            .histograms
            .get("index.postings_scanned")
            .map(|h| h.sum)
            .unwrap_or(0)
    };
    let pruned = scan_sum(&compressed, &ands);
    let exhaustive = scan_sum(&naive_idx, &ands);
    assert!(
        pruned < exhaustive,
        "AND pruning should scan strictly fewer postings: pruned={pruned} exhaustive={exhaustive}"
    );

    // Results still agree under instrumentation.
    for q in &ands {
        assert_eq!(compressed.query(q).unwrap(), naive_idx.query(q).unwrap());
    }
}

// ---------------------------------------------------------------------------
// Golden snapshot of the batch API's output
// ---------------------------------------------------------------------------

/// Fixed documents covering sentences, clitics, entities, sentiment and
/// unicode; the snapshot pins the batch API's full observable output.
fn golden_docs() -> Vec<String> {
    vec![
        "The NR70 takes excellent pictures. The battery drains quickly.".into(),
        "Unlike the T series, the NR70 doesn't require an add-on adapter.".into(),
        "Zorblax shipped a great product. Quuxcorp struggled.".into(),
        "Dr. Smith visited IBM Corp. in New York.".into(),
        "Überraschend gut: the café's naïve décor works.".into(),
        String::new(),
    ]
}

fn render_batch_snapshot() -> String {
    let docs = golden_docs();
    let batch = pipeline().annotate_batch(&docs);
    let sentiments = miner().analyze_named_entities_batch(&docs);
    let mut out = String::from("[\n");
    for (i, (doc, records)) in batch.iter().zip(&sentiments).enumerate() {
        let text = &docs[i];
        out.push_str(&format!("  {{\"doc\": {i}, \"sentences\": [\n"));
        for (j, s) in doc.sentences.iter().enumerate() {
            let tokens: Vec<String> = s.tokens.iter().map(|t| t.text.clone()).collect();
            let tags: Vec<String> = s.tags.iter().map(|t| format!("{t:?}")).collect();
            let chunks: Vec<String> = s
                .chunks
                .iter()
                .map(|c| format!("{:?}:{}..{}", c.kind, c.start, c.end))
                .collect();
            out.push_str(&format!(
                "    {{\"span\": [{}, {}], \"tokens\": {:?}, \"tags\": {:?}, \"chunks\": {:?}, \"clauses\": {}}}{}\n",
                s.span.start,
                s.span.end,
                tokens,
                tags,
                chunks,
                s.analysis.clauses.len(),
                if j + 1 < doc.sentences.len() { "," } else { "" },
            ));
        }
        out.push_str("  ], \"entities\": [");
        let entities: Vec<String> = doc
            .entities
            .iter()
            .map(|e| format!("{:?}@{}..{}", e.text, e.span.start, e.span.end))
            .collect();
        out.push_str(&format!("{:?}", entities));
        out.push_str("], \"sentiments\": [");
        let recs: Vec<String> = records
            .iter()
            .map(|r| format!("{}:{}", r.subject, r.polarity))
            .collect();
        out.push_str(&format!("{:?}", recs));
        out.push_str(&format!(
            "], \"source\": {:?}}}{}\n",
            text,
            if i + 1 < docs.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// The batch API's output is pinned byte-for-byte. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test nlp_equivalence -- golden`.
#[test]
fn golden_batch_snapshot() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/nlp_batch_snapshot.json"
    );
    let rendered = render_batch_snapshot();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "batch NLP output drifted from tests/golden/nlp_batch_snapshot.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The golden snapshot is valid JSON (the shim parser accepts it).
#[test]
fn golden_batch_snapshot_is_json() {
    let rendered = render_batch_snapshot();
    serde_json::from_str::<serde_json::Value>(&rendered).expect("snapshot must parse as JSON");
}

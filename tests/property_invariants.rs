//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;
use webfountain_sentiment::features::{likelihood_ratio, Counts};
use webfountain_sentiment::nlp::{chunk, tokenizer, Pipeline, PosTagger};
use webfountain_sentiment::platform::Regex;
use webfountain_sentiment::spotter::{AhoCorasickBuilder, Spotter, SubjectList};
use webfountain_sentiment::types::{Polarity, Span};

proptest! {
    /// Tokenizer spans always slice back to the token's surface text and
    /// are strictly increasing.
    #[test]
    fn tokenizer_spans_reconstruct(text in "\\PC{0,200}") {
        let tokens = tokenizer::tokenize(&text);
        let mut last_end = 0usize;
        for t in &tokens {
            prop_assert!(t.span.start >= last_end);
            prop_assert_eq!(t.span.slice(&text), t.text.as_str());
            last_end = t.span.end;
        }
    }

    /// Tagging never panics and returns one tag per token, on arbitrary
    /// ASCII-ish text.
    #[test]
    fn tagger_total(text in "[a-zA-Z0-9 ,.!?'-]{0,160}") {
        let tokens = tokenizer::tokenize(&text);
        let tags = PosTagger::new().tag_sentence(&tokens);
        prop_assert_eq!(tags.len(), tokens.len());
    }

    /// Chunks partition the sentence: contiguous, in order, head in range.
    #[test]
    fn chunks_partition(text in "[a-zA-Z ,.']{0,160}") {
        let tokens = tokenizer::tokenize(&text);
        let tags = PosTagger::new().tag_sentence(&tokens);
        let chunks = chunk::chunk(&tokens, &tags);
        let mut pos = 0usize;
        for c in &chunks {
            prop_assert_eq!(c.start, pos);
            prop_assert!(c.end > c.start);
            prop_assert!(c.head >= c.start && c.head < c.end);
            pos = c.end;
        }
        prop_assert_eq!(pos, tokens.len());
    }

    /// Aho–Corasick agrees with naive substring search.
    #[test]
    fn aho_corasick_matches_naive(
        patterns in prop::collection::vec("[ab]{1,4}", 1..6),
        haystack in "[ab]{0,60}",
    ) {
        let mut builder = AhoCorasickBuilder::new();
        for p in &patterns {
            builder.add_pattern(p.as_bytes());
        }
        let ac = builder.build();
        let mut got: Vec<(usize, usize, usize)> = ac
            .find_all(haystack.as_bytes())
            .into_iter()
            .map(|m| (m.pattern, m.start, m.end))
            .collect();
        got.sort_unstable();
        let mut expected = Vec::new();
        for (pid, p) in patterns.iter().enumerate() {
            let mut from = 0;
            while let Some(off) = haystack[from..].find(p.as_str()) {
                let start = from + off;
                expected.push((pid, start, start + p.len()));
                from = start + 1;
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The likelihood-ratio statistic is finite and non-negative for all
    /// consistent 2x2 tables.
    #[test]
    fn likelihood_ratio_nonnegative(
        present_plus in 0u64..200,
        present_minus in 0u64..200,
        extra_plus in 0u64..200,
        extra_minus in 0u64..200,
    ) {
        let counts = Counts::from_presence(
            present_plus,
            present_minus,
            present_plus + extra_plus,
            present_minus + extra_minus,
        );
        let lr = likelihood_ratio(counts);
        prop_assert!(lr.is_finite());
        prop_assert!(lr >= 0.0);
    }

    /// Polarity reversal is an involution and `from_score ∘ score` is the
    /// identity.
    #[test]
    fn polarity_algebra(sign in -5i32..=5) {
        let p = Polarity::from_score(sign);
        prop_assert_eq!(p.reversed().reversed(), p);
        prop_assert_eq!(Polarity::from_score(p.score()), p);
        prop_assert_eq!(p.reversed().score(), -p.score());
    }

    /// Spot spans always slice to an ASCII-case-insensitive match of one
    /// of the subject's variants, on word boundaries.
    #[test]
    fn spots_are_real_occurrences(haystack in "[a-z N7R]{0,120}") {
        let subjects = SubjectList::builder()
            .subject("NR70", ["NR70", "NR70 series"])
            .build();
        let spotter = Spotter::new(&subjects);
        for spot in spotter.spot(&haystack) {
            let surface = spot.span.slice(&haystack);
            prop_assert!(surface.eq_ignore_ascii_case(&spot.variant));
        }
    }

    /// The regex engine agrees with a literal matcher on literal patterns.
    #[test]
    fn regex_literals(pattern in "[a-z]{1,8}", text in "[a-z]{0,12}") {
        let re = Regex::new(&pattern).unwrap();
        prop_assert_eq!(re.is_match(&text), pattern == text);
    }

    /// `prefix.*` matches exactly the strings with that prefix.
    #[test]
    fn regex_prefix_wildcard(prefix in "[a-z]{1,6}", text in "[a-z]{0,12}") {
        let re = Regex::new(&format!("{prefix}.*")).unwrap();
        prop_assert_eq!(re.is_match(&text), text.starts_with(&prefix));
    }

    /// Sentence analysis never panics on arbitrary printable text and the
    /// clause chunk ranges stay in bounds.
    #[test]
    fn full_pipeline_total(text in "\\PC{0,200}") {
        let pipeline = Pipeline::new();
        for sentence in pipeline.analyze(&text) {
            for clause in &sentence.analysis.clauses {
                prop_assert!(clause.chunk_end <= sentence.chunks.len());
                if let Some(s) = clause.subject {
                    prop_assert!(s < sentence.chunks.len());
                }
            }
        }
    }

    /// Span covering is commutative and contains both inputs.
    #[test]
    fn span_cover_properties(a in 0usize..500, b in 0usize..500, c in 0usize..500, d in 0usize..500) {
        let s1 = Span::new(a.min(b), a.max(b));
        let s2 = Span::new(c.min(d), c.max(d));
        let cover = s1.cover(s2);
        prop_assert_eq!(cover, s2.cover(s1));
        prop_assert!(cover.contains(s1));
        prop_assert!(cover.contains(s2));
    }
}

proptest! {
    /// Index term queries agree with a naive scan over document texts.
    #[test]
    fn index_term_query_matches_scan(
        docs in prop::collection::vec("[a-c ]{0,30}", 1..12),
        needle in "[a-c]{1,3}",
    ) {
        use webfountain_sentiment::platform::{Entity, Indexer, Query, SourceKind};
        use webfountain_sentiment::types::DocId;
        let indexer = Indexer::new();
        for (i, text) in docs.iter().enumerate() {
            let mut e = Entity::new(format!("u{i}"), SourceKind::Web, text.clone());
            e.id = DocId(i as u64);
            indexer.index_entity(&e);
        }
        let got = indexer.query(&Query::Term(needle.clone())).unwrap();
        let expected: Vec<DocId> = docs
            .iter()
            .enumerate()
            .filter(|(_, text)| {
                text.split(' ').any(|w| w == needle)
            })
            .map(|(i, _)| DocId(i as u64))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Store persistence round-trips arbitrary entity content.
    #[test]
    fn persist_round_trip(texts in prop::collection::vec("\\PC{0,60}", 0..8)) {
        use webfountain_sentiment::platform::{
            load_store, save_store, DataStore, Entity, SourceKind,
        };
        let store = DataStore::new(2).unwrap();
        for (i, text) in texts.iter().enumerate() {
            store.insert(
                Entity::new(format!("uri://{i}"), SourceKind::Web, text.clone())
                    .with_metadata("idx", i.to_string()),
            );
        }
        let mut path = std::env::temp_dir();
        path.push(format!(
            "wf-prop-{}-{}.jsonl",
            std::process::id(),
            texts.len()
        ));
        save_store(&store, &path).unwrap();
        let loaded = load_store(&path, 3).unwrap();
        prop_assert_eq!(loaded.len(), store.len());
        for id in store.ids() {
            let a = store.get(id).unwrap();
            let b = loaded.get(id).unwrap();
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(&a.metadata, &b.metadata);
        }
        std::fs::remove_file(&path).ok();
    }

    /// The likelihood-ratio extractor's scores are deterministic across
    /// invocations for the same input.
    #[test]
    fn feature_ranking_deterministic(seed in 0u64..50) {
        use webfountain_sentiment::corpus::{camera_reviews, ReviewConfig};
        use webfountain_sentiment::features::FeatureExtractor;
        let config = ReviewConfig {
            n_plus: 4,
            n_minus: 6,
            ..ReviewConfig::small()
        };
        let corpus = camera_reviews(seed, &config);
        let fx = FeatureExtractor::new();
        let a = fx.rank(&corpus.d_plus_texts(), &corpus.d_minus_texts());
        let b = fx.rank(&corpus.d_plus_texts(), &corpus.d_minus_texts());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.term, &y.term);
            prop_assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    /// Sentiment mining output is insensitive to leading/trailing
    /// whitespace around the document.
    #[test]
    fn miner_whitespace_invariance(pad_left in 0usize..4, pad_right in 0usize..4) {
        use webfountain_sentiment::prelude::*;
        use webfountain_sentiment::sentiment::mention_polarities;
        let core = "The Canon takes excellent pictures.";
        let text = format!("{}{}{}", " ".repeat(pad_left), core, " ".repeat(pad_right));
        let subjects = SubjectList::builder().subject("Canon", ["Canon"]).build();
        let miner = SentimentMiner::with_default_resources();
        let records = miner.analyze_text(&text, &subjects);
        let polarities: Vec<Polarity> = mention_polarities(&records)
            .into_iter()
            .map(|(_, _, p)| p)
            .collect();
        prop_assert_eq!(polarities, vec![Polarity::Positive]);
    }
}

proptest! {
    /// The query parser never panics; on success the query executes
    /// against an index without error (except regex atoms, which may
    /// carry invalid patterns).
    #[test]
    fn query_parser_total(input in "\\PC{0,60}") {
        use webfountain_sentiment::platform::{parse_query, Indexer, Query};
        if let Ok(query) = parse_query(&input) {
            let indexer = Indexer::new();
            fn has_regex(q: &Query) -> bool {
                match q {
                    Query::Regex(_) => true,
                    Query::And(qs) | Query::Or(qs) => qs.iter().any(has_regex),
                    Query::Not(inner) => has_regex(inner),
                    _ => false,
                }
            }
            let result = indexer.query(&query);
            if !has_regex(&query) {
                prop_assert!(result.is_ok(), "{query:?}");
            }
        }
    }

    /// Well-formed boolean queries round-trip through the parser into the
    /// expected shapes.
    #[test]
    fn query_parser_boolean_shapes(
        a in "[a-z]{1,6}",
        b in "[a-z]{1,6}",
        c in "[a-z]{1,6}",
    ) {
        use webfountain_sentiment::platform::{parse_query, Query};
        prop_assume!(!["and", "or", "not"].contains(&a.as_str()));
        prop_assume!(!["and", "or", "not"].contains(&b.as_str()));
        prop_assume!(!["and", "or", "not"].contains(&c.as_str()));
        let q = parse_query(&format!("{a} AND ({b} OR NOT {c})")).unwrap();
        prop_assert_eq!(
            q,
            Query::And(vec![
                Query::Term(a),
                Query::Or(vec![
                    Query::Term(b),
                    Query::Not(Box::new(Query::Term(c))),
                ]),
            ])
        );
    }

    /// The regex compiler never panics on arbitrary input.
    #[test]
    fn regex_compile_total(pattern in "\\PC{0,40}") {
        use webfountain_sentiment::platform::Regex;
        if let Ok(re) = Regex::new(&pattern) {
            // matching must also be panic-free
            let _ = re.is_match("probe text");
            let _ = re.is_match("");
        }
    }
}

//! # webfountain-sentiment
//!
//! A from-scratch Rust reproduction of *Sentiment Mining in WebFountain*
//! (Jeonghee Yi & Wayne Niblack, ICDE 2005): target-level sentiment mining
//! with NLP-based semantic relationship analysis, running on a simulated
//! WebFountain text-analytics platform.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. Start with [`sentiment::SentimentMiner`] for the paper's core
//! contribution, or [`platform`] for the end-to-end pipeline.
//!
//! ```
//! use webfountain_sentiment::prelude::*;
//!
//! let miner = SentimentMiner::with_default_resources();
//! let subjects = SubjectList::builder()
//!     .subject("camera", ["camera", "cameras"])
//!     .build();
//! let results = miner.analyze_text("This camera takes excellent pictures.", &subjects);
//! assert_eq!(results[0].polarity, Polarity::Positive);
//! ```

pub use wf_baselines as baselines;
pub use wf_corpus as corpus;
pub use wf_eval as eval;
pub use wf_features as features;
pub use wf_lexicon as lexicon;
pub use wf_nlp as nlp;
pub use wf_platform as platform;
pub use wf_sentiment as sentiment;
pub use wf_spotter as spotter;
pub use wf_types as types;

/// Most commonly used items, for glob import.
pub mod prelude {
    pub use wf_sentiment::{SentimentMiner, SubjectList};
    pub use wf_types::{DocId, Polarity, Span};
}

#!/usr/bin/env python3
"""Perf-regression gate for the wf-bench artifacts.

Compares every ``BENCH_*.json`` in a baseline directory against a fresh
run in a current directory:

* Keys ending in ``_wall_us`` are wall-clock timings and get a one-sided
  tolerance: the gate fails only when the current value exceeds
  ``baseline * (1 + tolerance)`` AND the absolute growth exceeds
  ``--floor-us`` (tiny benches jitter wildly in relative terms, so a
  percentage alone would flap).
* Every other leaf — counts, simulated time, seeds, the whole embedded
  ``metrics`` snapshot — is deterministic by design and must match the
  baseline exactly. A drift there is a behaviour change, not noise, and
  the fix is either a code fix or a deliberate baseline regeneration.
* An artifact that carries ``naive_wall_us``, ``batch_wall_us`` and
  ``speedup_floor_milli`` additionally promises a throughput ratio: the
  gate fails when ``batch_wall_us * speedup_floor_milli >
  naive_wall_us * 1000``, i.e. when the optimized path dips below the
  declared multiple of the reference path *in the current run*. Unlike
  the per-key tolerance this compares two timings from the same machine
  and run, so it holds regardless of how fast the CI host is.

With ``--diff-verdict FILE`` (repeatable) the gate additionally consumes
``wfsm diff --format json`` outputs: each file must carry a ``verdict``
of ``ok`` — ``changed`` or ``regressed`` fails the gate, with the diff's
own stage/counter attribution echoed into the failure list.

With ``--expect`` the gate also pins the artifact set: every listed
name must exist in both directories, and any ``BENCH_*.json`` found in
either directory but not listed fails the gate. Without an explicit
list, an artifact that CI forgets to re-run compares against its own
stale copy and silently passes — the list turns "forgot to gate it"
into a hard failure. Non-bench files (e.g. a stale ``results.json``)
are ignored either way.

Exit codes: 0 clean, 1 regression/drift found, 2 usage or I/O error.

Usage:
    python3 tools/bench_gate.py --baseline artifacts-baseline --current artifacts \
        --expect BENCH_serving.json,BENCH_profile.json
"""

import argparse
import json
import sys
from pathlib import Path

WALL_SUFFIX = "_wall_us"


def walk(path, base, cur, failures, tolerance, floor_us):
    """Recursively diff ``cur`` against ``base``, appending failure strings."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(base):
            if key not in cur:
                failures.append(f"{path}.{key}: missing from current run")
            else:
                walk(f"{path}.{key}", base[key], cur[key], failures, tolerance, floor_us)
        for key in sorted(set(cur) - set(base)):
            failures.append(
                f"{path}.{key}: new key absent from baseline "
                f"(regenerate the baseline artifact if intentional)"
            )
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            failures.append(f"{path}: length {len(base)} -> {len(cur)}")
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            walk(f"{path}[{i}]", b, c, failures, tolerance, floor_us)
        return

    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith(WALL_SUFFIX):
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
            failures.append(f"{path}: timing must be numeric, got {base!r} -> {cur!r}")
        elif cur > base * (1.0 + tolerance) and cur - base > floor_us:
            failures.append(
                f"{path}: {base} us -> {cur} us "
                f"(+{100.0 * (cur - base) / max(base, 1):.0f}%, "
                f"tolerance {100.0 * tolerance:.0f}% + {floor_us} us floor)"
            )
        return
    if base != cur:
        failures.append(
            f"{path}: deterministic value drifted: {base!r} -> {cur!r} "
            f"(regenerate the baseline artifact if intentional)"
        )


def check_speedup_floor(name, cur, failures):
    """Enforces an artifact's self-declared speedup floor, if present."""
    if not isinstance(cur, dict):
        return
    keys = ("naive_wall_us", "batch_wall_us", "speedup_floor_milli")
    if not all(isinstance(cur.get(k), (int, float)) for k in keys):
        return
    naive_us = cur["naive_wall_us"]
    batch_us = cur["batch_wall_us"]
    floor_milli = cur["speedup_floor_milli"]
    if batch_us * floor_milli > naive_us * 1000:
        actual_milli = naive_us * 1000 / max(batch_us, 1)
        failures.append(
            f"{name}: speedup floor violated: naive {naive_us} us / batch {batch_us} us "
            f"= {actual_milli:.0f} milli-x < declared floor {floor_milli} milli-x"
        )


def check_diff_verdict(path, failures):
    """Consumes one ``wfsm diff --format json`` artifact: verdict must be ok."""
    try:
        diff = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        failures.append(f"{path}: cannot read diff verdict: {err}")
        return
    verdict = diff.get("verdict") if isinstance(diff, dict) else None
    if verdict == "ok":
        return
    if verdict not in ("changed", "regressed"):
        failures.append(f"{path}: not a wfsm diff artifact (verdict {verdict!r})")
        return
    failures.append(f"{path}: run diff verdict is {verdict!r} (want 'ok')")
    for stage in diff.get("stages", []):
        failures.append(
            f"{path}: stage {stage.get('path')!r} self "
            f"{stage.get('self_ms_a')}ms -> {stage.get('self_ms_b')}ms "
            f"({stage.get('delta_ms'):+}ms)"
        )
    for section in ("counters", "gauges"):
        for delta in diff.get(section, []):
            failures.append(
                f"{path}: {section[:-1]} {delta.get('name')!r} "
                f"{delta.get('a')} -> {delta.get('b')}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="directory of checked-in BENCH_*.json")
    parser.add_argument("--current", required=True, help="directory of freshly produced BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed relative wall-clock growth (2.0 = 3x baseline; CI machines vary)",
    )
    parser.add_argument(
        "--floor-us",
        type=int,
        default=20000,
        help="absolute growth in microseconds a timing must also exceed to fail",
    )
    parser.add_argument(
        "--expect",
        action="append",
        default=None,
        metavar="NAMES",
        help="comma-separated BENCH_*.json names that must be gated (repeatable); "
        "any artifact in either directory but not listed fails the gate",
    )
    parser.add_argument(
        "--diff-verdict",
        action="append",
        default=None,
        metavar="FILE",
        help="wfsm diff --format json output that must report verdict 'ok' (repeatable)",
    )
    args = parser.parse_args()

    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    for d in (baseline_dir, current_dir):
        if not d.is_dir():
            print(f"bench gate: not a directory: {d}", file=sys.stderr)
            return 2

    expected = None
    if args.expect:
        expected = sorted({n for group in args.expect for n in group.split(",") if n})
        if not expected:
            print("bench gate: --expect given but names to expect are empty", file=sys.stderr)
            return 2

    names = sorted(p.name for p in baseline_dir.glob("BENCH_*.json"))
    if not names:
        print(f"bench gate: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    if expected is not None:
        for name in expected:
            if name not in names:
                failures.append(
                    f"{name}: expected artifact has no checked-in baseline in {baseline_dir}"
                )
        for stray in names:
            if stray not in expected:
                failures.append(
                    f"{stray}: baseline artifact has no matching gate rule "
                    f"(add it to --expect or delete the artifact)"
                )
        names = [name for name in expected if name in names]

    for name in names:
        cur_path = current_dir / name
        if not cur_path.is_file():
            failures.append(f"{name}: bench artifact not produced by current run")
            continue
        try:
            base = json.loads((baseline_dir / name).read_text())
            cur = json.loads(cur_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench gate: cannot read {name}: {err}", file=sys.stderr)
            return 2
        walk(name, base, cur, failures, args.tolerance, args.floor_us)
        check_speedup_floor(name, cur, failures)

    for verdict_path in args.diff_verdict or []:
        check_diff_verdict(verdict_path, failures)

    for extra in sorted(p.name for p in current_dir.glob("BENCH_*.json")):
        if expected is not None and extra not in expected:
            failures.append(
                f"{extra}: produced by current run but has no matching gate rule "
                f"(add it to --expect or stop producing it)"
            )
        elif extra not in names:
            failures.append(
                f"{extra}: produced by current run but has no checked-in baseline "
                f"(copy it into {baseline_dir} to adopt it)"
            )

    if failures:
        print(f"bench gate: {len(failures)} regression(s) across {len(names)} artifact(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"bench gate: OK ({len(names)} artifact(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

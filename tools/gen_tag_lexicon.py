#!/usr/bin/env python3
"""Generates crates/nlp/data/tag_lexicon.tsv.

The tag dictionary maps inflected English word forms to their possible Penn
Treebank tags (first tag = most likely, used as the tagger's initial guess).
Closed-class words live directly in Rust (crates/nlp/src/dict.rs); this file
covers the open classes: verbs (all inflections), nouns (singular + plural),
adjectives and adverbs.

Run from the repo root:  python3 tools/gen_tag_lexicon.py
The output TSV is committed; re-run only when the word lists change.
"""

import collections

# ---------------------------------------------------------------- verbs

IRREGULAR_VERBS = {
    # lemma: (VBZ, VBD, VBN, VBG)
    "be": None,  # handled as closed-class in Rust
    "have": ("has", "had", "had", "having"),
    "do": ("does", "did", "done", "doing"),
    "take": ("takes", "took", "taken", "taking"),
    "make": ("makes", "made", "made", "making"),
    "get": ("gets", "got", "gotten", "getting"),
    "give": ("gives", "gave", "given", "giving"),
    "go": ("goes", "went", "gone", "going"),
    "come": ("comes", "came", "come", "coming"),
    "see": ("sees", "saw", "seen", "seeing"),
    "become": ("becomes", "became", "become", "becoming"),
    "feel": ("feels", "felt", "felt", "feeling"),
    "find": ("finds", "found", "found", "finding"),
    "think": ("thinks", "thought", "thought", "thinking"),
    "know": ("knows", "knew", "known", "knowing"),
    "say": ("says", "said", "said", "saying"),
    "buy": ("buys", "bought", "bought", "buying"),
    "sell": ("sells", "sold", "sold", "selling"),
    "break": ("breaks", "broke", "broken", "breaking"),
    "freeze": ("freezes", "froze", "frozen", "freezing"),
    "keep": ("keeps", "kept", "kept", "keeping"),
    "hold": ("holds", "held", "held", "holding"),
    "win": ("wins", "won", "won", "winning"),
    "lose": ("loses", "lost", "lost", "losing"),
    "fall": ("falls", "fell", "fallen", "falling"),
    "rise": ("rises", "rose", "risen", "rising"),
    "grow": ("grows", "grew", "grown", "growing"),
    "shrink": ("shrinks", "shrank", "shrunk", "shrinking"),
    "run": ("runs", "ran", "run", "running"),
    "meet": ("meets", "met", "met", "meeting"),
    "beat": ("beats", "beat", "beaten", "beating"),
    "cost": ("costs", "cost", "cost", "costing"),
    "shoot": ("shoots", "shot", "shot", "shooting"),
    "write": ("writes", "wrote", "written", "writing"),
    "read": ("reads", "read", "read", "reading"),
    "hear": ("hears", "heard", "heard", "hearing"),
    "hurt": ("hurts", "hurt", "hurt", "hurting"),
    "fit": ("fits", "fit", "fit", "fitting"),
    "shine": ("shines", "shone", "shone", "shining"),
    "outperform": ("outperforms", "outperformed", "outperformed", "outperforming"),
}

DOUBLING = {
    "ship": "shipp", "drop": "dropp", "plan": "plann", "slam": "slamm",
    "pan": "pann", "lag": "lagg", "drag": "dragg", "stop": "stopp",
    "equip": "equipp", "regret": "regrett", "refer": "referr",
}

REGULAR_VERBS = """
seem appear look remain stay offer provide deliver produce perform work fail
succeed improve degrade impress disappoint satisfy dissatisfy please annoy
frustrate delight amaze astonish love like hate dislike enjoy prefer recommend
suggest criticize praise complain report announce state claim mention describe
review rate use try test own return replace ship arrive crash lag last charge
drain capture record play sound lack miss include feature support require need
want expect exceed surpass overheat malfunction excel struggle suffer benefit
boost harm damage ruin enhance upgrade downgrade fix solve cause avoid prevent
handle manage launch release develop design equip save waste gain drop
increase decrease focus zoom click turn switch install update respond react
load store process analyze believe consider regard call carry weigh measure
compare contrast note notice observe reveal show demonstrate prove indicate
listen watch deserve earn receive award honor blame fault accuse defend tout
hail slam pan trash applaud commend endorse dismiss reject approve disapprove
appreciate value treasure regret worry concern trouble bother irritate
infuriate outrage thrill excite bore tire exhaust confuse clarify simplify
complicate stop help start continue finish plan push pull open close add
remove deploy track extract mine analyze spot detect identify assign mask
crawl index serve host drill refine pump leak spill pollute contaminate
clean restore recover approve prescribe treat cure heal vaccinate test
recall mitigate address highlight underline stress emphasize die tie vary copy
""".split()


def verb_forms(lemma):
    if lemma in IRREGULAR_VERBS and IRREGULAR_VERBS[lemma]:
        vbz, vbd, vbn, vbg = IRREGULAR_VERBS[lemma]
        return vbz, vbd, vbn, vbg
    stem = DOUBLING.get(lemma, lemma)
    # VBZ
    if lemma.endswith(("s", "x", "z", "ch", "sh", "o")):
        vbz = lemma + "es"
    elif lemma.endswith("y") and lemma[-2] not in "aeiou":
        vbz = lemma[:-1] + "ies"
    else:
        vbz = lemma + "s"
    # VBD / VBN
    if lemma.endswith("e"):
        vbd = lemma + "d"
    elif lemma.endswith("y") and lemma[-2] not in "aeiou":
        vbd = lemma[:-1] + "ied"
    else:
        vbd = stem + "ed"
    vbn = vbd
    # VBG
    if lemma.endswith("e") and not lemma.endswith(("ee", "ye", "oe")):
        vbg = lemma[:-1] + "ing"
    else:
        vbg = stem + "ing"
    return vbz, vbd, vbn, vbg


# ---------------------------------------------------------------- nouns

IRREGULAR_NOUNS = {
    "person": "people", "man": "men", "woman": "women", "child": "children",
    "lens": "lenses", "datum": "data", "medium": "media", "analysis": "analyses",
    "series": "series", "species": "species",
}

NOUNS = """
camera picture flash lens quality battery software price life viewfinder
color feature image menu manual photo movie resolution zoom screen display
sensor shutter button grip body card memory stick adapter playback mode
setting option interface design size weight build performance speed autofocus
focus exposure noise sharpness contrast brightness video audio sound
microphone speaker strap case charger cable port firmware update warranty
service support shipping delivery packaging box product brand company market
customer consumer user reviewer review rating star opinion sentiment
complaint praise problem issue defect flaw strength weakness advantage
disadvantage drawback benefit song album track music piece band orchestra
guitar beat production chorus mix piano work vocal melody harmony rhythm
tempo bass drum singer artist composer conductor symphony concerto recording
arrangement instrumentation solo riff hook verse bridge movement lyric
oil gas petroleum refinery pipeline drilling crude barrel fuel gasoline
diesel energy exploration reserve well rig spill emission environment
regulation regulator drug medicine medication pill tablet dose dosage
treatment therapy trial patient doctor effect symptom disease condition
prescription pharmacy vaccine efficacy safety approval label ingredient
formula side page website article news story report analyst study survey
result information system platform technology industry business sale revenue
profit loss growth decline year month week day time way thing person man
woman world country government team group part attribute aspect area
case point fact example number percent share stock investor deal agreement measure
partnership launch release version model series line unit device machine
tool kit change expansion subject topic term phrase sentence document corpus
miner spotter index entity cluster server application datum child spokesman
executive officer chief president statement response investigation fine
penalty lawsuit settlement plant facility site project operation process
capability function improvement upgrade firm corporation competitor rival
expectation requirement standard level degree range variety collection set
list type kind class category group member element component construct
lack excess abundance shortage surplus need want care look run polish
""".split()


def noun_plural(noun):
    if noun in IRREGULAR_NOUNS:
        return IRREGULAR_NOUNS[noun]
    if noun.endswith(("s", "x", "z", "ch", "sh")):
        return noun + "es"
    if noun.endswith("y") and noun[-2] not in "aeiou":
        return noun[:-1] + "ies"
    if noun.endswith("o") and noun[-2] not in "aeiou":
        return noun + "s"  # photos, pianos — domain nouns take plain s
    return noun + "s"


# ------------------------------------------------------------ adjectives

ADJECTIVES = """
excellent great good amazing awesome fantastic wonderful superb outstanding
impressive remarkable exceptional brilliant terrific marvelous splendid
stellar solid reliable durable sturdy fast quick responsive sharp crisp
clear vivid vibrant bright accurate precise smooth seamless intuitive
elegant sleek stylish beautiful gorgeous stunning comfortable convenient
easy simple effective efficient powerful versatile flexible robust compact
lightweight affordable valuable worthwhile satisfying enjoyable pleasant
delightful flawless perfect superior innovative advanced generous rich deep
warm lush catchy memorable soulful energetic welcome favorable positive
commendable praiseworthy laudable admirable competent capable functional
usable helpful useful handy friendly pleasing refined polished masterful
bad poor terrible awful horrible dreadful atrocious disappointing mediocre
inferior subpar lousy cheap flimsy fragile weak slow sluggish laggy
unresponsive blurry grainy noisy dim dull inaccurate imprecise clunky
awkward cumbersome confusing complicated difficult hard ineffective
inefficient useless worthless overpriced expensive unreliable defective
faulty broken buggy glitchy annoying frustrating irritating infuriating
unacceptable inadequate insufficient limited shallow bland boring tedious
forgettable lifeless harsh tinny muddy ugly hideous bulky heavy
uncomfortable inconvenient messy shoddy sloppy abysmal dismal negative
unfavorable troubling alarming disturbing questionable dubious lackluster
unimpressive underwhelming problematic disastrous catastrophic
digital optical electronic mechanical automatic standard basic main primary
secondary recent new old early late current previous next final large small
big long short high low full empty open closed black white red blue green
silver available common typical general special specific certain various
several corporate financial environmental medical clinical technical
professional public private national international local global annual
quarterly monthly daily definite base known unknown ambiguous neutral
original entire whole major minor key central essential additional extra real
non-memory add-on third-party entry-level high-end low-end mid-range
""".split()

COMPARATIVES = {
    "better": "JJR", "best": "JJS", "worse": "JJR", "worst": "JJS",
    "greater": "JJR", "greatest": "JJS", "higher": "JJR", "highest": "JJS",
    "lower": "JJR", "lowest": "JJS", "larger": "JJR", "largest": "JJS",
    "smaller": "JJR", "smallest": "JJS", "faster": "JJR", "fastest": "JJS",
    "slower": "JJR", "slowest": "JJS", "cheaper": "JJR", "cheapest": "JJS",
    "sharper": "JJR", "sharpest": "JJS", "newer": "JJR", "newest": "JJS",
    "older": "JJR", "oldest": "JJS", "stronger": "JJR", "strongest": "JJS",
    "weaker": "JJR", "weakest": "JJS", "earlier": "JJR", "earliest": "JJS",
    "later": "JJR", "latest": "JJS", "finer": "JJR", "finest": "JJS",
}

# -------------------------------------------------------------- adverbs

ADVERBS = """
very really quite extremely incredibly remarkably exceptionally surprisingly
highly truly fairly rather somewhat slightly too so just only also even
still already often sometimes usually always generally typically certainly
definitely probably perhaps maybe however moreover furthermore nevertheless
nonetheless meanwhile finally eventually recently currently previously
initially ultimately well badly poorly nicely beautifully perfectly
flawlessly smoothly quickly slowly easily consistently repeatedly constantly
frequently occasionally reportedly allegedly apparently clearly obviously
notably significantly substantially considerably marginally barely again
once twice now then yesterday today tomorrow especially particularly
unfortunately sadly regrettably thankfully fortunately happily
""".split()


def main():
    entries = collections.OrderedDict()

    def add(word, tag):
        word = word.lower()
        tags = entries.setdefault(word, [])
        if tag not in tags:
            tags.append(tag)

    # Nouns first so noun reading is the default for N/V-ambiguous words;
    # the tagger's contextual rules promote verb readings.
    for n in NOUNS:
        add(n, "NN")
        add(noun_plural(n), "NNS")
    for a in ADJECTIVES:
        add(a, "JJ")
    for w, t in COMPARATIVES.items():
        add(w, t)
    for r in ADVERBS:
        add(r, "RB")
    for lemma in list(IRREGULAR_VERBS) + REGULAR_VERBS:
        if lemma == "be":
            continue
        vbz, vbd, vbn, vbg = verb_forms(lemma)
        add(lemma, "VB")
        add(lemma, "VBP")
        add(vbz, "VBZ")
        add(vbd, "VBD")
        add(vbn, "VBN")
        add(vbg, "VBG")

    with open("crates/nlp/data/tag_lexicon.tsv", "w") as f:
        f.write("# word<TAB>comma-separated Penn tags, most likely first\n")
        f.write("# generated by tools/gen_tag_lexicon.py — edit the script, not this file\n")
        for word, tags in sorted(entries.items()):
            f.write(f"{word}\t{','.join(tags)}\n")
    print(f"wrote {len(entries)} entries")


if __name__ == "__main__":
    main()

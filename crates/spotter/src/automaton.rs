//! From-scratch Aho–Corasick multi-pattern string automaton.
//!
//! The WebFountain spotter must find occurrences of thousands of subject
//! terms in a single pass over each document; a trie with failure links
//! (Aho & Corasick 1975) gives O(text + matches) matching regardless of the
//! number of patterns. Matching is byte-based over ASCII-lowercased input;
//! word-boundary filtering happens in the spotter layer.

/// Identifier of a pattern within an automaton (insertion order).
pub type PatternId = usize;

/// A match: pattern id plus byte range `[start, end)` in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    pub pattern: PatternId,
    pub start: usize,
    pub end: usize,
}

#[derive(Debug, Clone)]
struct Node {
    /// Transitions: byte → node index. A dense 256-slot table would be
    /// faster but 256×usize per node is wasteful for large pattern sets;
    /// a sorted small vec keeps the automaton compact.
    next: Vec<(u8, u32)>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this node (via output links, flattened at build).
    outputs: Vec<PatternId>,
}

impl Node {
    fn new() -> Self {
        Node {
            next: Vec::new(),
            fail: 0,
            outputs: Vec::new(),
        }
    }

    fn get(&self, byte: u8) -> Option<u32> {
        self.next
            .binary_search_by_key(&byte, |&(b, _)| b)
            .ok()
            .map(|i| self.next[i].1)
    }

    fn set(&mut self, byte: u8, node: u32) {
        match self.next.binary_search_by_key(&byte, |&(b, _)| b) {
            Ok(i) => self.next[i].1 = node,
            Err(i) => self.next.insert(i, (byte, node)),
        }
    }
}

/// Immutable matcher built by [`AhoCorasickBuilder`].
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
}

/// Builder: add patterns, then [`AhoCorasickBuilder::build`].
#[derive(Debug, Default)]
pub struct AhoCorasickBuilder {
    patterns: Vec<Vec<u8>>,
}

impl AhoCorasickBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern; returns its [`PatternId`]. Patterns are matched
    /// byte-exactly (callers normalize case beforehand). Empty patterns are
    /// legal to add but never match.
    pub fn add_pattern(&mut self, pattern: impl AsRef<[u8]>) -> PatternId {
        self.patterns.push(pattern.as_ref().to_vec());
        self.patterns.len() - 1
    }

    /// Number of patterns added so far.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Builds the automaton: trie construction, then BFS failure links with
    /// output flattening.
    pub fn build(self) -> AhoCorasick {
        let mut nodes = vec![Node::new()];
        let mut pattern_lens = Vec::with_capacity(self.patterns.len());
        // Trie
        for (pid, pat) in self.patterns.iter().enumerate() {
            pattern_lens.push(pat.len());
            if pat.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in pat.iter() {
                cur = match nodes[cur as usize].get(b) {
                    Some(n) => n,
                    None => {
                        let idx = nodes.len() as u32;
                        nodes.push(Node::new());
                        nodes[cur as usize].set(b, idx);
                        idx
                    }
                };
            }
            nodes[cur as usize].outputs.push(pid);
        }
        // BFS failure links
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].next.clone();
        for &(_, child) in &root_children {
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(u) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> = nodes[u as usize].next.clone();
            for (b, v) in transitions {
                // failure of v: follow u's failure chain
                let mut f = nodes[u as usize].fail;
                let vfail = loop {
                    if let Some(n) = nodes[f as usize].get(b) {
                        break n;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                let vfail = if vfail == v { 0 } else { vfail };
                nodes[v as usize].fail = vfail;
                // flatten outputs
                let inherited = nodes[vfail as usize].outputs.clone();
                nodes[v as usize].outputs.extend(inherited);
                queue.push_back(v);
            }
        }
        AhoCorasick {
            nodes,
            pattern_lens,
        }
    }
}

impl AhoCorasick {
    /// Finds all (overlapping) matches in `haystack`.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.for_each_match(haystack, |m| out.push(m));
        out
    }

    /// Streaming variant of [`AhoCorasick::find_all`].
    pub fn for_each_match<F: FnMut(Match)>(&self, haystack: &[u8], mut f: F) {
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            // follow failure links until a transition exists
            loop {
                if let Some(n) = self.nodes[state as usize].get(b) {
                    state = n;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.nodes[state as usize].fail;
            }
            for &pid in &self.nodes[state as usize].outputs {
                let len = self.pattern_lens[pid];
                f(Match {
                    pattern: pid,
                    start: i + 1 - len,
                    end: i + 1,
                });
            }
        }
    }

    /// Number of trie nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(patterns: &[&str]) -> AhoCorasick {
        let mut b = AhoCorasickBuilder::new();
        for p in patterns {
            b.add_pattern(p.as_bytes());
        }
        b.build()
    }

    /// Reference implementation for cross-checking.
    fn naive(patterns: &[&str], haystack: &str) -> Vec<Match> {
        let mut out = Vec::new();
        for (pid, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                continue;
            }
            let mut from = 0;
            while let Some(pos) = haystack[from..].find(p) {
                let start = from + pos;
                out.push(Match {
                    pattern: pid,
                    start,
                    end: start + p.len(),
                });
                from = start + 1;
            }
        }
        out.sort_by_key(|m| (m.end, m.pattern));
        out
    }

    fn assert_matches_naive(patterns: &[&str], haystack: &str) {
        let ac = build(patterns);
        let mut got = ac.find_all(haystack.as_bytes());
        got.sort_by_key(|m| (m.end, m.pattern));
        assert_eq!(
            got,
            naive(patterns, haystack),
            "patterns={patterns:?} hay={haystack:?}"
        );
    }

    #[test]
    fn single_pattern() {
        assert_matches_naive(&["camera"], "the camera is a camera");
    }

    #[test]
    fn overlapping_patterns() {
        assert_matches_naive(&["ab", "babc", "bc", "c"], "ababcbabc");
    }

    #[test]
    fn pattern_is_substring_of_another() {
        assert_matches_naive(&["he", "she", "his", "hers"], "ushers she his");
    }

    #[test]
    fn classic_aho_corasick_example() {
        let ac = build(&["he", "she", "his", "hers"]);
        let ms = ac.find_all(b"ushers");
        // "she" at 1..4, "he" at 2..4, "hers" at 2..6
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn no_matches() {
        let ac = build(&["xyz"]);
        assert!(ac.find_all(b"abcabc").is_empty());
    }

    #[test]
    fn empty_haystack_and_empty_pattern() {
        let ac = build(&["a", ""]);
        assert!(ac.find_all(b"").is_empty());
        // the empty pattern never matches
        assert_eq!(ac.find_all(b"a").len(), 1);
    }

    #[test]
    fn repeated_identical_patterns() {
        let ac = build(&["ab", "ab"]);
        let ms = ac.find_all(b"ab");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].start, 0);
    }

    #[test]
    fn multiword_phrases() {
        assert_matches_naive(
            &["picture quality", "battery life", "battery"],
            "the picture quality and battery life impress; battery included",
        );
    }

    #[test]
    fn self_failure_loop_guard() {
        // patterns like "aa" must not create self-referential failure links
        let ac = build(&["aa", "aaa"]);
        let ms = ac.find_all(b"aaaa");
        // "aa" at 0..2, 1..3, 2..4; "aaa" at 0..3, 1..4
        assert_eq!(ms.len(), 5);
    }

    #[test]
    fn unicode_bytes_pass_through() {
        // matching is byte-based; multi-byte sequences match exactly
        assert_matches_naive(&["café"], "the café is a café");
    }
}

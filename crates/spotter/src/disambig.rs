//! The disambiguator: decides whether a spot really refers to the intended
//! subject.
//!
//! Per the paper (after Amitay et al., CIKM 2003): disambiguation "can be
//! achieved by relying on the presence or absence of additional terms that
//! appear in the context of a subject. It utilizes user-defined sets of
//! terms that are positively (or negatively) related to the topic [...] For
//! each spot, it computes a score for a local context surrounding the spot,
//! and a global context (the full document). The score is based on the
//! on-topic and off-topic terms found, their TF·IDF scores, and their types
//! (single term or lexical affinity). If the global context score passes a
//! threshold, all spots on the page are considered on-topic. Otherwise it
//! checks whether the combined local context and global context score
//! passes another threshold."

use crate::spotter::Spot;
use std::collections::HashMap;
use wf_types::Span;

/// Per-topic disambiguation term sets.
#[derive(Debug, Clone, Default)]
pub struct TopicContext {
    /// Terms positively related to the topic (lower-cased).
    pub on_topic: Vec<String>,
    /// Terms negatively related (indicating the off-topic reading).
    pub off_topic: Vec<String>,
    /// Lexical affinities: pairs of terms whose co-occurrence within the
    /// affinity window is stronger evidence than either term alone.
    pub affinities: Vec<(String, String)>,
}

/// Thresholds and window sizes for the two-stage decision.
#[derive(Debug, Clone, Copy)]
pub struct DisambiguatorConfig {
    /// Global (whole-document) score threshold θ_g.
    pub global_threshold: f64,
    /// Combined local+global threshold θ_l.
    pub local_threshold: f64,
    /// Local context half-width in bytes around the spot.
    pub local_window: usize,
    /// Affinity co-occurrence window in bytes.
    pub affinity_window: usize,
    /// Weight multiplier for affinity hits vs single terms.
    pub affinity_weight: f64,
}

impl Default for DisambiguatorConfig {
    fn default() -> Self {
        DisambiguatorConfig {
            global_threshold: 2.0,
            local_threshold: 1.0,
            local_window: 200,
            affinity_window: 80,
            affinity_weight: 2.0,
        }
    }
}

/// Inverse document frequencies for score weighting. Unknown terms default
/// to IDF 1.0 (every term equally informative), so the disambiguator works
/// without corpus statistics.
#[derive(Debug, Clone, Default)]
pub struct Idf {
    values: HashMap<String, f64>,
}

impl Idf {
    /// Builds IDF from document frequencies: `idf = ln(n_docs / df)`.
    pub fn from_document_frequencies(df: &HashMap<String, usize>, n_docs: usize) -> Self {
        let n = n_docs.max(1) as f64;
        let values = df
            .iter()
            .map(|(t, &d)| (t.clone(), (n / d.max(1) as f64).ln().max(0.0)))
            .collect();
        Idf { values }
    }

    /// IDF of a lower-cased term (1.0 when unknown).
    pub fn get(&self, term: &str) -> f64 {
        self.values.get(term).copied().unwrap_or(1.0)
    }

    /// Inserts or overrides a term's IDF.
    pub fn set(&mut self, term: impl Into<String>, idf: f64) {
        self.values.insert(term.into(), idf);
    }
}

/// The disambiguator for one topic.
#[derive(Debug, Clone)]
pub struct Disambiguator {
    context: TopicContext,
    config: DisambiguatorConfig,
    idf: Idf,
}

/// Verdict for one spot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpotVerdict {
    /// The spot refers to the intended subject.
    OnTopic,
    /// The spot is about something else ("SUN" as in Sunday).
    OffTopic,
}

impl Disambiguator {
    pub fn new(context: TopicContext, config: DisambiguatorConfig, idf: Idf) -> Self {
        Disambiguator {
            context,
            config,
            idf,
        }
    }

    /// Convenience constructor with default thresholds and flat IDF.
    pub fn with_context(context: TopicContext) -> Self {
        Self::new(context, DisambiguatorConfig::default(), Idf::default())
    }

    /// Scores a region of the document: TF·IDF-weighted on-topic hits minus
    /// off-topic hits, with affinity pairs boosted.
    fn score_region(&self, lowered: &str, region: Span) -> f64 {
        let slice = &lowered[region.start.min(lowered.len())..region.end.min(lowered.len())];
        let mut score = 0.0;
        for term in &self.context.on_topic {
            let tf = count_occurrences(slice, term);
            score += tf as f64 * self.idf.get(term);
        }
        for term in &self.context.off_topic {
            let tf = count_occurrences(slice, term);
            score -= tf as f64 * self.idf.get(term);
        }
        for (a, b) in &self.context.affinities {
            if within_affinity_window(slice, a, b, self.config.affinity_window) {
                let w = self.idf.get(a).max(self.idf.get(b));
                score += self.config.affinity_weight * w;
            }
        }
        score
    }

    /// Applies the paper's two-stage rule to all spots of one document.
    pub fn disambiguate(&self, text: &str, spots: &[Spot]) -> Vec<SpotVerdict> {
        let lowered = text.to_ascii_lowercase();
        let global = Span::new(0, lowered.len());
        let global_score = self.score_region(&lowered, global);
        if global_score >= self.config.global_threshold {
            return vec![SpotVerdict::OnTopic; spots.len()];
        }
        spots
            .iter()
            .map(|spot| {
                let start = spot.span.start.saturating_sub(self.config.local_window);
                let end = (spot.span.end + self.config.local_window).min(lowered.len());
                // clamp to char boundaries conservatively (ASCII lowering
                // preserves boundaries; for non-ASCII find nearest)
                let start = floor_char_boundary(&lowered, start);
                let end = ceil_char_boundary(&lowered, end);
                let local_score = self.score_region(&lowered, Span::new(start, end));
                if local_score + global_score >= self.config.local_threshold {
                    SpotVerdict::OnTopic
                } else {
                    SpotVerdict::OffTopic
                }
            })
            .collect()
    }
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn ceil_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

/// Counts word-boundary-respecting occurrences of `term` in `slice`.
fn count_occurrences(slice: &str, term: &str) -> usize {
    if term.is_empty() {
        return 0;
    }
    let bytes = slice.as_bytes();
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = slice[from..].find(term) {
        let start = from + pos;
        let end = start + term.len();
        let before_ok = start == 0 || !bytes[start - 1].is_ascii_alphanumeric();
        let after_ok = end >= bytes.len() || !bytes[end].is_ascii_alphanumeric();
        if before_ok && after_ok {
            count += 1;
        }
        from = start + 1;
    }
    count
}

/// True when `a` and `b` both occur with their nearest occurrences within
/// `window` bytes of each other.
fn within_affinity_window(slice: &str, a: &str, b: &str, window: usize) -> bool {
    let pos_a: Vec<usize> = find_positions(slice, a);
    let pos_b: Vec<usize> = find_positions(slice, b);
    for &pa in &pos_a {
        for &pb in &pos_b {
            if pa.abs_diff(pb) <= window {
                return true;
            }
        }
    }
    false
}

fn find_positions(slice: &str, term: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if term.is_empty() {
        return out;
    }
    let mut from = 0;
    while let Some(pos) = slice[from..].find(term) {
        out.push(from + pos);
        from = from + pos + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spotter::{Spotter, SubjectList};

    fn sun_disambiguator() -> Disambiguator {
        Disambiguator::with_context(TopicContext {
            on_topic: vec![
                "microsystems".into(),
                "java".into(),
                "server".into(),
                "software".into(),
                "workstation".into(),
            ],
            off_topic: vec![
                "sunday".into(),
                "sunshine".into(),
                "weather".into(),
                "sky".into(),
            ],
            affinities: vec![("sun".into(), "microsystems".into())],
        })
    }

    fn spots_for(text: &str) -> Vec<Spot> {
        let subjects = SubjectList::builder().subject("SUN", ["SUN"]).build();
        Spotter::new(&subjects).spot(text)
    }

    #[test]
    fn on_topic_document_passes_global() {
        let text = "SUN Microsystems shipped new Java server software. \
                    The SUN workstation line grew.";
        let spots = spots_for(text);
        assert_eq!(spots.len(), 2);
        let verdicts = sun_disambiguator().disambiguate(text, &spots);
        assert!(verdicts.iter().all(|v| *v == SpotVerdict::OnTopic));
    }

    #[test]
    fn off_topic_document_rejects_spots() {
        let text = "The sun was bright and the weather was perfect for a picnic under the sky.";
        let spots = spots_for(text);
        assert!(!spots.is_empty());
        let verdicts = sun_disambiguator().disambiguate(text, &spots);
        assert!(verdicts.iter().all(|v| *v == SpotVerdict::OffTopic));
    }

    #[test]
    fn mixed_document_uses_local_context() {
        // Global score below θ_g (one on-topic term, one off-topic), so the
        // per-spot local rule decides.
        let text = "SUN server news came today. \
                    Meanwhile the weather report mentioned bright sun all sunday.";
        let spots = spots_for(text);
        assert_eq!(spots.len(), 2);
        // the document's global score is negative (more off-topic than
        // on-topic terms), so the combined threshold must sit at zero for
        // one strong local hit to outweigh it
        let cfg = DisambiguatorConfig {
            local_window: 25,
            local_threshold: 0.0,
            ..DisambiguatorConfig::default()
        };
        let d = Disambiguator::new(sun_disambiguator().context.clone(), cfg, Idf::default());
        let verdicts = d.disambiguate(text, &spots);
        assert_eq!(verdicts[0], SpotVerdict::OnTopic, "{verdicts:?}");
        assert_eq!(verdicts[1], SpotVerdict::OffTopic, "{verdicts:?}");
    }

    #[test]
    fn idf_weighting_boosts_rare_terms() {
        let mut df = HashMap::new();
        df.insert("java".to_string(), 10usize);
        df.insert("the".to_string(), 1000usize);
        let idf = Idf::from_document_frequencies(&df, 1000);
        assert!(idf.get("java") > idf.get("the"));
        assert_eq!(idf.get("unknown-term"), 1.0);
    }

    #[test]
    fn affinity_window_detection() {
        assert!(within_affinity_window(
            "sun microsystems",
            "sun",
            "microsystems",
            20
        ));
        assert!(!within_affinity_window(
            &format!("sun {} microsystems", "x".repeat(100)),
            "sun",
            "microsystems",
            20
        ));
    }

    #[test]
    fn count_occurrences_respects_boundaries() {
        assert_eq!(count_occurrences("sun sunday sun", "sun"), 2);
        assert_eq!(count_occurrences("", "sun"), 0);
        assert_eq!(count_occurrences("sun", ""), 0);
    }

    #[test]
    fn empty_spots_yield_empty_verdicts() {
        let d = sun_disambiguator();
        assert!(d.disambiguate("whatever text", &[]).is_empty());
    }
}

//! Subject spotting and disambiguation.
//!
//! Implements two WebFountain miners the sentiment miner depends on:
//!
//! - [`spotter`]: the general-purpose term spotter — occurrences of
//!   arbitrary subject terms/phrases, grouped into user-configurable
//!   synonym sets, found in one pass with a from-scratch Aho–Corasick
//!   automaton ([`automaton`]);
//! - [`disambig`]: the disambiguator — decides per spot whether the match
//!   refers to the intended subject, using TF·IDF-scored on-topic/off-topic
//!   context terms and lexical affinities with the paper's two-threshold
//!   global/local rule.

pub mod automaton;
pub mod disambig;
pub mod spotter;

pub use automaton::{AhoCorasick, AhoCorasickBuilder, Match, PatternId};
pub use disambig::{Disambiguator, DisambiguatorConfig, Idf, SpotVerdict, TopicContext};
pub use spotter::{Spot, Spotter, SubjectList, SubjectListBuilder, Synset};

//! The spotter: identifies occurrences of arbitrary subject terms.
//!
//! Per the paper: "The spotter is a general purpose miner that identifies
//! occurrences of arbitrary terms or phrases within documents. [...]
//! Subject terms are grouped into synonym sets that are user configurable
//! and the spotter annotates the occurrences with the synonym set ID."
//! Occurrences are called *spots*.

use crate::automaton::{AhoCorasick, AhoCorasickBuilder};
use wf_types::{Span, SynsetId};

/// A synonym set: one subject of interest with all its surface variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synset {
    pub id: SynsetId,
    /// Canonical display name ("Sony PDA").
    pub canonical: String,
    /// All variants to spot, including the canonical form.
    pub variants: Vec<String>,
}

/// An ordered list of subjects (synonym sets) to track.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubjectList {
    synsets: Vec<Synset>,
}

impl SubjectList {
    /// Starts building a subject list.
    pub fn builder() -> SubjectListBuilder {
        SubjectListBuilder::default()
    }

    /// All synonym sets.
    pub fn synsets(&self) -> &[Synset] {
        &self.synsets
    }

    /// Number of subjects.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// Looks up a synset by id.
    pub fn get(&self, id: SynsetId) -> Option<&Synset> {
        self.synsets.iter().find(|s| s.id == id)
    }

    /// Looks up a synset id by canonical name.
    pub fn id_of(&self, canonical: &str) -> Option<SynsetId> {
        self.synsets
            .iter()
            .find(|s| s.canonical == canonical)
            .map(|s| s.id)
    }
}

/// Builder for [`SubjectList`].
#[derive(Debug, Default)]
pub struct SubjectListBuilder {
    synsets: Vec<Synset>,
}

impl SubjectListBuilder {
    /// Adds a subject with its variants. The canonical name is always
    /// spotted even if not repeated among the variants.
    pub fn subject<I, S>(mut self, canonical: &str, variants: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let id = SynsetId(self.synsets.len() as u32);
        let mut vs: Vec<String> = variants.into_iter().map(Into::into).collect();
        if !vs.iter().any(|v| v.eq_ignore_ascii_case(canonical)) {
            vs.insert(0, canonical.to_string());
        }
        self.synsets.push(Synset {
            id,
            canonical: canonical.to_string(),
            variants: vs,
        });
        self
    }

    pub fn build(self) -> SubjectList {
        SubjectList {
            synsets: self.synsets,
        }
    }
}

/// A spot: one subject occurrence in a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spot {
    /// Synonym set of the matched subject.
    pub synset: SynsetId,
    /// Byte span of the occurrence.
    pub span: Span,
    /// The variant that matched, as written in the subject list.
    pub variant: String,
}

/// Multi-subject spotter over a compiled [`SubjectList`].
///
/// ```
/// use wf_spotter::{Spotter, SubjectList};
///
/// let subjects = SubjectList::builder()
///     .subject("NR70", ["NR70", "NR70 series"])
///     .build();
/// let spotter = Spotter::new(&subjects);
/// let spots = spotter.spot("I love the NR70 series.");
/// assert_eq!(spots.len(), 1);
/// assert_eq!(spots[0].variant, "NR70 series");
/// ```
pub struct Spotter {
    automaton: AhoCorasick,
    /// pattern id → (synset, variant index)
    pattern_meta: Vec<(SynsetId, String)>,
}

impl Spotter {
    /// Compiles a spotter for the given subjects. Matching is
    /// ASCII-case-insensitive and respects word boundaries.
    pub fn new(subjects: &SubjectList) -> Self {
        let mut builder = AhoCorasickBuilder::new();
        let mut pattern_meta = Vec::new();
        for synset in subjects.synsets() {
            for variant in &synset.variants {
                let lowered = variant.to_ascii_lowercase();
                builder.add_pattern(lowered.as_bytes());
                pattern_meta.push((synset.id, variant.clone()));
            }
        }
        Spotter {
            automaton: builder.build(),
            pattern_meta,
        }
    }

    /// Finds all subject spots in `text`. Overlapping spots of *different*
    /// synsets are all reported (the paper's NR70 / "T series CLIEs" example
    /// needs this); for the same synset the longest match at a position
    /// wins.
    pub fn spot(&self, text: &str) -> Vec<Spot> {
        let lowered = text.to_ascii_lowercase();
        let bytes = lowered.as_bytes();
        let mut raw: Vec<Spot> = Vec::new();
        self.automaton.for_each_match(bytes, |m| {
            if !on_word_boundary(bytes, m.start, m.end) {
                return;
            }
            let (synset, variant) = &self.pattern_meta[m.pattern];
            raw.push(Spot {
                synset: *synset,
                span: Span::new(m.start, m.end),
                variant: variant.clone(),
            });
        });
        // Deduplicate same-synset overlaps, keeping the longest.
        raw.sort_by_key(|s| (s.synset.0, s.span.start, std::cmp::Reverse(s.span.len())));
        let mut out: Vec<Spot> = Vec::new();
        for spot in raw {
            if let Some(last) = out.last() {
                if last.synset == spot.synset && last.span.overlaps(spot.span) {
                    continue;
                }
            }
            out.push(spot);
        }
        out.sort_by_key(|s| (s.span.start, s.span.end, s.synset.0));
        out
    }
}

/// True when `[start, end)` is flanked by non-alphanumeric bytes (or text
/// edges), so "sun" does not match inside "sunday".
fn on_word_boundary(bytes: &[u8], start: usize, end: usize) -> bool {
    let before_ok = start == 0 || !bytes[start - 1].is_ascii_alphanumeric();
    let after_ok = end >= bytes.len() || !bytes[end].is_ascii_alphanumeric();
    before_ok && after_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera_subjects() -> SubjectList {
        SubjectList::builder()
            .subject("Sony PDA", ["Sony PDA", "Sony"])
            .subject("NR70", ["NR70", "NR70 series"])
            .subject("T series CLIEs", ["T series CLIEs", "T series"])
            .build()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let subjects = camera_subjects();
        assert_eq!(subjects.len(), 3);
        assert_eq!(subjects.id_of("NR70"), Some(SynsetId(1)));
        assert_eq!(
            subjects.get(SynsetId(2)).unwrap().canonical,
            "T series CLIEs"
        );
    }

    #[test]
    fn canonical_always_included_in_variants() {
        let s = SubjectList::builder().subject("IBM", ["Big Blue"]).build();
        assert!(s.synsets()[0].variants.contains(&"IBM".to_string()));
    }

    #[test]
    fn spots_paper_sentence() {
        let spotter = Spotter::new(&camera_subjects());
        let text = "Unlike the more recent T series CLIEs, the NR70 does not require an adapter.";
        let spots = spotter.spot(text);
        let names: Vec<(&str, u32)> = spots
            .iter()
            .map(|s| (s.span.slice(text), s.synset.0))
            .collect();
        assert!(names.contains(&("T series CLIEs", 2)), "{names:?}");
        assert!(names.contains(&("NR70", 1)), "{names:?}");
    }

    #[test]
    fn case_insensitive() {
        let spotter = Spotter::new(&camera_subjects());
        let spots = spotter.spot("SONY pda and nr70 are here");
        assert_eq!(spots.len(), 2);
    }

    #[test]
    fn word_boundary_respected() {
        let subjects = SubjectList::builder().subject("SUN", ["SUN"]).build();
        let spotter = Spotter::new(&subjects);
        assert!(spotter.spot("I rested on Sunday.").is_empty());
        assert_eq!(spotter.spot("SUN Microsystems shipped it.").len(), 1);
        assert_eq!(spotter.spot("the sun.").len(), 1);
    }

    #[test]
    fn longest_variant_wins_within_synset() {
        let spotter = Spotter::new(&camera_subjects());
        let text = "The NR70 series is equipped with Memory Stick expansion.";
        let spots = spotter.spot(text);
        let nr70: Vec<&Spot> = spots.iter().filter(|s| s.synset == SynsetId(1)).collect();
        assert_eq!(nr70.len(), 1);
        assert_eq!(nr70[0].span.slice(text), "NR70 series");
    }

    #[test]
    fn overlapping_spots_of_different_synsets_both_reported() {
        let subjects = SubjectList::builder()
            .subject("Memory Stick", ["Memory Stick"])
            .subject("Memory Stick expansion", ["Memory Stick expansion"])
            .build();
        let spotter = Spotter::new(&subjects);
        let spots = spotter.spot("Sony's own Memory Stick expansion works.");
        assert_eq!(spots.len(), 2);
    }

    #[test]
    fn multiple_occurrences_counted() {
        let spotter = Spotter::new(&camera_subjects());
        let spots = spotter.spot("Sony, sony, and SONY again");
        assert_eq!(spots.len(), 3);
        assert!(spots.iter().all(|s| s.synset == SynsetId(0)));
    }

    #[test]
    fn empty_subject_list_spots_nothing() {
        let spotter = Spotter::new(&SubjectList::default());
        assert!(spotter.spot("anything at all").is_empty());
    }

    #[test]
    fn spans_slice_back_to_variants() {
        let spotter = Spotter::new(&camera_subjects());
        let text = "I love the NR70.";
        let spots = spotter.spot(text);
        assert_eq!(spots.len(), 1);
        assert_eq!(spots[0].span.slice(text), "NR70");
        assert_eq!(spots[0].variant, "NR70");
    }
}

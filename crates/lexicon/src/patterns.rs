//! The sentiment pattern database: per-predicate sentiment assignment rules.
//!
//! Each entry follows the paper's form `<predicate> <sent_category>
//! <target>` where `sent_category` is `+`, `-`, or `[~]source` (the
//! sentiment of another sentence component, optionally inverted), and
//! `target` is the component the sentiment is directed to. PP slots may
//! carry preposition constraints: `impress + PP(by;with)`.

use crate::Component;
use std::collections::HashMap;
use std::sync::OnceLock;
use wf_types::{Error, Polarity, Result};

const PATTERNS_TXT: &str = include_str!("../data/patterns.txt");

/// How a pattern decides the sentiment it assigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assignment {
    /// The pattern itself carries the polarity (`impress + PP(by;with)`).
    Fixed(Polarity),
    /// The polarity is transferred from another sentence component
    /// (`be CP SP`), optionally inverted (`prevent ~OP SP`).
    Transfer {
        source: Component,
        /// Preposition constraint when `source` is [`Component::PP`].
        source_preps: Option<Vec<String>>,
        invert: bool,
    },
}

/// One sentiment extraction pattern for a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentimentPattern {
    /// Verb lemma this pattern applies to.
    pub predicate: String,
    /// Where the assigned polarity comes from.
    pub assignment: Assignment,
    /// The component the sentiment is directed to.
    pub target: Component,
    /// Preposition constraint when `target` is [`Component::PP`].
    pub target_preps: Option<Vec<String>>,
}

impl SentimentPattern {
    /// Specificity used to rank candidate patterns for one clause: patterns
    /// with preposition constraints are most specific, then fixed-polarity
    /// patterns, then transfers.
    pub fn specificity(&self) -> u32 {
        let mut s = 0;
        if self.target_preps.is_some() {
            s += 4;
        }
        match &self.assignment {
            Assignment::Fixed(_) => s += 2,
            Assignment::Transfer { source_preps, .. } => {
                if source_preps.is_some() {
                    s += 3;
                }
                s += 1;
            }
        }
        s
    }
}

/// The pattern database: predicate lemma → patterns, in file order.
#[derive(Debug, Clone, Default)]
pub struct PatternDatabase {
    by_predicate: HashMap<String, Vec<SentimentPattern>>,
    count: usize,
}

impl PatternDatabase {
    /// Parses a database from the text format described in the module docs.
    pub fn parse(source_name: &str, text: &str) -> Result<Self> {
        let mut db = PatternDatabase::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let line_no = idx + 1;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(Error::parse(
                    source_name,
                    line_no,
                    format!("expected 3 fields, got {}", fields.len()),
                ));
            }
            let predicate = fields[0].to_lowercase();
            let assignment = parse_assignment(source_name, line_no, fields[1])?;
            let (target, target_preps) = parse_component(source_name, line_no, fields[2])?;
            if !matches!(target, Component::SP | Component::OP | Component::PP) {
                return Err(Error::parse(
                    source_name,
                    line_no,
                    format!("target must be SP, OP or PP, got {target:?}"),
                ));
            }
            db.insert(SentimentPattern {
                predicate,
                assignment,
                target,
                target_preps,
            });
        }
        Ok(db)
    }

    /// The embedded default pattern database.
    pub fn default_database() -> &'static PatternDatabase {
        static DB: OnceLock<PatternDatabase> = OnceLock::new();
        DB.get_or_init(|| {
            PatternDatabase::parse("patterns.txt", PATTERNS_TXT)
                .expect("embedded pattern database must parse")
        })
    }

    /// Adds a pattern (appended after existing patterns of the predicate).
    pub fn insert(&mut self, pattern: SentimentPattern) {
        self.count += 1;
        self.by_predicate
            .entry(pattern.predicate.clone())
            .or_default()
            .push(pattern);
    }

    /// All patterns registered for a predicate lemma.
    pub fn patterns_for(&self, predicate_lemma: &str) -> &[SentimentPattern] {
        self.by_predicate
            .get(predicate_lemma)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True when the predicate has at least one pattern.
    pub fn knows_predicate(&self, predicate_lemma: &str) -> bool {
        self.by_predicate.contains_key(predicate_lemma)
    }

    /// Total number of patterns.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.by_predicate.len()
    }
}

fn parse_assignment(source: &str, line: usize, field: &str) -> Result<Assignment> {
    match field {
        "+" => return Ok(Assignment::Fixed(Polarity::Positive)),
        "-" => return Ok(Assignment::Fixed(Polarity::Negative)),
        _ => {}
    }
    let (invert, comp_str) = match field.strip_prefix('~') {
        Some(rest) => (true, rest),
        None => (false, field),
    };
    let (component, preps) = parse_component(source, line, comp_str)?;
    Ok(Assignment::Transfer {
        source: component,
        source_preps: preps,
        invert,
    })
}

/// Parses `SP`, `OP`, `CP`, `MP`, `PP` or `PP(by;with)`.
fn parse_component(
    source: &str,
    line: usize,
    field: &str,
) -> Result<(Component, Option<Vec<String>>)> {
    if let Some(rest) = field.strip_prefix("PP(") {
        let inner = rest.strip_suffix(')').ok_or_else(|| {
            Error::parse(
                source,
                line,
                format!("unclosed preposition list in {field:?}"),
            )
        })?;
        let preps: Vec<String> = inner
            .split(';')
            .map(|p| p.trim().to_lowercase())
            .filter(|p| !p.is_empty())
            .collect();
        if preps.is_empty() {
            return Err(Error::parse(source, line, "empty preposition list"));
        }
        return Ok((Component::PP, Some(preps)));
    }
    let comp = match field {
        "SP" => Component::SP,
        "OP" => Component::OP,
        "CP" => Component::CP,
        "PP" => Component::PP,
        "MP" => Component::MP,
        other => {
            return Err(Error::parse(
                source,
                line,
                format!("unknown component {other:?}"),
            ))
        }
    };
    Ok((comp, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_database_loads() {
        let db = PatternDatabase::default_database();
        assert!(db.len() > 100, "too few patterns: {}", db.len());
        assert!(db.predicate_count() > 80);
    }

    #[test]
    fn paper_pattern_impress() {
        let db = PatternDatabase::default_database();
        let ps = db.patterns_for("impress");
        let pp_pattern = ps
            .iter()
            .find(|p| p.target == Component::PP)
            .expect("impress + PP(by;with)");
        assert_eq!(pp_pattern.assignment, Assignment::Fixed(Polarity::Positive));
        assert_eq!(
            pp_pattern.target_preps,
            Some(vec!["by".to_string(), "with".to_string()])
        );
    }

    #[test]
    fn paper_pattern_be_and_offer() {
        let db = PatternDatabase::default_database();
        let be = db.patterns_for("be");
        assert!(be.iter().any(|p| matches!(
            &p.assignment,
            Assignment::Transfer {
                source: Component::CP,
                invert: false,
                ..
            }
        ) && p.target == Component::SP));
        let offer = db.patterns_for("offer");
        assert!(offer.iter().any(|p| matches!(
            &p.assignment,
            Assignment::Transfer {
                source: Component::OP,
                invert: false,
                ..
            }
        ) && p.target == Component::SP));
    }

    #[test]
    fn inverted_transfer() {
        let db = PatternDatabase::default_database();
        let prevent = db.patterns_for("prevent");
        assert!(prevent.iter().any(|p| matches!(
            &p.assignment,
            Assignment::Transfer {
                source: Component::OP,
                invert: true,
                ..
            }
        )));
    }

    #[test]
    fn unknown_predicate_is_empty() {
        let db = PatternDatabase::default_database();
        assert!(db.patterns_for("zorp").is_empty());
        assert!(!db.knows_predicate("zorp"));
        assert!(db.knows_predicate("be"));
    }

    #[test]
    fn parse_errors_are_located() {
        let err = PatternDatabase::parse("p.txt", "badline").unwrap_err();
        assert!(err.to_string().contains("p.txt:1"));
        assert!(PatternDatabase::parse("p", "verb + XX").is_err());
        assert!(PatternDatabase::parse("p", "verb ? SP").is_err());
        assert!(PatternDatabase::parse("p", "verb + PP(").is_err());
        assert!(PatternDatabase::parse("p", "verb + PP()").is_err());
    }

    #[test]
    fn target_must_be_assignable() {
        // CP cannot be a target per the paper (<target> is SP|OP|PP)
        assert!(PatternDatabase::parse("p", "verb + CP").is_err());
        assert!(PatternDatabase::parse("p", "verb + SP").is_ok());
    }

    #[test]
    fn specificity_ordering() {
        let db = PatternDatabase::default_database();
        let impress_pp = db
            .patterns_for("impress")
            .iter()
            .find(|p| p.target == Component::PP)
            .unwrap();
        let impress_sp = db
            .patterns_for("impress")
            .iter()
            .find(|p| p.target == Component::SP)
            .unwrap();
        assert!(impress_pp.specificity() > impress_sp.specificity());
    }

    #[test]
    fn multiline_parse_and_counts() {
        let db = PatternDatabase::parse("p", "# comment\nlove + OP\nbe CP SP\nbe OP SP\n").unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.predicate_count(), 2);
        assert_eq!(db.patterns_for("be").len(), 2);
    }
}

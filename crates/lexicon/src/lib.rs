//! Linguistic resources for sentiment analysis: the sentiment lexicon and
//! the sentiment pattern database.
//!
//! The paper names these as "the two major linguistic resources used for
//! sentiment analysis": the lexicon defines term polarities
//! (`"excellent" JJ +`), the pattern database defines per-predicate
//! sentiment assignment rules (`impress + PP(by;with)`, `be CP SP`).
//! Both ship as embedded data files and can be extended or replaced by
//! parsing user-supplied text in the same formats.

pub mod patterns;
pub mod sentiment;

pub use patterns::{Assignment, PatternDatabase, SentimentPattern};
pub use sentiment::{LexiconEntry, SentimentLexicon};

/// Coarse POS class used by lexicon entries. Lexicon entries constrain the
/// POS of a match ("excellent" only counts as sentiment when used as an
/// adjective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosClass {
    Adjective,
    Noun,
    Verb,
    Adverb,
}

impl PosClass {
    /// All classes, for any-POS lookups.
    pub const ALL: &'static [PosClass] = &[
        PosClass::Adjective,
        PosClass::Noun,
        PosClass::Verb,
        PosClass::Adverb,
    ];

    /// Parses the Penn-tag-style class names used in the lexicon file.
    pub fn parse(s: &str) -> Option<PosClass> {
        match s {
            "JJ" | "JJR" | "JJS" => Some(PosClass::Adjective),
            "NN" | "NNS" => Some(PosClass::Noun),
            "VB" | "VBD" | "VBG" | "VBN" | "VBP" | "VBZ" => Some(PosClass::Verb),
            "RB" | "RBR" | "RBS" => Some(PosClass::Adverb),
            _ => None,
        }
    }
}

/// Sentence components referenced by sentiment patterns, per the paper:
/// "SP, OP, CP, and PP represent subject, object, complement (or adjective),
/// and prepositional phrases". MP (manner) extends the scheme to sentiment
/// adverbs inside the verb group ("performs beautifully").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Subject phrase.
    SP,
    /// Object phrase.
    OP,
    /// Complement (predicative adjective or predicate nominal).
    CP,
    /// Prepositional phrase.
    PP,
    /// Manner: adverbs inside the verb group.
    MP,
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Component::SP => "SP",
            Component::OP => "OP",
            Component::CP => "CP",
            Component::PP => "PP",
            Component::MP => "MP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_class_parse_covers_penn_tags() {
        assert_eq!(PosClass::parse("JJ"), Some(PosClass::Adjective));
        assert_eq!(PosClass::parse("JJR"), Some(PosClass::Adjective));
        assert_eq!(PosClass::parse("NN"), Some(PosClass::Noun));
        assert_eq!(PosClass::parse("VBZ"), Some(PosClass::Verb));
        assert_eq!(PosClass::parse("RB"), Some(PosClass::Adverb));
        assert_eq!(PosClass::parse("DT"), None);
    }

    #[test]
    fn component_display() {
        assert_eq!(Component::SP.to_string(), "SP");
        assert_eq!(Component::MP.to_string(), "MP");
    }
}

//! The sentiment lexicon: polarity definitions of individual terms.
//!
//! Entries follow the paper's form `<lexical_entry> <POS> <sent_category>`,
//! e.g. `"excellent" JJ +`. The paper's lexicon was collected from the
//! General Inquirer, the Dictionary of Affect in Language and WordNet, then
//! manually validated; ours is an embedded curated equivalent
//! (`data/sentiment.tsv`) with the same lookup semantics, extensible via
//! [`SentimentLexicon::parse`].

use crate::PosClass;
use std::collections::HashMap;
use std::sync::OnceLock;
use wf_types::{Error, Polarity, Result};

const SENTIMENT_TSV: &str = include_str!("../data/sentiment.tsv");

/// A single lexicon entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexiconEntry {
    /// Lower-cased lexical entry; may be multi-word ("high quality").
    pub term: String,
    /// Required POS class of the entry.
    pub pos: PosClass,
    /// Sentiment category: positive or negative.
    pub polarity: Polarity,
}

/// Term → polarity lookup table keyed by (term, POS class).
#[derive(Debug, Clone, Default)]
pub struct SentimentLexicon {
    map: HashMap<(String, PosClass), Polarity>,
    /// Maximum number of space-separated words over all entries, so phrase
    /// scorers know how long an n-gram window to try.
    max_words: usize,
}

impl SentimentLexicon {
    /// Parses a lexicon from TSV text: `term<TAB>POS<TAB>polarity`, `#`
    /// comments and blank lines ignored.
    pub fn parse(source_name: &str, tsv: &str) -> Result<Self> {
        let mut lex = SentimentLexicon::default();
        for (idx, line) in tsv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            let (term, pos, pol) = match (fields.next(), fields.next(), fields.next()) {
                (Some(t), Some(p), Some(s)) => (t, p, s),
                _ => {
                    return Err(Error::parse(
                        source_name,
                        idx + 1,
                        "expected term<TAB>POS<TAB>polarity",
                    ))
                }
            };
            let pos = PosClass::parse(pos)
                .ok_or_else(|| Error::parse(source_name, idx + 1, format!("bad POS {pos:?}")))?;
            let polarity = Polarity::parse(pol).ok_or_else(|| {
                Error::parse(source_name, idx + 1, format!("bad polarity {pol:?}"))
            })?;
            lex.insert(LexiconEntry {
                term: term.to_lowercase(),
                pos,
                polarity,
            });
        }
        Ok(lex)
    }

    /// The embedded default lexicon.
    pub fn default_lexicon() -> &'static SentimentLexicon {
        static LEX: OnceLock<SentimentLexicon> = OnceLock::new();
        LEX.get_or_init(|| {
            SentimentLexicon::parse("sentiment.tsv", SENTIMENT_TSV)
                .expect("embedded sentiment lexicon must parse")
        })
    }

    /// Adds or replaces an entry.
    pub fn insert(&mut self, entry: LexiconEntry) {
        self.max_words = self.max_words.max(entry.term.split(' ').count());
        self.map.insert((entry.term, entry.pos), entry.polarity);
    }

    /// Looks up the polarity of a lower-cased term under a POS class.
    pub fn polarity(&self, term: &str, pos: PosClass) -> Option<Polarity> {
        self.map.get(&(term.to_string(), pos)).copied()
    }

    /// Looks up a term under any POS class (used by baselines that ignore
    /// POS constraints, like the collocation algorithm).
    pub fn polarity_any_pos(&self, term: &str) -> Option<Polarity> {
        for pos in PosClass::ALL {
            if let Some(p) = self.map.get(&(term.to_string(), *pos)) {
                return Some(*p);
            }
        }
        None
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Longest entry in words (≥1 for a non-empty lexicon).
    pub fn max_entry_words(&self) -> usize {
        self.max_words
    }

    /// Iterates over all (term, pos, polarity) triples.
    pub fn iter(&self) -> impl Iterator<Item = (&str, PosClass, Polarity)> {
        self.map
            .iter()
            .map(|((term, pos), pol)| (term.as_str(), *pos, *pol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lexicon_loads_and_is_sizable() {
        let lex = SentimentLexicon::default_lexicon();
        assert!(lex.len() > 300, "lexicon too small: {}", lex.len());
    }

    #[test]
    fn paper_example_entry() {
        let lex = SentimentLexicon::default_lexicon();
        assert_eq!(
            lex.polarity("excellent", PosClass::Adjective),
            Some(Polarity::Positive)
        );
        assert_eq!(
            lex.polarity("mediocre", PosClass::Adjective),
            Some(Polarity::Negative)
        );
    }

    #[test]
    fn pos_class_distinguishes_entries() {
        let lex = SentimentLexicon::default_lexicon();
        // "excellent" is an adjective entry only
        assert_eq!(lex.polarity("excellent", PosClass::Noun), None);
    }

    #[test]
    fn any_pos_lookup() {
        let lex = SentimentLexicon::default_lexicon();
        assert_eq!(lex.polarity_any_pos("excellent"), Some(Polarity::Positive));
        assert_eq!(lex.polarity_any_pos("the"), None);
    }

    #[test]
    fn verbs_and_nouns_present() {
        let lex = SentimentLexicon::default_lexicon();
        assert_eq!(
            lex.polarity("impress", PosClass::Verb),
            Some(Polarity::Positive)
        );
        assert_eq!(
            lex.polarity("flaw", PosClass::Noun),
            Some(Polarity::Negative)
        );
        assert_eq!(
            lex.polarity("beautifully", PosClass::Adverb),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn multiword_entries_tracked() {
        let lex = SentimentLexicon::default_lexicon();
        assert!(lex.max_entry_words() >= 2);
        assert_eq!(
            lex.polarity("high quality", PosClass::Adjective),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(SentimentLexicon::parse("t", "one-field-only").is_err());
        assert!(SentimentLexicon::parse("t", "term\tXX\t+").is_err());
        assert!(SentimentLexicon::parse("t", "term\tJJ\t?").is_err());
    }

    #[test]
    fn parse_accepts_comments_and_blanks() {
        let lex = SentimentLexicon::parse("t", "# comment\n\nnice\tJJ\t+\n").unwrap();
        assert_eq!(lex.len(), 1);
        assert_eq!(
            lex.polarity("nice", PosClass::Adjective),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn insert_replaces() {
        let mut lex = SentimentLexicon::default();
        lex.insert(LexiconEntry {
            term: "sick".into(),
            pos: PosClass::Adjective,
            polarity: Polarity::Negative,
        });
        lex.insert(LexiconEntry {
            term: "sick".into(),
            pos: PosClass::Adjective,
            polarity: Polarity::Positive, // slang flip
        });
        assert_eq!(lex.len(), 1);
        assert_eq!(
            lex.polarity("sick", PosClass::Adjective),
            Some(Polarity::Positive)
        );
    }
}

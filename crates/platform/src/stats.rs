//! Aggregate corpus statistics — another of the paper's corpus-level
//! miner examples.

use crate::entity::SourceKind;
use crate::store::DataStore;
use std::collections::HashMap;

/// Corpus-wide statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    pub documents: usize,
    pub total_bytes: usize,
    pub total_tokens: usize,
    pub vocabulary: usize,
    /// Document counts per source kind.
    pub by_source: Vec<(SourceKind, usize)>,
    /// The `top_k` most frequent terms with counts, descending.
    pub top_terms: Vec<(String, usize)>,
    /// Annotation counts per kind.
    pub annotations: Vec<(String, usize)>,
}

/// Computes aggregate statistics over the store.
pub fn corpus_stats(store: &DataStore, top_k: usize) -> CorpusStats {
    let mut documents = 0usize;
    let mut total_bytes = 0usize;
    let mut total_tokens = 0usize;
    let mut term_counts: HashMap<String, usize> = HashMap::new();
    let mut by_source: HashMap<SourceKind, usize> = HashMap::new();
    let mut annotations: HashMap<String, usize> = HashMap::new();
    store.for_each(|entity| {
        documents += 1;
        total_bytes += entity.text.len();
        *by_source.entry(entity.source).or_insert(0) += 1;
        for token in entity
            .text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
        {
            total_tokens += 1;
            *term_counts.entry(token.to_lowercase()).or_insert(0) += 1;
        }
        for ann in &entity.annotations {
            *annotations.entry(ann.kind.clone()).or_insert(0) += 1;
        }
    });
    let vocabulary = term_counts.len();
    let mut top_terms: Vec<(String, usize)> = term_counts.into_iter().collect();
    top_terms.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    top_terms.truncate(top_k);
    let mut by_source: Vec<(SourceKind, usize)> = by_source.into_iter().collect();
    by_source.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    let mut annotations: Vec<(String, usize)> = annotations.into_iter().collect();
    annotations.sort();
    CorpusStats {
        documents,
        total_bytes,
        total_tokens,
        vocabulary,
        by_source,
        top_terms,
        annotations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Annotation, Entity};
    use wf_types::Span;

    #[test]
    fn stats_over_mixed_corpus() {
        let store = DataStore::new(2).unwrap();
        store.insert(Entity::new("a", SourceKind::Web, "the camera the lens"));
        store.insert(Entity::new("b", SourceKind::News, "the report came out"));
        let mut e = Entity::new("c", SourceKind::Web, "camera news");
        e.annotate(Annotation::new("sentiment", Span::new(0, 6)));
        store.insert(e);

        let stats = corpus_stats(&store, 2);
        assert_eq!(stats.documents, 3);
        assert_eq!(stats.total_tokens, 4 + 4 + 2);
        assert_eq!(stats.top_terms[0], ("the".to_string(), 3));
        assert_eq!(stats.by_source[0], (SourceKind::Web, 2));
        assert_eq!(stats.annotations, vec![("sentiment".to_string(), 1)]);
        assert!(stats.vocabulary >= 6);
    }

    #[test]
    fn empty_store() {
        let store = DataStore::single();
        let stats = corpus_stats(&store, 5);
        assert_eq!(stats.documents, 0);
        assert_eq!(stats.vocabulary, 0);
        assert!(stats.top_terms.is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let store = DataStore::single();
        store.insert(Entity::new("a", SourceKind::Web, "a b c d e f g"));
        let stats = corpus_stats(&store, 3);
        assert_eq!(stats.top_terms.len(), 3);
    }
}

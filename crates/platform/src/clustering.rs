//! Document clustering — the last of the paper's corpus-level miner
//! examples ("aggregate statistics, duplicate detection, trending, and
//! clustering").
//!
//! Spherical k-means over TF·IDF document vectors, implemented from
//! scratch: sparse vectors, cosine similarity, deterministic k-means++
//! style seeding (farthest-point, seeded by document order), fixed
//! iteration cap. The miner writes each entity's cluster id into its
//! metadata.

use crate::entity::Entity;
use crate::miner::CorpusMiner;
use crate::store::DataStore;
use std::collections::HashMap;
use wf_types::{DocId, Result};

/// Sparse TF·IDF vector: sorted (term id, weight) pairs, L2-normalized.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    fn from_counts(counts: &HashMap<u32, f64>) -> Self {
        let mut entries: Vec<(u32, f64)> = counts.iter().map(|(&t, &w)| (t, w)).collect();
        entries.sort_by_key(|&(t, _)| t);
        let mut v = SparseVector { entries };
        v.normalize();
        v
    }

    fn normalize(&mut self) {
        let norm = self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut self.entries {
                *w /= norm;
            }
        }
    }

    /// Cosine similarity (dot product of normalized vectors).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut dot = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }

    fn add_into(&self, acc: &mut HashMap<u32, f64>) {
        for &(t, w) in &self.entries {
            *acc.entry(t).or_insert(0.0) += w;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Clustering outcome: document → cluster index, plus sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    pub assignments: Vec<(DocId, usize)>,
    pub sizes: Vec<usize>,
    pub iterations: usize,
}

/// Builds TF·IDF vectors for every document in the store.
fn vectorize(store: &DataStore) -> (Vec<(DocId, SparseVector)>, usize) {
    let mut term_ids: HashMap<String, u32> = HashMap::new();
    let mut doc_terms: Vec<(DocId, HashMap<u32, f64>)> = Vec::new();
    let mut df: HashMap<u32, usize> = HashMap::new();
    store.for_each(|entity| {
        let mut counts: HashMap<u32, f64> = HashMap::new();
        for token in entity
            .text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| t.len() > 2)
        {
            let next_id = term_ids.len() as u32;
            let id = *term_ids.entry(token.to_lowercase()).or_insert(next_id);
            *counts.entry(id).or_insert(0.0) += 1.0;
        }
        for &t in counts.keys() {
            *df.entry(t).or_insert(0) += 1;
        }
        doc_terms.push((entity.id, counts));
    });
    let n = doc_terms.len().max(1) as f64;
    let vectors = doc_terms
        .into_iter()
        .map(|(id, mut counts)| {
            for (t, w) in counts.iter_mut() {
                let idf = (n / df[t] as f64).ln().max(0.0) + 1e-6;
                *w *= idf;
            }
            (id, SparseVector::from_counts(&counts))
        })
        .collect();
    (vectors, term_ids.len())
}

/// Runs spherical k-means; deterministic given store contents.
pub fn cluster_documents(store: &DataStore, k: usize, max_iterations: usize) -> Clustering {
    let (vectors, _) = vectorize(store);
    let n = vectors.len();
    let k = k.min(n).max(1);
    if n == 0 {
        return Clustering {
            assignments: Vec::new(),
            sizes: vec![0; k],
            iterations: 0,
        };
    }
    // farthest-point seeding from the first document
    let mut centroid_idx: Vec<usize> = vec![0];
    while centroid_idx.len() < k {
        let next = (0..n)
            .max_by(|&a, &b| {
                let da: f64 = centroid_idx
                    .iter()
                    .map(|&c| vectors[a].1.cosine(&vectors[c].1))
                    .fold(f64::NEG_INFINITY, f64::max);
                let db: f64 = centroid_idx
                    .iter()
                    .map(|&c| vectors[b].1.cosine(&vectors[c].1))
                    .fold(f64::NEG_INFINITY, f64::max);
                // farthest = lowest max-similarity
                db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n > 0");
        if centroid_idx.contains(&next) {
            break; // degenerate: fewer distinct points than k
        }
        centroid_idx.push(next);
    }
    let mut centroids: Vec<SparseVector> =
        centroid_idx.iter().map(|&i| vectors[i].1.clone()).collect();
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iterations {
        iterations = it + 1;
        // assign
        let mut changed = false;
        for (i, (_, v)) in vectors.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    v.cosine(a)
                        .partial_cmp(&v.cosine(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // update
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let mut acc: HashMap<u32, f64> = HashMap::new();
            let mut members = 0usize;
            for (i, (_, v)) in vectors.iter().enumerate() {
                if assignment[i] == c {
                    v.add_into(&mut acc);
                    members += 1;
                }
            }
            if members > 0 {
                *centroid = SparseVector::from_counts(&acc);
            }
        }
    }
    let mut sizes = vec![0usize; centroids.len()];
    for &a in &assignment {
        sizes[a] += 1;
    }
    Clustering {
        assignments: vectors
            .iter()
            .zip(&assignment)
            .map(|((id, _), &c)| (*id, c))
            .collect(),
        sizes,
        iterations,
    }
}

/// The corpus miner: writes `cluster` metadata onto every entity.
pub struct ClusteringMiner {
    pub k: usize,
    pub max_iterations: usize,
}

impl ClusteringMiner {
    pub fn new(k: usize) -> Self {
        ClusteringMiner {
            k,
            max_iterations: 20,
        }
    }
}

impl CorpusMiner for ClusteringMiner {
    fn name(&self) -> &str {
        "clustering"
    }

    fn run(&self, store: &DataStore) -> Result<()> {
        let clustering = cluster_documents(store, self.k, self.max_iterations);
        for (doc, cluster) in clustering.assignments {
            store.update(doc, |entity: &mut Entity| {
                entity
                    .metadata
                    .insert("cluster".into(), cluster.to_string());
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SourceKind;

    fn two_topic_store() -> DataStore {
        let store = DataStore::single();
        for i in 0..6 {
            store.insert(Entity::new(
                format!("c{i}"),
                SourceKind::Web,
                format!("camera lens battery zoom pictures photography shot {i}"),
            ));
        }
        for i in 0..6 {
            store.insert(Entity::new(
                format!("m{i}"),
                SourceKind::Web,
                format!("song album guitar lyrics melody chorus band {i}"),
            ));
        }
        store
    }

    #[test]
    fn separates_two_topics() {
        let store = two_topic_store();
        let clustering = cluster_documents(&store, 2, 20);
        assert_eq!(clustering.assignments.len(), 12);
        // all camera docs share one cluster, all music docs the other
        let camera_cluster = clustering.assignments[0].1;
        for (doc, c) in &clustering.assignments[..6] {
            assert_eq!(*c, camera_cluster, "{doc}");
        }
        let music_cluster = clustering.assignments[6].1;
        assert_ne!(camera_cluster, music_cluster);
        for (doc, c) in &clustering.assignments[6..] {
            assert_eq!(*c, music_cluster, "{doc}");
        }
        assert_eq!(clustering.sizes, vec![6, 6]);
    }

    #[test]
    fn miner_writes_cluster_metadata() {
        let store = two_topic_store();
        ClusteringMiner::new(2).run(&store).unwrap();
        let mut labels = std::collections::HashSet::new();
        store.for_each(|e| {
            labels.insert(e.metadata.get("cluster").cloned().unwrap());
        });
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn k_larger_than_corpus_clamps() {
        let store = DataStore::single();
        store.insert(Entity::new("a", SourceKind::Web, "only document here"));
        let clustering = cluster_documents(&store, 5, 10);
        assert_eq!(clustering.assignments.len(), 1);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = DataStore::single();
        let clustering = cluster_documents(&store, 3, 10);
        assert!(clustering.assignments.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = cluster_documents(&two_topic_store(), 2, 20);
        let b = cluster_documents(&two_topic_store(), 2, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn cosine_basics() {
        let mut c1 = HashMap::new();
        c1.insert(0u32, 1.0);
        c1.insert(1, 1.0);
        let mut c2 = HashMap::new();
        c2.insert(1u32, 1.0);
        c2.insert(2, 1.0);
        let v1 = SparseVector::from_counts(&c1);
        let v2 = SparseVector::from_counts(&c2);
        assert!((v1.cosine(&v2) - 0.5).abs() < 1e-9);
        assert!((v1.cosine(&v1) - 1.0).abs() < 1e-9);
        assert_eq!(v1.cosine(&SparseVector::default()), 0.0);
    }
}

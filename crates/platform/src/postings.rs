//! Delta + varint compressed positional postings with block skip pointers.
//!
//! A posting list stores `(doc, positions)` entries ascending by doc id.
//! The compressed layout encodes each entry as
//!
//! ```text
//! [doc_delta varint][blob_len varint][blob]
//! blob = [npos varint][pos_0 varint][pos_delta varint]...
//! ```
//!
//! where `doc_delta` is against the previous entry's doc id (the first
//! entry's base is 0) and `blob_len` lets a scan skip an entry's positions
//! without decoding them. Every [`BLOCK`] entries a skip pointer records
//! the byte offset, entry ordinal and delta base of the next block, so a
//! [`Cursor`] probing for a target doc id can jump whole blocks; only
//! entries actually *decoded* count as scanned, which is what the
//! `index.postings_scanned` histogram observes.

use wf_types::DocId;

/// Entries per skip block. Small enough that a probe decodes at most a
/// handful of entries after the jump, large enough that the skip table
/// stays a negligible fraction of the postings bytes.
pub const BLOCK: usize = 32;

/// Appends `v` to `out` as an LEB128 varint.
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it. Returns `None` on
/// truncated input or a value overflowing u64.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        let chunk = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && chunk > 1) {
            return None;
        }
        v |= chunk << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// A skip pointer: the start of one block of [`BLOCK`] entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Skip {
    /// Doc id of the last entry *before* this block (the delta base).
    base_doc: u64,
    /// Byte offset of the block's first entry.
    offset: usize,
    /// Ordinal of the block's first entry.
    index: usize,
}

/// A compressed positional posting list (ascending by doc id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedPostings {
    bytes: Vec<u8>,
    skips: Vec<Skip>,
    count: usize,
    last_doc: u64,
}

impl CompressedPostings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from entries already ascending by doc id.
    pub fn from_entries<P: AsRef<[u32]>>(entries: &[(DocId, P)]) -> Self {
        let mut out = Self::new();
        for (doc, positions) in entries {
            out.push(*doc, positions.as_ref());
        }
        out
    }

    /// Appends one entry; `doc` must exceed every doc already present.
    pub fn push(&mut self, doc: DocId, positions: &[u32]) {
        assert!(
            self.count == 0 || doc.0 > self.last_doc,
            "postings must be pushed in ascending doc order"
        );
        if self.count > 0 && self.count.is_multiple_of(BLOCK) {
            self.skips.push(Skip {
                base_doc: self.last_doc,
                offset: self.bytes.len(),
                index: self.count,
            });
        }
        write_varint(
            doc.0 - if self.count == 0 { 0 } else { self.last_doc },
            &mut self.bytes,
        );
        let mut blob = Vec::with_capacity(positions.len() + 1);
        write_varint(positions.len() as u64, &mut blob);
        let mut prev = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            let delta = if i == 0 { p } else { p - prev };
            write_varint(delta as u64, &mut blob);
            prev = p;
        }
        write_varint(blob.len() as u64, &mut self.bytes);
        self.bytes.extend_from_slice(&blob);
        self.last_doc = doc.0;
        self.count += 1;
    }

    /// Number of documents in the list.
    pub fn doc_count(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Encoded size in bytes (postings only, excluding the skip table).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Highest doc id in the list.
    pub fn last_doc(&self) -> Option<DocId> {
        (self.count > 0).then_some(DocId(self.last_doc))
    }

    /// Decodes the full list back to `(doc, positions)` entries.
    pub fn decode(&self) -> Vec<(DocId, Vec<u32>)> {
        let mut out = Vec::with_capacity(self.count);
        let mut cursor = self.cursor();
        while let Some(doc) = cursor.next() {
            out.push((doc, cursor.positions()));
        }
        out
    }

    /// Decodes doc ids only, skipping every position blob.
    pub fn docs(&self) -> Vec<DocId> {
        let mut out = Vec::with_capacity(self.count);
        let mut cursor = self.cursor();
        while let Some(doc) = cursor.next() {
            out.push(doc);
        }
        out
    }

    /// A scanning cursor positioned before the first entry.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor {
            postings: self,
            pos: 0,
            index: 0,
            prev_doc: 0,
            current: None,
            scanned: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CurrentEntry {
    doc: u64,
    blob_start: usize,
    blob_end: usize,
}

/// Forward scanner over a [`CompressedPostings`] list. Decoded entries are
/// tallied in [`Cursor::scanned`]; block jumps via the skip table are free,
/// which is exactly the pruning the postings-scanned histogram should see.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    postings: &'a CompressedPostings,
    /// Byte offset of the next undecoded entry.
    pos: usize,
    /// Ordinal of the next undecoded entry.
    index: usize,
    /// Delta base for the next entry.
    prev_doc: u64,
    current: Option<CurrentEntry>,
    scanned: u64,
}

impl<'a> Cursor<'a> {
    /// Posting entries decoded by this cursor so far.
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Doc id the cursor is parked on, if any.
    pub fn current(&self) -> Option<DocId> {
        self.current.map(|c| DocId(c.doc))
    }

    /// Decodes the next entry sequentially.
    #[allow(clippy::should_implement_trait)] // cursor advance, not an Iterator
    pub fn next(&mut self) -> Option<DocId> {
        if self.index >= self.postings.count {
            self.current = None;
            return None;
        }
        let bytes = &self.postings.bytes;
        let delta = read_varint(bytes, &mut self.pos).expect("valid postings");
        let blob_len = read_varint(bytes, &mut self.pos).expect("valid postings") as usize;
        let doc = self.prev_doc + delta;
        let entry = CurrentEntry {
            doc,
            blob_start: self.pos,
            blob_end: self.pos + blob_len,
        };
        self.pos = entry.blob_end;
        self.prev_doc = doc;
        self.index += 1;
        self.scanned += 1;
        self.current = Some(entry);
        Some(DocId(doc))
    }

    /// Advances to the first entry with doc id `>= target`, jumping whole
    /// blocks via the skip table where possible. Returns that doc id, or
    /// `None` when the list is exhausted (the cursor stays exhausted).
    pub fn advance_to(&mut self, target: DocId) -> Option<DocId> {
        if let Some(c) = self.current {
            if c.doc >= target.0 {
                return Some(DocId(c.doc));
            }
        }
        // Jump to the furthest block whose delta base is still below the
        // target; everything skipped over is never decoded.
        let skips = &self.postings.skips;
        let cut = skips.partition_point(|s| s.base_doc < target.0);
        if cut > 0 {
            let s = skips[cut - 1];
            if s.index > self.index {
                self.pos = s.offset;
                self.index = s.index;
                self.prev_doc = s.base_doc;
                self.current = None;
            }
        }
        while let Some(doc) = self.next() {
            if doc.0 >= target.0 {
                return Some(doc);
            }
        }
        None
    }

    /// Decodes the positions of the current entry.
    pub fn positions(&self) -> Vec<u32> {
        let Some(c) = self.current else {
            return Vec::new();
        };
        let blob = &self.postings.bytes[c.blob_start..c.blob_end];
        let mut pos = 0usize;
        let npos = read_varint(blob, &mut pos).expect("valid blob") as usize;
        let mut out = Vec::with_capacity(npos);
        let mut prev = 0u32;
        for i in 0..npos {
            let delta = read_varint(blob, &mut pos).expect("valid blob") as u32;
            prev = if i == 0 { delta } else { prev + delta };
            out.push(prev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(specs: &[(u64, &[u32])]) -> Vec<(DocId, Vec<u32>)> {
        specs
            .iter()
            .map(|&(d, ps)| (DocId(d), ps.to_vec()))
            .collect()
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert_eq!(read_varint(&[], &mut 0), None);
        assert_eq!(read_varint(&[0x80], &mut 0), None);
        // 11 continuation bytes overflow 64 bits
        let over = [0xff; 10];
        let mut with_term = over.to_vec();
        with_term.push(0x7f);
        assert_eq!(read_varint(&with_term, &mut 0), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let es = entries(&[
            (0, &[0, 1, 7]),
            (1, &[3]),
            (5, &[]),
            (1000, &[100, 200, 4096]),
            (u64::MAX, &[u32::MAX]),
        ]);
        let cp = CompressedPostings::from_entries(&es);
        assert_eq!(cp.doc_count(), es.len());
        assert_eq!(cp.decode(), es);
        assert_eq!(cp.docs(), es.iter().map(|(d, _)| *d).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_entry_lists() {
        let empty = CompressedPostings::new();
        assert!(empty.is_empty());
        assert!(empty.decode().is_empty());
        assert_eq!(empty.cursor().scanned(), 0);
        assert_eq!(empty.last_doc(), None);

        let single = CompressedPostings::from_entries(&entries(&[(42, &[7])]));
        assert_eq!(single.doc_count(), 1);
        assert_eq!(single.last_doc(), Some(DocId(42)));
        let mut c = single.cursor();
        assert_eq!(c.advance_to(DocId(42)), Some(DocId(42)));
        assert_eq!(c.positions(), vec![7]);
        assert_eq!(c.advance_to(DocId(43)), None);
    }

    #[test]
    fn cursor_skips_blocks_without_scanning() {
        // 10 blocks of postings; probing the tail must not decode the head.
        let es: Vec<(DocId, Vec<u32>)> = (0..(BLOCK as u64 * 10))
            .map(|d| (DocId(d * 3), vec![0]))
            .collect();
        let cp = CompressedPostings::from_entries(&es);
        let mut c = cp.cursor();
        let target = es[es.len() - 2].0;
        assert_eq!(c.advance_to(target), Some(target));
        assert!(
            c.scanned() <= BLOCK as u64,
            "skip table should bound decodes to one block, scanned {}",
            c.scanned()
        );
        let mut full = cp.cursor();
        while full.next().is_some() {}
        assert_eq!(full.scanned(), es.len() as u64);
    }

    #[test]
    fn advance_to_between_docs_lands_on_next() {
        let cp = CompressedPostings::from_entries(&entries(&[(2, &[1]), (8, &[2]), (9, &[3])]));
        let mut c = cp.cursor();
        assert_eq!(c.advance_to(DocId(3)), Some(DocId(8)));
        assert_eq!(c.positions(), vec![2]);
        // non-advancing repeat is free
        let scanned = c.scanned();
        assert_eq!(c.advance_to(DocId(8)), Some(DocId(8)));
        assert_eq!(c.scanned(), scanned);
        assert_eq!(c.advance_to(DocId(9)), Some(DocId(9)));
    }
}

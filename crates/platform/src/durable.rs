//! Durable storage: a seeded write-ahead log plus per-shard snapshots.
//!
//! WebFountain's store "manages hundreds of terabytes" across RAID
//! arrays and survives node loss as a matter of course; until now the
//! simulation could only mark a shard unavailable, never lose and
//! recover its state. This module closes that gap deterministically:
//!
//! - every store mutation appends one **WAL record** — a length- and
//!   CRC-framed JSON payload carrying a per-shard monotonic LSN and the
//!   simulated-clock timestamp — through a pluggable [`LogSink`]
//!   ([`MemorySink`] for tests and benches, [`FileSink`] under a
//!   `--data-dir` for the CLI);
//! - [`DurableStorage::snapshot_shard`] writes one shard's entities as a
//!   JSON-lines snapshot (header + one entity per line) and truncates
//!   that shard's log — the deterministic layout is
//!   `data-dir/shard-NNN/{wal.log,snapshot.jsonl}`;
//! - [`DurableStorage::recover_shard`] replays snapshot + log back into
//!   entities, stopping at the last valid record: a torn tail, a CRC
//!   mismatch, an undecodable payload or an LSN gap ends replay and the
//!   invalid suffix is dropped (and repaired by
//!   [`DurableStorage::repair_shard`]);
//! - [`DurableStorage::inject_corruption`] damages the log or snapshot
//!   at offsets drawn from the existing seeded [`FaultStream`]s, so
//!   crash-recovery chaos suites are exactly as reproducible as the
//!   fault-injection ones.
//!
//! Determinism rules: LSNs are per-shard counters (shard workers run in
//! parallel; a global counter would interleave nondeterministically),
//! payload JSON is canonical (`BTreeMap`-backed objects ⇒ sorted keys),
//! timestamps come from the cluster's simulated clock, and recovery cost
//! is a fixed model (1 simulated ms per snapshot entity or log record)
//! rather than wall time. Same seed ⇒ byte-identical logs, snapshots
//! and recovery reports everywhere.

use crate::entity::Entity;
use crate::evlog::{EvLog, Level};
use crate::faults::FaultStream;
use crate::store::DataStore;
use crate::telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_types::{DocId, Error, NodeId, Result};

/// Bytes of framing before each record payload: `u32` payload length
/// plus `u32` CRC-32 of the payload, both little-endian.
pub const WAL_HEADER_BYTES: usize = 8;
/// Simulated ms to replay one WAL record during recovery.
pub const REPLAY_COST_MS: u64 = 1;
/// Simulated ms to load (or write) one snapshot entity.
pub const SNAPSHOT_ENTITY_COST_MS: u64 = 1;
/// Data records between automatic fsync-point markers.
pub const DEFAULT_FSYNC_INTERVAL: u64 = 16;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the WAL frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logged mutation. Insert/Update carry the full post-state so
/// replay is idempotent: applying a record twice lands the same entity.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    Insert(Entity),
    Update(Entity),
    Delete(DocId),
    /// Fsync-point marker: every record before it reached the sink's
    /// stable storage.
    Fsync,
}

impl WalOp {
    /// Stable label used in the JSON payload's `op` field.
    pub fn label(&self) -> &'static str {
        match self {
            WalOp::Insert(_) => "insert",
            WalOp::Update(_) => "update",
            WalOp::Delete(_) => "delete",
            WalOp::Fsync => "fsync",
        }
    }
}

/// One framed WAL entry: per-shard monotonic LSN (starting at 1),
/// simulated-clock timestamp, and the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    pub lsn: u64,
    pub sim_ms: u64,
    pub op: WalOp,
}

impl WalRecord {
    /// Canonical JSON payload (sorted keys via the `BTreeMap`-backed
    /// `Value`); entities ride along via their serde representation.
    fn to_payload(&self) -> Result<String> {
        let mut obj: BTreeMap<String, Value> = BTreeMap::new();
        obj.insert("lsn".into(), Value::from(self.lsn));
        obj.insert("op".into(), Value::from(self.op.label()));
        obj.insert("sim_ms".into(), Value::from(self.sim_ms));
        match &self.op {
            WalOp::Insert(e) | WalOp::Update(e) => {
                let entity = serde_json::to_value(e)
                    .map_err(|e| Error::Service(format!("serialize wal entity: {e}")))?;
                obj.insert("entity".into(), entity);
            }
            WalOp::Delete(doc) => {
                obj.insert("doc".into(), Value::from(doc.as_u64()));
            }
            WalOp::Fsync => {}
        }
        Ok(Value::Object(obj).to_json_string())
    }

    fn from_payload(payload: &str) -> Option<WalRecord> {
        let value: Value = serde_json::from_str(payload).ok()?;
        let lsn = value.get("lsn")?.as_u64()?;
        let sim_ms = value.get("sim_ms")?.as_u64()?;
        let op = match value.get("op")?.as_str()? {
            "insert" => WalOp::Insert(serde_json::from_value(value.get("entity")?).ok()?),
            "update" => WalOp::Update(serde_json::from_value(value.get("entity")?).ok()?),
            "delete" => WalOp::Delete(DocId(value.get("doc")?.as_u64()?)),
            "fsync" => WalOp::Fsync,
            _ => return None,
        };
        Some(WalRecord { lsn, sim_ms, op })
    }

    /// `[len u32 LE][crc32(payload) u32 LE][payload]`.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let payload = self.to_payload()?;
        let mut out = Vec::with_capacity(WAL_HEADER_BYTES + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload.as_bytes()).to_le_bytes());
        out.extend_from_slice(payload.as_bytes());
        Ok(out)
    }
}

/// Why replay stopped scanning a shard's WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Clean end of log: every byte accounted for.
    EndOfLog,
    /// Trailing bytes shorter than the frame they promise (torn write).
    TornTail,
    /// A frame whose payload no longer matches its CRC.
    BadCrc,
    /// A frame whose payload is not a decodable record, or whose LSN
    /// breaks the shard's contiguous sequence.
    BadPayload,
}

impl StopReason {
    pub fn label(self) -> &'static str {
        match self {
            StopReason::EndOfLog => "end_of_log",
            StopReason::TornTail => "torn_tail",
            StopReason::BadCrc => "bad_crc",
            StopReason::BadPayload => "bad_payload",
        }
    }
}

/// Everything recovery learned about one shard — the per-shard row of
/// the `wfsm recover` report, and the stats behind `durable.*` counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecoveryStats {
    pub shard: u32,
    /// Entities the snapshot declared in its header.
    pub snapshot_declared: u64,
    /// Entities actually readable from the snapshot body.
    pub snapshot_entities: u64,
    /// LSN the snapshot covers: replay resumes at `snapshot_lsn + 1`.
    pub snapshot_lsn: u64,
    /// The snapshot body ended early or failed to parse.
    pub snapshot_truncated: bool,
    pub snapshot_bytes: u64,
    /// Valid WAL records scanned (data + fsync markers).
    pub wal_records: u64,
    /// Data records applied to the recovered state.
    pub replayed: u64,
    pub fsync_points: u64,
    /// Identifiable record frames dropped past the valid prefix.
    pub truncated_records: u64,
    /// WAL bytes dropped past the valid prefix.
    pub truncated_bytes: u64,
    /// Length of the valid WAL prefix (what repair keeps).
    pub valid_wal_bytes: u64,
    /// Highest valid LSN seen (== `snapshot_lsn` for an empty log).
    pub last_lsn: u64,
    /// Entities alive after snapshot + replay.
    pub recovered_entities: u64,
    /// Deterministic recovery cost on the simulated clock.
    pub sim_ms: u64,
    pub stop: StopReason,
}

impl ShardRecoveryStats {
    fn to_value(&self) -> Value {
        let mut obj: BTreeMap<String, Value> = BTreeMap::new();
        obj.insert("shard".into(), Value::from(self.shard));
        obj.insert(
            "snapshot_declared".into(),
            Value::from(self.snapshot_declared),
        );
        obj.insert(
            "snapshot_entities".into(),
            Value::from(self.snapshot_entities),
        );
        obj.insert("snapshot_lsn".into(), Value::from(self.snapshot_lsn));
        obj.insert(
            "snapshot_truncated".into(),
            Value::Bool(self.snapshot_truncated),
        );
        obj.insert("snapshot_bytes".into(), Value::from(self.snapshot_bytes));
        obj.insert("wal_records".into(), Value::from(self.wal_records));
        obj.insert("replayed".into(), Value::from(self.replayed));
        obj.insert("fsync_points".into(), Value::from(self.fsync_points));
        obj.insert(
            "truncated_records".into(),
            Value::from(self.truncated_records),
        );
        obj.insert("truncated_bytes".into(), Value::from(self.truncated_bytes));
        obj.insert("valid_wal_bytes".into(), Value::from(self.valid_wal_bytes));
        obj.insert("last_lsn".into(), Value::from(self.last_lsn));
        obj.insert(
            "recovered_entities".into(),
            Value::from(self.recovered_entities),
        );
        obj.insert("sim_ms".into(), Value::from(self.sim_ms));
        obj.insert("stop".into(), Value::from(self.stop.label()));
        Value::Object(obj)
    }
}

/// One shard's full recovery result: the stats plus the recovered
/// entities themselves, in ascending id order.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    pub entities: Vec<Entity>,
    pub stats: ShardRecoveryStats,
}

/// The `wfsm recover` report: per-shard recovery stats plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    pub shards: Vec<ShardRecoveryStats>,
}

impl RecoveryReport {
    /// Every shard replayed cleanly to end-of-log with an intact
    /// snapshot.
    pub fn clean(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.stop == StopReason::EndOfLog && !s.snapshot_truncated)
    }

    pub fn total_recovered(&self) -> u64 {
        self.shards.iter().map(|s| s.recovered_entities).sum()
    }

    pub fn total_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed).sum()
    }

    pub fn total_sim_ms(&self) -> u64 {
        self.shards.iter().map(|s| s.sim_ms).sum()
    }

    /// Canonical JSON: `BTreeMap`-backed objects give sorted keys, so
    /// two read-only runs over the same data-dir are byte-identical.
    pub fn to_json_string(&self) -> String {
        let mut obj: BTreeMap<String, Value> = BTreeMap::new();
        obj.insert("clean".into(), Value::Bool(self.clean()));
        obj.insert(
            "shards".into(),
            Value::Array(
                self.shards
                    .iter()
                    .map(ShardRecoveryStats::to_value)
                    .collect(),
            ),
        );
        let mut totals: BTreeMap<String, Value> = BTreeMap::new();
        totals.insert(
            "recovered_entities".into(),
            Value::from(self.total_recovered()),
        );
        totals.insert("replayed".into(), Value::from(self.total_replayed()));
        totals.insert("sim_ms".into(), Value::from(self.total_sim_ms()));
        totals.insert(
            "truncated_records".into(),
            Value::from(self.shards.iter().map(|s| s.truncated_records).sum::<u64>()),
        );
        obj.insert("totals".into(), Value::Object(totals));
        let mut out = Value::Object(obj).to_json_string_pretty();
        out.push('\n');
        out
    }

    /// Fixed-width table for `wfsm recover` without `--format json`.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>8} {:>9} {:>8} {:>10} {:>7} STOP",
            "SHARD", "SNAPSHOT", "REPLAYED", "ENTITIES", "LAST_LSN", "DROPPED", "SIM_MS"
        );
        for s in &self.shards {
            let snapshot = if s.snapshot_truncated {
                format!("{}/{}!", s.snapshot_entities, s.snapshot_declared)
            } else {
                s.snapshot_entities.to_string()
            };
            let _ = writeln!(
                out,
                "{:<6} {:>9} {:>8} {:>9} {:>8} {:>10} {:>7} {}",
                s.shard,
                snapshot,
                s.replayed,
                s.recovered_entities,
                s.last_lsn,
                format!("{}B", s.truncated_bytes),
                s.sim_ms,
                s.stop.label()
            );
        }
        let _ = writeln!(
            out,
            "total: {} entities recovered, {} records replayed, {} sim-ms ({})",
            self.total_recovered(),
            self.total_replayed(),
            self.total_sim_ms(),
            if self.clean() {
                "clean"
            } else {
                "repairs needed"
            }
        );
        out
    }
}

/// The three injectable durable-state corruptions, driven by seeded
/// [`FaultStream`] draws so chaos runs replay exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// The WAL loses its tail mid-record, as if the process died inside
    /// a `write()`.
    TornTail,
    /// One byte of one record's payload flips; its CRC no longer
    /// matches.
    BadCrc,
    /// The snapshot body ends early (header survives).
    TruncatedSnapshot,
}

impl CorruptionKind {
    pub fn label(self) -> &'static str {
        match self {
            CorruptionKind::TornTail => "torn_tail",
            CorruptionKind::BadCrc => "bad_crc",
            CorruptionKind::TruncatedSnapshot => "truncated_snapshot",
        }
    }
}

/// What [`DurableStorage::inject_corruption`] did, so tests can assert
/// the exact LSN recovery must stop at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionOutcome {
    pub shard: u32,
    pub kind: CorruptionKind,
    /// Byte offset of the damage within its file.
    pub offset: u64,
    /// LSN of the first record destroyed (None for snapshot damage).
    pub victim_lsn: Option<u64>,
}

/// Where WAL/snapshot bytes live. Appends must be visible to
/// `read_all` immediately; `sync` marks them stable (fsync semantics).
pub trait LogSink: std::fmt::Debug + Send + Sync {
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Forces appended bytes to stable storage.
    fn sync(&self) -> Result<()>;
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Replaces the entire contents (snapshotting, tail repair).
    fn replace(&self, bytes: &[u8]) -> Result<()>;
    fn len(&self) -> Result<u64> {
        Ok(self.read_all()?.len() as u64)
    }
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// In-memory sink: the deterministic default for tests and benches.
#[derive(Debug, Default)]
pub struct MemorySink {
    bytes: Mutex<Vec<u8>>,
    syncs: AtomicU64,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// How many times `sync` was called (fsync cadence assertions).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

impl LogSink for MemorySink {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn replace(&self, bytes: &[u8]) -> Result<()> {
        *self.bytes.lock() = bytes.to_vec();
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.bytes.lock().len() as u64)
    }
}

fn io_err(context: String, err: std::io::Error) -> Error {
    Error::Service(format!("{context}: {err}"))
}

/// File-backed sink for the CLI's `--data-dir`.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileSink {
    /// Opens (creating if absent) an append-mode sink at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(|e| io_err(format!("open {}", path.display()), e))?;
        Ok(FileSink {
            path,
            file: Mutex::new(file),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogSink for FileSink {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.file
            .lock()
            .write_all(bytes)
            .map_err(|e| io_err(format!("append {}", self.path.display()), e))
    }

    fn sync(&self) -> Result<()> {
        self.file
            .lock()
            .sync_all()
            .map_err(|e| io_err(format!("sync {}", self.path.display()), e))
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        std::fs::read(&self.path).map_err(|e| io_err(format!("read {}", self.path.display()), e))
    }

    fn replace(&self, bytes: &[u8]) -> Result<()> {
        let mut guard = self.file.lock();
        let mut file = File::create(&self.path)
            .map_err(|e| io_err(format!("rewrite {}", self.path.display()), e))?;
        file.write_all(bytes)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err(format!("rewrite {}", self.path.display()), e))?;
        *guard = file;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        std::fs::metadata(&self.path)
            .map(|m| m.len())
            .map_err(|e| io_err(format!("stat {}", self.path.display()), e))
    }
}

/// `durable.*` instruments, resolved only when a registry is bound (so
/// stores without durability keep their metrics snapshots unchanged).
#[derive(Debug)]
struct DurableMetrics {
    appended: Arc<Counter>,
    bytes_appended: Arc<Counter>,
    fsyncs: Arc<Counter>,
    append_errors: Arc<Counter>,
    snapshots: Arc<Counter>,
    snapshot_bytes: Arc<Counter>,
    replayed: Arc<Counter>,
    truncated: Arc<Counter>,
    /// Structured event log: recovery decisions narrate under
    /// `durable.shard:<n>` targets.
    evlog: Arc<EvLog>,
}

impl DurableMetrics {
    fn resolve(tele: &Telemetry) -> Self {
        DurableMetrics {
            evlog: Arc::clone(tele.evlog()),
            appended: tele.counter("durable.records_appended"),
            bytes_appended: tele.counter("durable.wal_bytes_appended"),
            fsyncs: tele.counter("durable.fsyncs"),
            append_errors: tele.counter("durable.append_errors"),
            snapshots: tele.counter("durable.snapshots"),
            snapshot_bytes: tele.counter("durable.snapshot_bytes"),
            replayed: tele.counter("durable.records_replayed"),
            truncated: tele.counter("durable.records_truncated"),
        }
    }
}

/// One shard's durable state: its WAL, its snapshot, and the next LSN.
#[derive(Debug)]
struct ShardLog {
    wal: Box<dyn LogSink>,
    snapshot: Box<dyn LogSink>,
    /// LSN the next record takes; LSNs start at 1 and stay contiguous
    /// per shard.
    next_lsn: AtomicU64,
    /// Data records since the last fsync marker (marker cadence).
    since_fsync: AtomicU64,
}

/// The durable layer under a [`DataStore`]: one [`ShardLog`] per shard.
///
/// Attach via `DataStore::attach_durability` (or through the cluster);
/// from then on every insert/update/delete appends a WAL record under
/// the owning shard's write lock, so log order equals apply order.
#[derive(Debug)]
pub struct DurableStorage {
    shards: Vec<ShardLog>,
    dir: Option<PathBuf>,
    fsync_interval: u64,
    sim_now: AtomicU64,
    metrics: RwLock<Option<DurableMetrics>>,
    /// Mutation-path append failures are swallowed (the store API has no
    /// error channel on insert) but never lost: counted and kept here.
    last_append_error: Mutex<Option<String>>,
}

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

impl DurableStorage {
    fn from_shards(shards: Vec<ShardLog>, dir: Option<PathBuf>) -> Self {
        DurableStorage {
            shards,
            dir,
            fsync_interval: DEFAULT_FSYNC_INTERVAL,
            sim_now: AtomicU64::new(0),
            metrics: RwLock::new(None),
            last_append_error: Mutex::new(None),
        }
    }

    /// Deterministic in-memory storage for tests and benches.
    pub fn in_memory(shard_count: usize) -> Result<Self> {
        if shard_count == 0 {
            return Err(Error::Config(
                "durable storage needs at least one shard".into(),
            ));
        }
        let shards = (0..shard_count)
            .map(|_| ShardLog {
                wal: Box::new(MemorySink::new()) as Box<dyn LogSink>,
                snapshot: Box::new(MemorySink::new()) as Box<dyn LogSink>,
                next_lsn: AtomicU64::new(1),
                since_fsync: AtomicU64::new(0),
            })
            .collect();
        Ok(Self::from_shards(shards, None))
    }

    /// File-backed storage for a **fresh run**: creates the layout under
    /// `dir` and truncates any prior shard files. Errors cleanly (no
    /// panic) when `dir` cannot be created or written.
    pub fn at_dir(dir: impl AsRef<Path>, shard_count: usize) -> Result<Self> {
        if shard_count == 0 {
            return Err(Error::Config(
                "durable storage needs at least one shard".into(),
            ));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Config(format!("cannot create data dir {}: {e}", dir.display())))?;
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let sub = shard_dir(dir, i);
            std::fs::create_dir_all(&sub).map_err(|e| {
                Error::Config(format!("cannot create data dir {}: {e}", sub.display()))
            })?;
            let wal = FileSink::open(sub.join("wal.log"))?;
            let snapshot = FileSink::open(sub.join("snapshot.jsonl"))?;
            wal.replace(&[])?;
            snapshot.replace(&[])?;
            shards.push(ShardLog {
                wal: Box::new(wal) as Box<dyn LogSink>,
                snapshot: Box::new(snapshot) as Box<dyn LogSink>,
                next_lsn: AtomicU64::new(1),
                since_fsync: AtomicU64::new(0),
            });
        }
        Ok(Self::from_shards(shards, Some(dir.to_path_buf())))
    }

    /// Opens an **existing** data-dir read-for-recovery: shard count is
    /// detected from the `shard-NNN` layout and each shard's next LSN is
    /// primed from its valid prefix.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let mut shards = Vec::new();
        while shard_dir(dir, shards.len()).is_dir() {
            let sub = shard_dir(dir, shards.len());
            let wal = FileSink::open(sub.join("wal.log"))?;
            let snapshot = FileSink::open(sub.join("snapshot.jsonl"))?;
            shards.push(ShardLog {
                wal: Box::new(wal) as Box<dyn LogSink>,
                snapshot: Box::new(snapshot) as Box<dyn LogSink>,
                next_lsn: AtomicU64::new(1),
                since_fsync: AtomicU64::new(0),
            });
        }
        if shards.is_empty() {
            return Err(Error::Config(format!(
                "no shard-* layout under {} (not a wfsm data dir?)",
                dir.display()
            )));
        }
        let storage = Self::from_shards(shards, Some(dir.to_path_buf()));
        for shard in 0..storage.shards.len() {
            let recovery = storage.recover_shard(shard as u32)?;
            storage.shards[shard]
                .next_lsn
                .store(recovery.stats.last_lsn + 1, Ordering::Relaxed);
        }
        Ok(storage)
    }

    /// Overrides the automatic fsync-marker cadence (min 1).
    pub fn with_fsync_interval(mut self, every: u64) -> Self {
        self.fsync_interval = every.max(1);
        self
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The backing directory, when file-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Resolves `durable.*` instruments into `tele`. Called by
    /// `DataStore::attach_durability`; idempotent.
    pub fn bind_telemetry(&self, tele: &Telemetry) {
        *self.metrics.write() = Some(DurableMetrics::resolve(tele));
    }

    /// Stamps records with the cluster's simulated clock.
    pub fn set_sim_now(&self, sim_ms: u64) {
        self.sim_now.store(sim_ms, Ordering::Relaxed);
    }

    pub fn sim_now(&self) -> u64 {
        self.sim_now.load(Ordering::Relaxed)
    }

    /// The LSN the next record on `shard` will take.
    pub fn next_lsn(&self, shard: u32) -> u64 {
        self.shards
            .get(shard as usize)
            .map(|s| s.next_lsn.load(Ordering::Relaxed))
            .unwrap_or(1)
    }

    pub fn wal_bytes(&self, shard: u32) -> u64 {
        self.shards
            .get(shard as usize)
            .and_then(|s| s.wal.len().ok())
            .unwrap_or(0)
    }

    pub fn snapshot_bytes(&self, shard: u32) -> u64 {
        self.shards
            .get(shard as usize)
            .and_then(|s| s.snapshot.len().ok())
            .unwrap_or(0)
    }

    /// The last mutation-path append failure, if any.
    pub fn last_append_error(&self) -> Option<String> {
        self.last_append_error.lock().clone()
    }

    fn with_metrics<F: FnOnce(&DurableMetrics)>(&self, f: F) {
        if let Some(metrics) = self.metrics.read().as_ref() {
            f(metrics);
        }
    }

    /// Appends one mutation record to `shard`'s WAL (store hot path —
    /// called under the shard's write lock). Failures are counted and
    /// remembered, not propagated: the store's mutation API has no
    /// error channel, and losing tail records is exactly the failure
    /// mode recovery is built to absorb.
    pub(crate) fn log(&self, shard: u32, op: WalOp) {
        let Some(state) = self.shards.get(shard as usize) else {
            return;
        };
        let lsn = state.next_lsn.fetch_add(1, Ordering::Relaxed);
        let record = WalRecord {
            lsn,
            sim_ms: self.sim_now(),
            op,
        };
        match record.encode().and_then(|bytes| {
            state.wal.append(&bytes)?;
            Ok(bytes.len() as u64)
        }) {
            Ok(bytes) => self.with_metrics(|m| {
                m.appended.inc();
                m.bytes_appended.add(bytes);
            }),
            Err(err) => {
                self.with_metrics(|m| m.append_errors.inc());
                *self.last_append_error.lock() = Some(err.to_string());
                return;
            }
        }
        let since = state.since_fsync.fetch_add(1, Ordering::Relaxed) + 1;
        if since >= self.fsync_interval {
            state.since_fsync.store(0, Ordering::Relaxed);
            let _ = self.sync_shard(shard);
        }
    }

    /// Appends an fsync-point marker and syncs the sink.
    pub fn sync_shard(&self, shard: u32) -> Result<()> {
        let state = self
            .shards
            .get(shard as usize)
            .ok_or_else(|| Error::Config(format!("no shard {shard}")))?;
        let record = WalRecord {
            lsn: state.next_lsn.fetch_add(1, Ordering::Relaxed),
            sim_ms: self.sim_now(),
            op: WalOp::Fsync,
        };
        let bytes = record.encode()?;
        state.wal.append(&bytes)?;
        state.wal.sync()?;
        self.with_metrics(|m| {
            m.appended.inc();
            m.bytes_appended.add(bytes.len() as u64);
            m.fsyncs.inc();
        });
        Ok(())
    }

    /// Writes `node`'s entities as a snapshot and truncates its WAL.
    /// Call at quiescent points (no in-flight mutators on the shard).
    pub fn snapshot_shard(&self, store: &DataStore, node: NodeId) -> Result<SnapshotStats> {
        let state = self
            .shards
            .get(node.0 as usize)
            .ok_or_else(|| Error::Config(format!("no shard {}", node.0)))?;
        let ids = store.shard_ids(node);
        let last_lsn = state.next_lsn.load(Ordering::Relaxed) - 1;
        let mut header: BTreeMap<String, Value> = BTreeMap::new();
        header.insert("entities".into(), Value::from(ids.len() as u64));
        header.insert("last_lsn".into(), Value::from(last_lsn));
        header.insert("shard".into(), Value::from(node.0));
        let mut buf = Value::Object(header).to_json_string();
        buf.push('\n');
        for id in &ids {
            let entity = store.get(*id)?;
            let line = serde_json::to_string(&entity)
                .map_err(|e| Error::Service(format!("serialize snapshot {id}: {e}")))?;
            buf.push_str(&line);
            buf.push('\n');
        }
        state.snapshot.replace(buf.as_bytes())?;
        let truncated_wal_bytes = state.wal.len()?;
        state.wal.replace(&[])?;
        state.since_fsync.store(0, Ordering::Relaxed);
        self.with_metrics(|m| {
            m.snapshots.inc();
            m.snapshot_bytes.add(buf.len() as u64);
        });
        Ok(SnapshotStats {
            shard: node.0,
            entities: ids.len() as u64,
            snapshot_bytes: buf.len() as u64,
            last_lsn,
            truncated_wal_bytes,
        })
    }

    /// [`DurableStorage::snapshot_shard`] over every shard.
    pub fn checkpoint(&self, store: &DataStore) -> Result<Vec<SnapshotStats>> {
        (0..self.shards.len())
            .map(|i| self.snapshot_shard(store, NodeId(i as u32)))
            .collect()
    }

    fn parse_snapshot(bytes: &[u8]) -> (Vec<Entity>, u64, u64, bool) {
        if bytes.is_empty() {
            return (Vec::new(), 0, 0, false);
        }
        let text = String::from_utf8_lossy(bytes);
        let mut lines = text.split('\n');
        let Some(header) = lines
            .next()
            .and_then(|l| serde_json::from_str::<Value>(l).ok())
        else {
            return (Vec::new(), 0, 0, true);
        };
        let declared = header.get("entities").and_then(Value::as_u64).unwrap_or(0);
        let snapshot_lsn = header.get("last_lsn").and_then(Value::as_u64).unwrap_or(0);
        let mut entities = Vec::new();
        let mut truncated = false;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<Entity>(line) {
                Ok(entity) => entities.push(entity),
                Err(_) => {
                    truncated = true;
                    break;
                }
            }
        }
        if (entities.len() as u64) < declared {
            truncated = true;
        }
        (entities, snapshot_lsn, declared, truncated)
    }

    /// Counts identifiable record frames in the dropped suffix (a stat,
    /// not a correctness input — framing inside garbage stops at the
    /// first frame the bytes cannot contain).
    fn count_dropped_frames(bytes: &[u8], mut offset: usize) -> u64 {
        let mut frames = 0u64;
        while bytes.len() - offset >= WAL_HEADER_BYTES {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            if bytes.len() - offset - WAL_HEADER_BYTES < len {
                break;
            }
            frames += 1;
            offset += WAL_HEADER_BYTES + len;
        }
        frames
    }

    /// Replays one shard's snapshot + WAL into entities, **read-only**:
    /// nothing is repaired, so repeated calls over the same bytes return
    /// byte-identical results (`wfsm recover` relies on this).
    pub fn recover_shard(&self, shard: u32) -> Result<ShardRecovery> {
        let state = self
            .shards
            .get(shard as usize)
            .ok_or_else(|| Error::Config(format!("no shard {shard}")))?;
        let snapshot_bytes = state.snapshot.read_all()?;
        let (snapshot_entities, snapshot_lsn, declared, snapshot_truncated) =
            Self::parse_snapshot(&snapshot_bytes);
        let mut stats = ShardRecoveryStats {
            shard,
            snapshot_declared: declared,
            snapshot_entities: snapshot_entities.len() as u64,
            snapshot_lsn,
            snapshot_truncated,
            snapshot_bytes: snapshot_bytes.len() as u64,
            wal_records: 0,
            replayed: 0,
            fsync_points: 0,
            truncated_records: 0,
            truncated_bytes: 0,
            valid_wal_bytes: 0,
            last_lsn: snapshot_lsn,
            recovered_entities: 0,
            sim_ms: 0,
            stop: StopReason::EndOfLog,
        };
        let mut map: BTreeMap<DocId, Entity> =
            snapshot_entities.into_iter().map(|e| (e.id, e)).collect();
        let bytes = state.wal.read_all()?;
        let mut offset = 0usize;
        let mut expected_lsn = snapshot_lsn + 1;
        loop {
            if offset == bytes.len() {
                break;
            }
            if bytes.len() - offset < WAL_HEADER_BYTES {
                stats.stop = StopReason::TornTail;
                break;
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(
                bytes[offset + 4..offset + WAL_HEADER_BYTES]
                    .try_into()
                    .expect("4 bytes"),
            );
            if bytes.len() - offset - WAL_HEADER_BYTES < len {
                stats.stop = StopReason::TornTail;
                break;
            }
            let payload = &bytes[offset + WAL_HEADER_BYTES..offset + WAL_HEADER_BYTES + len];
            if crc32(payload) != crc {
                stats.stop = StopReason::BadCrc;
                break;
            }
            let record = std::str::from_utf8(payload)
                .ok()
                .and_then(WalRecord::from_payload);
            let Some(record) = record.filter(|r| r.lsn == expected_lsn) else {
                stats.stop = StopReason::BadPayload;
                break;
            };
            expected_lsn += 1;
            stats.wal_records += 1;
            stats.last_lsn = record.lsn;
            match record.op {
                WalOp::Insert(entity) | WalOp::Update(entity) => {
                    map.insert(entity.id, entity);
                    stats.replayed += 1;
                }
                WalOp::Delete(doc) => {
                    map.remove(&doc);
                    stats.replayed += 1;
                }
                WalOp::Fsync => stats.fsync_points += 1,
            }
            offset += WAL_HEADER_BYTES + len;
        }
        stats.valid_wal_bytes = offset as u64;
        stats.truncated_bytes = (bytes.len() - offset) as u64;
        if stats.stop != StopReason::EndOfLog {
            stats.truncated_records = Self::count_dropped_frames(&bytes, offset).max(1);
        }
        stats.recovered_entities = map.len() as u64;
        stats.sim_ms =
            stats.snapshot_entities * SNAPSHOT_ENTITY_COST_MS + stats.wal_records * REPLAY_COST_MS;
        self.with_metrics(|m| {
            m.replayed.add(stats.replayed);
            m.truncated.add(stats.truncated_records);
            let target = format!("durable.shard:{shard}");
            if stats.snapshot_truncated {
                m.evlog.event(
                    Level::Warn,
                    &target,
                    stats.sim_ms,
                    "snapshot truncated, falling back to readable prefix",
                    &[
                        ("declared", stats.snapshot_declared.to_string()),
                        ("readable", stats.snapshot_entities.to_string()),
                    ],
                );
            }
            if stats.stop == StopReason::EndOfLog {
                m.evlog.event(
                    Level::Info,
                    &target,
                    stats.sim_ms,
                    "wal replay clean",
                    &[
                        ("entities", stats.recovered_entities.to_string()),
                        ("replayed", stats.replayed.to_string()),
                    ],
                );
            } else {
                m.evlog.event(
                    Level::Error,
                    &target,
                    stats.sim_ms,
                    "wal replay stopped",
                    &[
                        ("last_lsn", stats.last_lsn.to_string()),
                        ("stop", stats.stop.label().to_string()),
                        ("truncated_bytes", stats.truncated_bytes.to_string()),
                        ("truncated_records", stats.truncated_records.to_string()),
                    ],
                );
            }
        });
        Ok(ShardRecovery {
            entities: map.into_values().collect(),
            stats,
        })
    }

    /// Makes the durable state match what recovery could read: truncates
    /// the WAL to its valid prefix and primes the next LSN. Called by
    /// `Cluster::restart_node` — never by `wfsm recover`.
    pub fn repair_shard(&self, shard: u32, recovery: &ShardRecovery) -> Result<()> {
        let state = self
            .shards
            .get(shard as usize)
            .ok_or_else(|| Error::Config(format!("no shard {shard}")))?;
        if recovery.stats.truncated_bytes > 0 {
            let bytes = state.wal.read_all()?;
            let keep = recovery.stats.valid_wal_bytes as usize;
            state.wal.replace(&bytes[..keep.min(bytes.len())])?;
        }
        state
            .next_lsn
            .store(recovery.stats.last_lsn + 1, Ordering::Relaxed);
        state.since_fsync.store(0, Ordering::Relaxed);
        self.with_metrics(|m| {
            m.evlog.event(
                Level::Info,
                &format!("durable.shard:{shard}"),
                self.sim_now(),
                "wal repaired to valid prefix",
                &[
                    ("next_lsn", (recovery.stats.last_lsn + 1).to_string()),
                    (
                        "truncated_bytes",
                        recovery.stats.truncated_bytes.to_string(),
                    ),
                ],
            );
        });
        Ok(())
    }

    /// Read-only recovery report over every shard (`wfsm recover`).
    pub fn recovery_report(&self) -> Result<RecoveryReport> {
        let shards = (0..self.shards.len())
            .map(|i| self.recover_shard(i as u32).map(|r| r.stats))
            .collect::<Result<Vec<_>>>()?;
        Ok(RecoveryReport { shards })
    }

    fn frames_of(bytes: &[u8]) -> Vec<(usize, usize, Option<u64>)> {
        let mut frames = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= WAL_HEADER_BYTES {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            if bytes.len() - offset - WAL_HEADER_BYTES < len {
                break;
            }
            let payload = &bytes[offset + WAL_HEADER_BYTES..offset + WAL_HEADER_BYTES + len];
            let lsn = std::str::from_utf8(payload)
                .ok()
                .and_then(WalRecord::from_payload)
                .map(|r| r.lsn);
            frames.push((offset, WAL_HEADER_BYTES + len, lsn));
            offset += WAL_HEADER_BYTES + len;
        }
        frames
    }

    /// Damages `shard`'s durable state at a position drawn from
    /// `stream` — the seeded chaos entry point. Same plan + same site ⇒
    /// the same bytes flip everywhere.
    pub fn inject_corruption(
        &self,
        shard: u32,
        kind: CorruptionKind,
        stream: &mut FaultStream,
    ) -> Result<CorruptionOutcome> {
        let state = self
            .shards
            .get(shard as usize)
            .ok_or_else(|| Error::Config(format!("no shard {shard}")))?;
        let outcome = match kind {
            CorruptionKind::TornTail => {
                let bytes = state.wal.read_all()?;
                let frames = Self::frames_of(&bytes);
                let Some(&(offset, len, lsn)) =
                    frames.get(stream.next_in(frames.len() as u64) as usize)
                else {
                    return Err(Error::Config("cannot tear an empty WAL".into()));
                };
                // keep at least 1 byte of the victim frame, at most all
                // but its last byte: a partial record either way
                let cut = offset + 1 + stream.next_in(len as u64 - 1) as usize;
                state.wal.replace(&bytes[..cut])?;
                Ok(CorruptionOutcome {
                    shard,
                    kind,
                    offset: cut as u64,
                    victim_lsn: lsn,
                })
            }
            CorruptionKind::BadCrc => {
                let mut bytes = state.wal.read_all()?;
                let frames = Self::frames_of(&bytes);
                let Some(&(offset, len, lsn)) =
                    frames.get(stream.next_in(frames.len() as u64) as usize)
                else {
                    return Err(Error::Config("cannot corrupt an empty WAL".into()));
                };
                let payload_len = len - WAL_HEADER_BYTES;
                let flip = offset + WAL_HEADER_BYTES + stream.next_in(payload_len as u64) as usize;
                bytes[flip] ^= 0x5A;
                state.wal.replace(&bytes)?;
                Ok(CorruptionOutcome {
                    shard,
                    kind,
                    offset: flip as u64,
                    victim_lsn: lsn,
                })
            }
            CorruptionKind::TruncatedSnapshot => {
                let bytes = state.snapshot.read_all()?;
                let header_end = bytes
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|i| i + 1)
                    .unwrap_or(bytes.len());
                let body = bytes.len() - header_end;
                if body < 2 {
                    return Err(Error::Config(
                        "snapshot too small to truncate (need a body)".into(),
                    ));
                }
                // drop between 1 and body-1 bytes from the end, so the
                // header survives and at least one byte goes missing
                let drop = 1 + stream.next_in(body as u64 - 1) as usize;
                let keep = bytes.len() - drop;
                state.snapshot.replace(&bytes[..keep])?;
                Ok(CorruptionOutcome {
                    shard,
                    kind,
                    offset: keep as u64,
                    victim_lsn: None,
                })
            }
        }?;
        self.with_metrics(|m| {
            m.evlog.event(
                Level::Warn,
                &format!("durable.shard:{shard}"),
                self.sim_now(),
                "corruption injected",
                &[
                    ("kind", kind.label().to_string()),
                    ("offset", outcome.offset.to_string()),
                ],
            );
        });
        Ok(outcome)
    }
}

/// Outcome of one [`DurableStorage::snapshot_shard`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    pub shard: u32,
    pub entities: u64,
    pub snapshot_bytes: u64,
    /// LSN the snapshot covers: the WAL restarts at `last_lsn + 1`.
    pub last_lsn: u64,
    /// WAL bytes truncated by this snapshot.
    pub truncated_wal_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SourceKind;

    fn entity(id: u64, text: &str) -> Entity {
        let mut e = Entity::new(format!("uri://{id}"), SourceKind::Web, text);
        e.id = DocId(id);
        e.version = 1;
        e
    }

    fn storage_with_records(n: u64) -> DurableStorage {
        let storage = DurableStorage::in_memory(1).unwrap();
        for i in 0..n {
            storage.log(0, WalOp::Insert(entity(i, &format!("doc {i}"))));
        }
        storage
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_round_trips_through_encoding() {
        let record = WalRecord {
            lsn: 7,
            sim_ms: 42,
            op: WalOp::Insert(entity(3, "hello world")),
        };
        let bytes = record.encode().unwrap();
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let payload = &bytes[8..8 + len];
        assert_eq!(crc32(payload), crc);
        let back = WalRecord::from_payload(std::str::from_utf8(payload).unwrap()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn fsync_markers_appear_on_cadence() {
        let storage = DurableStorage::in_memory(1).unwrap().with_fsync_interval(4);
        for i in 0..8 {
            storage.log(0, WalOp::Insert(entity(i, "x")));
        }
        let recovery = storage.recover_shard(0).unwrap();
        assert_eq!(recovery.stats.replayed, 8);
        assert_eq!(recovery.stats.fsync_points, 2);
        // 8 data records + 2 markers, contiguous LSNs
        assert_eq!(recovery.stats.last_lsn, 10);
        assert_eq!(recovery.stats.stop, StopReason::EndOfLog);
    }

    #[test]
    fn recovery_is_read_only_and_repeatable() {
        let storage = storage_with_records(5);
        let a = storage.recover_shard(0).unwrap();
        let b = storage.recover_shard(0).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.entities.len(), 5);
    }

    #[test]
    fn snapshot_truncates_wal_and_replays_clean() {
        let store = DataStore::single();
        let storage = Arc::new(DurableStorage::in_memory(1).unwrap());
        store.attach_durability(Arc::clone(&storage)).unwrap();
        for i in 0..6 {
            store.insert(entity(i, &format!("doc {i}")));
        }
        let stats = storage.snapshot_shard(&store, NodeId(0)).unwrap();
        assert_eq!(stats.entities, 6);
        assert!(stats.truncated_wal_bytes > 0);
        assert_eq!(storage.wal_bytes(0), 0);
        store.insert(entity(100, "after snapshot"));
        let recovery = storage.recover_shard(0).unwrap();
        assert_eq!(recovery.stats.snapshot_entities, 6);
        assert_eq!(recovery.stats.replayed, 1);
        assert_eq!(recovery.stats.recovered_entities, 7);
        assert_eq!(recovery.stats.snapshot_lsn + 1, recovery.stats.last_lsn);
    }

    #[test]
    fn delete_records_replay() {
        let store = DataStore::single();
        let storage = Arc::new(DurableStorage::in_memory(1).unwrap());
        store.attach_durability(Arc::clone(&storage)).unwrap();
        let a = store.insert(entity(0, "keep"));
        let b = store.insert(entity(1, "drop"));
        store.delete(b);
        let recovery = storage.recover_shard(0).unwrap();
        assert_eq!(recovery.stats.replayed, 3);
        assert_eq!(recovery.stats.recovered_entities, 1);
        assert_eq!(recovery.entities[0].id, a);
    }

    #[test]
    fn torn_tail_stops_at_last_valid_record() {
        let storage = storage_with_records(10);
        let plan = crate::faults::FaultPlan::new(99);
        let mut stream = plan.stream("durable:0");
        let outcome = storage
            .inject_corruption(0, CorruptionKind::TornTail, &mut stream)
            .unwrap();
        let victim = outcome.victim_lsn.unwrap();
        let recovery = storage.recover_shard(0).unwrap();
        assert_eq!(recovery.stats.stop, StopReason::TornTail);
        assert_eq!(recovery.stats.last_lsn, victim - 1);
        assert_eq!(recovery.stats.recovered_entities, victim - 1);
        assert!(recovery.stats.truncated_bytes > 0);
    }

    #[test]
    fn bad_crc_stops_at_preceding_record() {
        let storage = storage_with_records(10);
        let plan = crate::faults::FaultPlan::new(7);
        let mut stream = plan.stream("durable:0");
        let outcome = storage
            .inject_corruption(0, CorruptionKind::BadCrc, &mut stream)
            .unwrap();
        let victim = outcome.victim_lsn.unwrap();
        let recovery = storage.recover_shard(0).unwrap();
        assert_eq!(recovery.stats.stop, StopReason::BadCrc);
        assert_eq!(recovery.stats.last_lsn, victim - 1);
        // the corrupt frame and everything after it are dropped
        assert_eq!(recovery.stats.truncated_records, 10 - (victim - 1));
    }

    #[test]
    fn repair_truncates_to_valid_prefix_and_resumes_lsns() {
        let storage = storage_with_records(10);
        let plan = crate::faults::FaultPlan::new(3);
        let mut stream = plan.stream("durable:0");
        storage
            .inject_corruption(0, CorruptionKind::TornTail, &mut stream)
            .unwrap();
        let recovery = storage.recover_shard(0).unwrap();
        storage.repair_shard(0, &recovery).unwrap();
        assert_eq!(storage.wal_bytes(0), recovery.stats.valid_wal_bytes);
        assert_eq!(storage.next_lsn(0), recovery.stats.last_lsn + 1);
        storage.log(0, WalOp::Insert(entity(50, "post-repair")));
        let again = storage.recover_shard(0).unwrap();
        assert_eq!(again.stats.stop, StopReason::EndOfLog);
        assert_eq!(again.stats.last_lsn, recovery.stats.last_lsn + 1);
    }

    #[test]
    fn truncated_snapshot_keeps_valid_prefix() {
        let store = DataStore::single();
        let storage = Arc::new(DurableStorage::in_memory(1).unwrap());
        store.attach_durability(Arc::clone(&storage)).unwrap();
        for i in 0..8 {
            store.insert(entity(
                i,
                &format!("snapshot doc number {i} with padding text"),
            ));
        }
        storage.snapshot_shard(&store, NodeId(0)).unwrap();
        let plan = crate::faults::FaultPlan::new(11);
        let mut stream = plan.stream("durable:0");
        storage
            .inject_corruption(0, CorruptionKind::TruncatedSnapshot, &mut stream)
            .unwrap();
        let recovery = storage.recover_shard(0).unwrap();
        assert!(recovery.stats.snapshot_truncated);
        assert_eq!(recovery.stats.snapshot_declared, 8);
        assert!(recovery.stats.snapshot_entities < 8);
        assert_eq!(
            recovery.stats.recovered_entities,
            recovery.stats.snapshot_entities
        );
    }

    #[test]
    fn file_sinks_round_trip_through_a_data_dir() {
        let dir = std::env::temp_dir().join(format!("wf-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DataStore::new(2).unwrap();
            let storage = Arc::new(DurableStorage::at_dir(&dir, 2).unwrap());
            store.attach_durability(Arc::clone(&storage)).unwrap();
            for i in 0..10 {
                store.insert(entity(i, &format!("persisted doc {i}")));
            }
            storage.snapshot_shard(&store, NodeId(0)).unwrap();
        }
        let reopened = DurableStorage::open_dir(&dir).unwrap();
        assert_eq!(reopened.shard_count(), 2);
        let report = reopened.recovery_report().unwrap();
        assert!(report.clean());
        assert_eq!(report.total_recovered(), 10);
        // shard 0 recovered from its snapshot, shard 1 from pure replay
        assert_eq!(report.shards[0].snapshot_entities, 5);
        assert_eq!(report.shards[1].snapshot_entities, 0);
        assert_eq!(report.shards[1].replayed, 5);
        // double-run byte-identity of the canonical report
        assert_eq!(
            reopened.recovery_report().unwrap().to_json_string(),
            report.to_json_string()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn at_dir_unwritable_path_errors_cleanly() {
        let file = std::env::temp_dir().join(format!("wf-durable-file-{}", std::process::id()));
        std::fs::write(&file, "not a directory").unwrap();
        let err = DurableStorage::at_dir(file.join("sub"), 2).unwrap_err();
        assert!(err.to_string().contains("cannot create data dir"), "{err}");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn open_dir_without_layout_errors() {
        let dir = std::env::temp_dir().join(format!("wf-durable-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = DurableStorage::open_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("no shard-* layout"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_renders_table_and_json() {
        let storage = storage_with_records(3);
        let report = storage.recovery_report().unwrap();
        let table = report.to_table();
        assert!(table.contains("SHARD"), "{table}");
        assert!(table.contains("clean"), "{table}");
        let json = report.to_json_string();
        assert!(json.contains("\"recovered_entities\""), "{json}");
        let parsed: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.get("clean").and_then(Value::as_bool), Some(true));
    }
}

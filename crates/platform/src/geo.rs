//! Geographic context extraction — one of the four example miner tasks
//! the paper names ("Tokenization, geographic context extraction \[15\],
//! template detection \[3\], and page ranking \[27\]").
//!
//! A gazetteer-driven entity miner: place-name mentions are annotated
//! with `geo` annotations carrying the place's region, and the document's
//! dominant region lands in `geo-region` metadata (the coarse geographic
//! context McCurley-style applications need).

use crate::entity::{Annotation, Entity};
use crate::miner::EntityMiner;
use std::collections::HashMap;
use wf_types::{Result, Span};

/// A gazetteer entry: place name → region label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    pub name: &'static str,
    pub region: &'static str,
}

/// A small embedded gazetteer (extensible via [`GeoMiner::with_places`]).
pub const DEFAULT_GAZETTEER: &[Place] = &[
    Place {
        name: "San Jose",
        region: "north-america",
    },
    Place {
        name: "New York",
        region: "north-america",
    },
    Place {
        name: "Houston",
        region: "north-america",
    },
    Place {
        name: "Almaden",
        region: "north-america",
    },
    Place {
        name: "California",
        region: "north-america",
    },
    Place {
        name: "Texas",
        region: "north-america",
    },
    Place {
        name: "London",
        region: "europe",
    },
    Place {
        name: "Paris",
        region: "europe",
    },
    Place {
        name: "Berlin",
        region: "europe",
    },
    Place {
        name: "Rotterdam",
        region: "europe",
    },
    Place {
        name: "North Sea",
        region: "europe",
    },
    Place {
        name: "Tokyo",
        region: "asia",
    },
    Place {
        name: "Osaka",
        region: "asia",
    },
    Place {
        name: "Singapore",
        region: "asia",
    },
    Place {
        name: "Lagos",
        region: "africa",
    },
    Place {
        name: "Gulf of Mexico",
        region: "north-america",
    },
];

/// The geographic context miner.
pub struct GeoMiner {
    places: Vec<Place>,
}

impl Default for GeoMiner {
    fn default() -> Self {
        GeoMiner {
            places: DEFAULT_GAZETTEER.to_vec(),
        }
    }
}

impl GeoMiner {
    /// Miner over a custom gazetteer.
    pub fn with_places(places: Vec<Place>) -> Self {
        GeoMiner { places }
    }

    /// Finds (span, region) gazetteer hits in `text` (ASCII
    /// case-insensitive, word-boundary respecting).
    fn spots(&self, text: &str) -> Vec<(Span, &'static str)> {
        let lowered = text.to_ascii_lowercase();
        let bytes = lowered.as_bytes();
        let mut out = Vec::new();
        for place in &self.places {
            let needle = place.name.to_ascii_lowercase();
            let mut from = 0;
            while let Some(pos) = lowered[from..].find(&needle) {
                let start = from + pos;
                let end = start + needle.len();
                let before_ok = start == 0 || !bytes[start - 1].is_ascii_alphanumeric();
                let after_ok = end >= bytes.len() || !bytes[end].is_ascii_alphanumeric();
                if before_ok && after_ok {
                    out.push((Span::new(start, end), place.region));
                }
                from = start + 1;
            }
        }
        out.sort_by_key(|(span, _)| (span.start, span.end));
        out
    }
}

impl EntityMiner for GeoMiner {
    fn name(&self) -> &str {
        "geo-context"
    }

    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.clear_annotations("geo");
        let mut region_counts: HashMap<&'static str, usize> = HashMap::new();
        for (span, region) in self.spots(&entity.text) {
            *region_counts.entry(region).or_insert(0) += 1;
            entity.annotate(Annotation::new("geo", span).with_attr("region", region));
        }
        entity.metadata.remove("geo-region");
        if let Some((&region, _)) = region_counts
            .iter()
            .max_by_key(|&(&region, &count)| (count, std::cmp::Reverse(region)))
        {
            entity
                .metadata
                .insert("geo-region".into(), region.to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SourceKind;

    fn mined(text: &str) -> Entity {
        let mut e = Entity::new("u", SourceKind::News, text);
        GeoMiner::default().process(&mut e).unwrap();
        e
    }

    #[test]
    fn annotates_places_with_regions() {
        let e = mined("The spill reached the Gulf of Mexico near Houston yesterday.");
        let geo: Vec<(&str, String)> = e
            .annotations_of("geo")
            .map(|a| (a.attr("region").unwrap(), a.span.slice(&e.text).to_string()))
            .collect();
        assert!(
            geo.contains(&("north-america", "Gulf of Mexico".to_string())),
            "{geo:?}"
        );
        assert!(
            geo.contains(&("north-america", "Houston".to_string())),
            "{geo:?}"
        );
        assert_eq!(e.metadata.get("geo-region").unwrap(), "north-america");
    }

    #[test]
    fn dominant_region_wins() {
        let e = mined("From London to Paris and Berlin, with one stop in Tokyo.");
        assert_eq!(e.metadata.get("geo-region").unwrap(), "europe");
    }

    #[test]
    fn no_places_no_region() {
        let e = mined("Nothing geographic in this sentence at all.");
        assert_eq!(e.annotations_of("geo").count(), 0);
        assert!(!e.metadata.contains_key("geo-region"));
    }

    #[test]
    fn word_boundaries_respected() {
        // "Texas" must not match inside "Texasville"
        let e = mined("The Texasville festival was fun.");
        assert_eq!(e.annotations_of("geo").count(), 0);
    }

    #[test]
    fn rerun_is_idempotent() {
        let mut e = Entity::new("u", SourceKind::Web, "London calling from London.");
        let miner = GeoMiner::default();
        miner.process(&mut e).unwrap();
        let first = e.annotations_of("geo").count();
        miner.process(&mut e).unwrap();
        assert_eq!(e.annotations_of("geo").count(), first);
        assert_eq!(first, 2);
    }

    #[test]
    fn custom_gazetteer() {
        let miner = GeoMiner::with_places(vec![Place {
            name: "Springfield",
            region: "north-america",
        }]);
        let mut e = Entity::new("u", SourceKind::Web, "Greetings from Springfield!");
        miner.process(&mut e).unwrap();
        assert_eq!(e.annotations_of("geo").count(), 1);
    }
}

//! Deterministic causal tracing on the simulated-ms clock.
//!
//! Flat counters (see [`telemetry`](crate::telemetry)) say *how much*; a
//! trace says *why*. A [`TraceSpan`] context is created at every
//! top-level operation (CLI `mine`, `Cluster::run_pipeline`,
//! `rebuild_index`, an ingest batch) and propagated through the service
//! bus (carried in the request envelope, so retries and timeouts become
//! child-span events), the miner pipeline (one child span per shard,
//! per-entity retry events), index query execution (one span per
//! query-plan node) and store CRUD. Completed spans land in a
//! fixed-capacity [`FlightRecorder`] ring buffer owned by the shared
//! [`Telemetry`](crate::telemetry::Telemetry) registry; eviction is
//! oldest-first and counted.
//!
//! **Determinism.** Spans accumulate **simulated** milliseconds — the
//! same virtual clock the fault subsystem advances — and never read wall
//! time. Raw trace/span ids are allocated from atomics (and therefore
//! interleaving-dependent), so no raw id ever appears in an export:
//! exporters rebuild each trace as a tree, sort children by
//! `(start_sim_ms, path)`, and assign canonical ids in depth-first
//! order. Sibling spans are given unique names (`shard:3`,
//! `store.update:17`, `bus:search#2`) so the sort is total. Consequence:
//! the same chaos seed yields byte-identical JSON, Chrome
//! `trace_event`, and ASCII-waterfall exports no matter how worker
//! threads interleaved.

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one causal tree of spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within the recorder. Raw values are allocation
/// order and never exported; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// A point event inside a span (a retry, an injected fault, a panic),
/// stamped with the absolute simulated time within its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub at_sim_ms: u64,
    pub label: String,
}

/// A completed span as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub id: SpanId,
    pub parent: Option<SpanId>,
    /// Last path component, unique among siblings (`shard:2`).
    pub name: String,
    /// Stable `/`-joined path from the trace root.
    pub path: String,
    /// Absolute simulated start within the trace.
    pub start_sim_ms: u64,
    pub duration_sim_ms: u64,
    pub events: Vec<SpanEvent>,
    pub attrs: BTreeMap<String, String>,
}

/// Default flight-recorder capacity (completed spans retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// The flight recorder: a fixed-capacity ring buffer of completed spans.
///
/// Pushes claim a slot with one `fetch_add` and overwrite the oldest
/// record once the ring wraps (eviction is oldest-first and counted).
/// Capacity 0 disables recording entirely (spans become cheap no-ops on
/// finish).
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, SpanRecord)>>>,
    seq: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` completed spans.
    pub fn with_capacity(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            seq: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        })
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Completed spans ever recorded (including since-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans overwritten by newer ones after the ring wrapped.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Opens a new trace rooted at `name`.
    pub fn root(self: &Arc<Self>, name: impl Into<String>) -> TraceSpan {
        let name = name.into();
        TraceSpan {
            rec: Arc::clone(self),
            trace: TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed) + 1),
            id: self.next_span_id(),
            parent: None,
            path: name.clone(),
            name,
            start_sim_ms: 0,
            elapsed_sim_ms: 0,
            events: Vec::new(),
            attrs: BTreeMap::new(),
            finished: false,
        }
    }

    fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn push(&self, record: SpanRecord) {
        if self.slots.is_empty() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.slots[(seq as usize) % self.slots.len()].lock();
        if slot.is_some() {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some((seq, record));
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Retained spans in completion order (oldest surviving first).
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out: Vec<(u64, SpanRecord)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Distinct trace ids with at least one retained span, ascending
    /// (trace ids are allocated in top-level-operation order).
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.records().iter().map(|r| r.trace).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Whether at least one retained span belongs to `trace` — i.e. an
    /// exemplar pointing at this id still resolves to a dumpable trace
    /// (the ring may have evicted it).
    pub fn contains_trace(&self, trace: TraceId) -> bool {
        self.slots
            .iter()
            .any(|slot| slot.lock().as_ref().is_some_and(|(_, r)| r.trace == trace))
    }

    /// The canonical tree(s) of one trace: children sorted by
    /// `(start_sim_ms, path)`, orphans (evicted parents) promoted to
    /// roots. Usually exactly one root.
    pub fn trace(&self, trace: TraceId) -> Vec<TraceNode> {
        let records: Vec<SpanRecord> = self
            .records()
            .into_iter()
            .filter(|r| r.trace == trace)
            .collect();
        build_trace_tree(records)
    }

    /// The last `n` traces (by trace id), oldest first.
    pub fn last_traces(&self, n: usize) -> Vec<(TraceId, Vec<TraceNode>)> {
        let ids = self.trace_ids();
        let skip = ids.len().saturating_sub(n);
        ids[skip..].iter().map(|&id| (id, self.trace(id))).collect()
    }

    /// Canonical JSON export of the last `n` traces: stable key order,
    /// canonical ids in depth-first order.
    pub fn export_json(&self, n: usize) -> Value {
        let traces = self
            .last_traces(n)
            .into_iter()
            .enumerate()
            .map(|(i, (_, roots))| {
                let mut next_id = 1u64;
                let spans: Vec<Value> = roots
                    .iter()
                    .map(|r| node_to_json(r, &mut next_id))
                    .collect();
                let mut obj = BTreeMap::new();
                obj.insert("spans".to_string(), Value::Array(spans));
                obj.insert("trace".to_string(), Value::from((i + 1) as u64));
                Value::Object(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("traces".to_string(), Value::Array(traces));
        Value::Object(root)
    }

    /// Pretty-printed canonical JSON export.
    pub fn export_json_string(&self, n: usize) -> String {
        serde_json::to_string_pretty(&self.export_json(n)).expect("Value renders infallibly")
    }

    /// Chrome `trace_event` export (load in `about:tracing` / Perfetto):
    /// one complete (`ph:"X"`) event per span, one instant (`ph:"i"`)
    /// event per span event; `pid` is the canonical trace index, `tid`
    /// the canonical span id, timestamps in microseconds of simulated
    /// time.
    pub fn export_chrome(&self, n: usize) -> Value {
        let mut out = Vec::new();
        for (i, (_, roots)) in self.last_traces(n).into_iter().enumerate() {
            let pid = (i + 1) as u64;
            let mut next_id = 1u64;
            for root in &roots {
                node_to_chrome(root, pid, &mut next_id, &mut out);
            }
        }
        let mut obj = BTreeMap::new();
        obj.insert("displayTimeUnit".to_string(), Value::from("ms"));
        obj.insert("traceEvents".to_string(), Value::Array(out));
        Value::Object(obj)
    }

    /// Pretty-printed Chrome export.
    pub fn export_chrome_string(&self, n: usize) -> String {
        serde_json::to_string_pretty(&self.export_chrome(n)).expect("Value renders infallibly")
    }

    /// ASCII waterfall of the last `n` traces, for the CLI.
    pub fn export_text(&self, n: usize) -> String {
        let traces = self.last_traces(n);
        if traces.is_empty() {
            return "(no traces recorded)\n".to_string();
        }
        let mut out = String::new();
        for (i, (_, roots)) in traces.iter().enumerate() {
            let spans: usize = roots.iter().map(TraceNode::span_count).sum();
            let end = roots.iter().map(|r| r.end_sim_ms()).max().unwrap_or(0);
            let _ = writeln!(out, "trace {} · {spans} span(s) · {end} sim-ms", i + 1);
            for root in roots {
                node_to_text(root, 1, &mut out);
            }
        }
        out
    }
}

/// A span in flight. Accumulates simulated milliseconds, point events
/// and attributes; records itself into the flight recorder on
/// [`TraceSpan::finish`] **or drop** — a span abandoned by a panicking
/// worker still lands in the recorder with whatever it accumulated.
#[derive(Debug)]
pub struct TraceSpan {
    rec: Arc<FlightRecorder>,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    path: String,
    start_sim_ms: u64,
    elapsed_sim_ms: u64,
    events: Vec<SpanEvent>,
    attrs: BTreeMap<String, String>,
    finished: bool,
}

impl TraceSpan {
    /// Opens a child span starting at this span's current simulated
    /// time. Give siblings unique names (`shard:2`, `doc:17`) — the
    /// canonical export sorts by `(start, path)`.
    pub fn child(&self, name: impl Into<String>) -> TraceSpan {
        let name = name.into();
        TraceSpan {
            rec: Arc::clone(&self.rec),
            trace: self.trace,
            id: self.rec.next_span_id(),
            parent: Some(self.id),
            path: format!("{}/{}", self.path, name),
            name,
            start_sim_ms: self.end_sim_ms(),
            elapsed_sim_ms: 0,
            events: Vec::new(),
            attrs: BTreeMap::new(),
            finished: false,
        }
    }

    /// Advances the span's simulated clock.
    pub fn advance(&mut self, sim_ms: u64) {
        self.elapsed_sim_ms = self.elapsed_sim_ms.saturating_add(sim_ms);
    }

    /// Advances to an absolute simulated time within the trace (no-op
    /// when already past it). Used to sync a parent to its slowest
    /// parallel child.
    pub fn advance_to(&mut self, abs_sim_ms: u64) {
        let target = abs_sim_ms.saturating_sub(self.start_sim_ms);
        self.elapsed_sim_ms = self.elapsed_sim_ms.max(target);
    }

    /// Records a point event at the current simulated time.
    pub fn event(&mut self, label: impl Into<String>) {
        let at = self.end_sim_ms();
        self.events.push(SpanEvent {
            at_sim_ms: at,
            label: label.into(),
        });
    }

    /// Attaches a key/value attribute (later writes win).
    pub fn attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.attrs.insert(key.into(), value.into());
    }

    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    pub fn span_id(&self) -> SpanId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// Absolute simulated start within the trace.
    pub fn start_sim_ms(&self) -> u64 {
        self.start_sim_ms
    }

    /// Simulated milliseconds accumulated so far.
    pub fn elapsed_sim_ms(&self) -> u64 {
        self.elapsed_sim_ms
    }

    /// Absolute simulated end (start + elapsed).
    pub fn end_sim_ms(&self) -> u64 {
        self.start_sim_ms + self.elapsed_sim_ms
    }

    /// The propagation context for this span (what the service bus
    /// carries in the request envelope).
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            span: self.id,
            path: self.path.clone(),
            at_sim_ms: self.end_sim_ms(),
        }
    }

    /// Records the span and returns its simulated duration.
    pub fn finish(mut self) -> u64 {
        self.record();
        self.elapsed_sim_ms
    }

    fn record(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.rec.push(SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            path: std::mem::take(&mut self.path),
            start_sim_ms: self.start_sim_ms,
            duration_sim_ms: self.elapsed_sim_ms,
            events: std::mem::take(&mut self.events),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.record();
    }
}

/// Reserved request-envelope key carrying the trace context across the
/// service bus.
pub const TRACE_ENVELOPE_KEY: &str = "__trace__";

/// A serializable trace position: enough to open a causally linked
/// child span on the other side of a service call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    pub trace: TraceId,
    pub span: SpanId,
    pub path: String,
    pub at_sim_ms: u64,
}

impl TraceContext {
    /// Renders the context as a JSON value (the envelope payload).
    pub fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("at_ms".to_string(), Value::from(self.at_sim_ms));
        obj.insert("path".to_string(), Value::from(self.path.clone()));
        obj.insert("span".to_string(), Value::from(self.span.0));
        obj.insert("trace".to_string(), Value::from(self.trace.0));
        Value::Object(obj)
    }

    /// Parses a context rendered by [`TraceContext::to_value`].
    pub fn from_value(value: &Value) -> Option<TraceContext> {
        Some(TraceContext {
            trace: TraceId(value.get("trace")?.as_u64()?),
            span: SpanId(value.get("span")?.as_u64()?),
            path: value.get("path")?.as_str()?.to_string(),
            at_sim_ms: value.get("at_ms")?.as_u64()?,
        })
    }

    /// Extracts the context a traced bus call embedded in a request.
    pub fn from_request(request: &Value) -> Option<TraceContext> {
        TraceContext::from_value(request.get(TRACE_ENVELOPE_KEY)?)
    }

    /// Returns `request` with this context attached under
    /// [`TRACE_ENVELOPE_KEY`] (object requests only; other shapes pass
    /// through unchanged).
    pub fn attach(&self, request: &Value) -> Value {
        match request.as_object() {
            Some(obj) => {
                let mut obj = obj.clone();
                obj.insert(TRACE_ENVELOPE_KEY.to_string(), self.to_value());
                Value::Object(obj)
            }
            None => request.clone(),
        }
    }

    /// Opens a child span of this context in `recorder` — the callee
    /// half of cross-service propagation.
    pub fn child_in(&self, recorder: &Arc<FlightRecorder>, name: impl Into<String>) -> TraceSpan {
        let name = name.into();
        TraceSpan {
            rec: Arc::clone(recorder),
            trace: self.trace,
            id: recorder.next_span_id(),
            parent: Some(self.span),
            path: format!("{}/{}", self.path, name),
            name,
            start_sim_ms: self.at_sim_ms,
            elapsed_sim_ms: 0,
            events: Vec::new(),
            attrs: BTreeMap::new(),
            finished: false,
        }
    }
}

/// A canonicalized span tree node (what the exporters consume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    pub name: String,
    pub path: String,
    pub start_sim_ms: u64,
    pub duration_sim_ms: u64,
    pub events: Vec<SpanEvent>,
    pub attrs: BTreeMap<String, String>,
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Absolute simulated end of this node.
    pub fn end_sim_ms(&self) -> u64 {
        self.start_sim_ms + self.duration_sim_ms
    }

    /// Spans in this subtree, including self.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceNode::span_count)
            .sum::<usize>()
    }

    /// Depth-first search for the first node whose path ends with
    /// `suffix`.
    pub fn find(&self, suffix: &str) -> Option<&TraceNode> {
        if self.path.ends_with(suffix) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(suffix))
    }
}

/// Builds the canonical tree(s) for one trace's records: children
/// sorted by `(start_sim_ms, path)`, orphans promoted to roots.
fn build_trace_tree(records: Vec<SpanRecord>) -> Vec<TraceNode> {
    let present: std::collections::HashSet<SpanId> = records.iter().map(|r| r.id).collect();
    let mut children_of: BTreeMap<SpanId, Vec<SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<SpanRecord> = Vec::new();
    for record in records {
        match record.parent {
            Some(parent) if present.contains(&parent) => {
                children_of.entry(parent).or_default().push(record)
            }
            _ => roots.push(record),
        }
    }
    fn build(record: SpanRecord, children_of: &mut BTreeMap<SpanId, Vec<SpanRecord>>) -> TraceNode {
        let mut children: Vec<TraceNode> = children_of
            .remove(&record.id)
            .unwrap_or_default()
            .into_iter()
            .map(|c| build(c, children_of))
            .collect();
        children.sort_by(|a, b| (a.start_sim_ms, &a.path).cmp(&(b.start_sim_ms, &b.path)));
        TraceNode {
            name: record.name,
            path: record.path,
            start_sim_ms: record.start_sim_ms,
            duration_sim_ms: record.duration_sim_ms,
            events: record.events,
            attrs: record.attrs,
            children,
        }
    }
    let mut nodes: Vec<TraceNode> = roots
        .into_iter()
        .map(|r| build(r, &mut children_of))
        .collect();
    nodes.sort_by(|a, b| (a.start_sim_ms, &a.path).cmp(&(b.start_sim_ms, &b.path)));
    nodes
}

fn node_to_json(node: &TraceNode, next_id: &mut u64) -> Value {
    let id = *next_id;
    *next_id += 1;
    let mut obj = BTreeMap::new();
    obj.insert(
        "attrs".to_string(),
        Value::Object(
            node.attrs
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                .collect(),
        ),
    );
    obj.insert(
        "children".to_string(),
        Value::Array(
            node.children
                .iter()
                .map(|c| node_to_json(c, next_id))
                .collect(),
        ),
    );
    obj.insert("dur_ms".to_string(), Value::from(node.duration_sim_ms));
    obj.insert(
        "events".to_string(),
        Value::Array(
            node.events
                .iter()
                .map(|e| {
                    let mut ev = BTreeMap::new();
                    ev.insert("at_ms".to_string(), Value::from(e.at_sim_ms));
                    ev.insert("label".to_string(), Value::from(e.label.clone()));
                    Value::Object(ev)
                })
                .collect(),
        ),
    );
    obj.insert("id".to_string(), Value::from(id));
    obj.insert("name".to_string(), Value::from(node.name.clone()));
    obj.insert("path".to_string(), Value::from(node.path.clone()));
    obj.insert("start_ms".to_string(), Value::from(node.start_sim_ms));
    Value::Object(obj)
}

fn node_to_chrome(node: &TraceNode, pid: u64, next_id: &mut u64, out: &mut Vec<Value>) {
    let tid = *next_id;
    *next_id += 1;
    let mut args = BTreeMap::new();
    for (k, v) in &node.attrs {
        args.insert(k.clone(), Value::from(v.clone()));
    }
    args.insert("path".to_string(), Value::from(node.path.clone()));
    let mut ev = BTreeMap::new();
    ev.insert("args".to_string(), Value::Object(args));
    ev.insert("cat".to_string(), Value::from("wfsm"));
    ev.insert("dur".to_string(), Value::from(node.duration_sim_ms * 1000));
    ev.insert("name".to_string(), Value::from(node.name.clone()));
    ev.insert("ph".to_string(), Value::from("X"));
    ev.insert("pid".to_string(), Value::from(pid));
    ev.insert("tid".to_string(), Value::from(tid));
    ev.insert("ts".to_string(), Value::from(node.start_sim_ms * 1000));
    out.push(Value::Object(ev));
    for event in &node.events {
        let mut inst = BTreeMap::new();
        inst.insert("cat".to_string(), Value::from("wfsm"));
        inst.insert("name".to_string(), Value::from(event.label.clone()));
        inst.insert("ph".to_string(), Value::from("i"));
        inst.insert("pid".to_string(), Value::from(pid));
        inst.insert("s".to_string(), Value::from("t"));
        inst.insert("tid".to_string(), Value::from(tid));
        inst.insert("ts".to_string(), Value::from(event.at_sim_ms * 1000));
        out.push(Value::Object(inst));
    }
    for child in &node.children {
        node_to_chrome(child, pid, next_id, out);
    }
}

fn node_to_text(node: &TraceNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{:<7} {}",
        format!("{}..{}", node.start_sim_ms, node.end_sim_ms()),
        node.name
    );
    if !node.attrs.is_empty() {
        let attrs: Vec<String> = node.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = write!(out, "  [{}]", attrs.join(" "));
    }
    for event in &node.events {
        let _ = write!(out, "  !{}@{}", event.label, event.at_sim_ms);
    }
    out.push('\n');
    for child in &node.children {
        node_to_text(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_finish_and_drop() {
        let rec = FlightRecorder::with_capacity(16);
        let mut root = rec.root("op");
        root.advance(10);
        {
            let mut child = root.child("step:1");
            child.advance(5);
            child.event("hello");
        } // recorded by drop
        assert_eq!(root.finish(), 10);
        let records = rec.records();
        assert_eq!(records.len(), 2);
        assert_eq!(rec.recorded(), 2);
        let child = records.iter().find(|r| r.name == "step:1").unwrap();
        assert_eq!(child.path, "op/step:1");
        assert_eq!(child.start_sim_ms, 10);
        assert_eq!(child.duration_sim_ms, 5);
        assert_eq!(child.events[0].label, "hello");
        assert_eq!(child.events[0].at_sim_ms, 15);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            rec.root(format!("op:{i}")).finish();
        }
        let names: Vec<String> = rec.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["op:2", "op:3", "op:4"], "oldest evicted first");
        assert_eq!(rec.evicted(), 2);
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::with_capacity(0);
        rec.root("op").finish();
        assert!(rec.records().is_empty());
        assert_eq!(rec.recorded(), 0);
        assert_eq!(rec.evicted(), 0);
    }

    #[test]
    fn canonical_tree_sorts_children_by_start_then_path() {
        let rec = FlightRecorder::with_capacity(16);
        let root = rec.root("run");
        // create b before a: canonical order must not care
        let mut b = root.child("shard:1");
        let mut a = root.child("shard:0");
        b.advance(3);
        a.advance(7);
        b.finish();
        a.finish();
        root.finish();
        let roots = rec.trace(TraceId(1));
        assert_eq!(roots.len(), 1);
        let names: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["shard:0", "shard:1"]);
        assert_eq!(roots[0].span_count(), 3);
    }

    #[test]
    fn orphans_promote_to_roots() {
        let rec = FlightRecorder::with_capacity(2);
        let root = rec.root("run");
        let mut c1 = root.child("a");
        c1.advance(1);
        c1.finish();
        let mut c2 = root.child("b");
        c2.advance(2);
        c2.finish();
        root.finish(); // evicts "a": ring holds [b, run]
        let roots = rec.trace(TraceId(1));
        assert_eq!(roots.len(), 1, "b still hangs under run");
        assert_eq!(roots[0].name, "run");
        assert_eq!(roots[0].children[0].name, "b");
    }

    #[test]
    fn context_round_trips_through_envelope() {
        let rec = FlightRecorder::with_capacity(8);
        let mut root = rec.root("caller");
        root.advance(4);
        let ctx = root.context();
        let request = serde_json::json!({"q": "camera"});
        let enveloped = ctx.attach(&request);
        let parsed = TraceContext::from_request(&enveloped).unwrap();
        assert_eq!(parsed, ctx);
        // non-object requests pass through unchanged
        let scalar = Value::from(7u64);
        assert_eq!(ctx.attach(&scalar), scalar);
        // callee side opens a causally linked child
        let mut callee = parsed.child_in(&rec, "handle");
        callee.advance(2);
        callee.finish();
        root.finish();
        let roots = rec.trace(TraceId(1));
        let handle = roots[0].find("caller/handle").unwrap();
        assert_eq!(handle.start_sim_ms, 4);
        assert_eq!(handle.duration_sim_ms, 2);
    }

    #[test]
    fn exports_are_deterministic_and_renumbered() {
        let render = || {
            let rec = FlightRecorder::with_capacity(16);
            let root = rec.root("run");
            let mut kids: Vec<TraceSpan> = (0..3).map(|i| root.child(format!("w:{i}"))).collect();
            // finish in scrambled order with scrambled raw ids
            kids.swap(0, 2);
            for (i, mut k) in kids.into_iter().enumerate() {
                k.advance(i as u64);
                k.finish();
            }
            root.finish();
            (
                rec.export_json_string(8),
                rec.export_chrome_string(8),
                rec.export_text(8),
            )
        };
        let (j1, c1, t1) = render();
        let (j2, c2, t2) = render();
        assert_eq!(j1, j2);
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
        assert!(j1.contains("\"path\": \"run/w:0\""), "{j1}");
        assert!(c1.contains("\"ph\": \"X\""), "{c1}");
        assert!(t1.contains("trace 1"), "{t1}");
    }

    #[test]
    fn empty_recorder_text_export() {
        let rec = FlightRecorder::with_capacity(4);
        assert_eq!(rec.export_text(5), "(no traces recorded)\n");
        assert!(rec.last_traces(5).is_empty());
    }

    #[test]
    fn advance_to_syncs_to_slowest_child() {
        let rec = FlightRecorder::with_capacity(8);
        let mut root = rec.root("run");
        let mut slow = root.child("slow");
        slow.advance(40);
        let end = slow.end_sim_ms();
        slow.finish();
        root.advance_to(end);
        root.advance_to(10); // no-op: already past
        assert_eq!(root.elapsed_sim_ms(), 40);
        root.finish();
    }
}

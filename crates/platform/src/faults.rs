//! Deterministic fault injection for the simulated cluster.
//!
//! The real WebFountain deployment is "a loosely coupled, shared-nothing
//! parallel cluster" of hundreds of commodity Linux servers — at that
//! scale nodes die, services hang and updates collide as a matter of
//! course, and every platform component has to keep mining through it.
//! This module reproduces that failure surface at laptop scale: a
//! [`FaultPlan`] drives seed-reproducible fault draws (node down, service
//! error, slow response, store update conflict) that the service bus,
//! miner pipeline and cluster manager consult before every operation.
//!
//! Two properties make the subsystem testable:
//!
//! - **Determinism.** Every site (a service name, a shard) draws from its
//!   own [`FaultStream`] seeded by `plan seed ⊕ fnv(site)`. Streams are
//!   owned by the worker that consumes them, so thread interleaving can
//!   never change which operation sees which fault: identical seeds give
//!   byte-identical statistics.
//! - **Simulated time.** Latency and backoff advance a virtual
//!   millisecond clock instead of sleeping, so timeout budgets are
//!   honored exactly and chaos suites run in real milliseconds.

use crate::cluster::Cluster;
use crate::entity::{Entity, SourceKind};
use wf_types::{NodeId, Result, RetryPolicy};

/// The four injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The node owning the target is unreachable (transient).
    NodeDown,
    /// The service handler itself fails (application error, terminal).
    ServiceError,
    /// The operation completes, but slowly (adds simulated latency).
    SlowResponse,
    /// A store update loses a race with a concurrent writer (transient).
    StoreConflict,
}

impl FaultKind {
    /// Stable snake_case label, matching the `bus.faults.*` counter
    /// names and trace span-event labels.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NodeDown => "node_down",
            FaultKind::ServiceError => "service_error",
            FaultKind::SlowResponse => "slow_response",
            FaultKind::StoreConflict => "store_conflict",
        }
    }
}

/// Per-operation probabilities and latency parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    pub node_down: f64,
    pub service_error: f64,
    pub slow_response: f64,
    pub store_conflict: f64,
    /// Simulated latency added by one `SlowResponse` fault.
    pub slow_latency_ms: u64,
    /// Simulated latency of any fault-free operation.
    pub base_latency_ms: u64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            node_down: 0.0,
            service_error: 0.0,
            slow_response: 0.0,
            store_conflict: 0.0,
            slow_latency_ms: 250,
            base_latency_ms: 1,
        }
    }
}

impl FaultRates {
    /// All four fault classes at the same probability `p`.
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            node_down: p,
            service_error: p,
            slow_response: p,
            store_conflict: p,
            ..FaultRates::default()
        }
    }
}

/// A seeded, site-keyed source of fault decisions.
///
/// The plan itself is immutable and cheap to share; mutable draw state
/// lives in the [`FaultStream`]s it hands out, one per site.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Multiplier applied to fault probabilities on `Degraded` nodes.
    degraded_factor: f64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (rates all zero).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: FaultRates::default(),
            degraded_factor: 4.0,
        }
    }

    /// A plan injecting every fault class at probability `p`.
    pub fn uniform(seed: u64, p: f64) -> Self {
        FaultPlan::new(seed).with_rates(FaultRates::uniform(p))
    }

    pub fn with_rates(mut self, rates: FaultRates) -> Self {
        self.rates = rates;
        self
    }

    pub fn with_degraded_factor(mut self, factor: f64) -> Self {
        self.degraded_factor = factor;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The per-site stream of fault decisions. Same plan + same site ⇒
    /// the same decision sequence, regardless of what other sites do.
    pub fn stream(&self, site: &str) -> FaultStream {
        FaultStream {
            state: self.seed ^ fnv1a(site.as_bytes()),
            rates: self.rates,
            amplify: 1.0,
            degraded_factor: self.degraded_factor,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// One site's deterministic fault sequence (SplitMix64 underneath).
#[derive(Debug, Clone)]
pub struct FaultStream {
    state: u64,
    rates: FaultRates,
    amplify: f64,
    degraded_factor: f64,
}

impl FaultStream {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A deterministic draw in `0..n` (`0` when `n == 0`) — the durable
    /// layer's corruption injector uses this to pick record indices and
    /// byte offsets reproducibly from the same per-site streams the
    /// fault draws come from.
    pub fn next_in(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Amplifies subsequent draws as if running on a `Degraded` node.
    pub fn degrade(&mut self) {
        self.amplify = self.degraded_factor;
    }

    /// Restores normal (`Up`) fault probabilities.
    pub fn restore(&mut self) {
        self.amplify = 1.0;
    }

    fn chance(&mut self, p: f64) -> bool {
        let p = (p * self.amplify).clamp(0.0, 1.0);
        p > 0.0 && self.unit() < p
    }

    /// Draws the fault (if any) for the next operation. Classes are
    /// checked in a fixed order so the consumed randomness per draw is
    /// constant: one uniform sample per class.
    pub fn draw(&mut self) -> Option<FaultKind> {
        // every draw consumes exactly four samples so the stream stays
        // aligned no matter which class fires
        let node_down = self.chance(self.rates.node_down);
        let service_error = self.chance(self.rates.service_error);
        let slow = self.chance(self.rates.slow_response);
        let conflict = self.chance(self.rates.store_conflict);
        if node_down {
            Some(FaultKind::NodeDown)
        } else if service_error {
            Some(FaultKind::ServiceError)
        } else if slow {
            Some(FaultKind::SlowResponse)
        } else if conflict {
            Some(FaultKind::StoreConflict)
        } else {
            None
        }
    }

    /// Simulated latency of one operation given its fault draw.
    pub fn latency_ms(&self, fault: Option<FaultKind>) -> u64 {
        match fault {
            Some(FaultKind::SlowResponse) => self.rates.slow_latency_ms,
            _ => self.rates.base_latency_ms,
        }
    }
}

/// Health of one simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeHealth {
    #[default]
    Up,
    /// Alive but failure-prone: fault probabilities are amplified.
    Degraded,
    /// Unreachable: its shard must fail over or be skipped.
    Down,
}

/// Record of one logical service call, attempts and all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    pub service: String,
    /// Handler/fault attempts made (≥ 1 once the service exists).
    pub attempts: u32,
    /// Retries after transient failures (`attempts - 1` when retried).
    pub retries: u32,
    /// Backoff applied before each retry, in simulated ms.
    pub backoffs_ms: Vec<u64>,
    /// Faults injected across all attempts, in order.
    pub injected: Vec<FaultKind>,
    /// Total simulated time consumed: latency + backoff.
    pub sim_elapsed_ms: u64,
    /// Whether the logical call finally succeeded.
    pub ok: bool,
}

impl CallOutcome {
    pub(crate) fn start(service: &str) -> Self {
        CallOutcome {
            service: service.to_string(),
            attempts: 0,
            retries: 0,
            backoffs_ms: Vec::new(),
            injected: Vec::new(),
            sim_elapsed_ms: 0,
            ok: false,
        }
    }
}

/// Test-support builder: a cluster preloaded with documents, a fault
/// plan, a retry policy and per-node health, ready for chaos suites and
/// degraded-mode benchmarks.
#[derive(Debug, Clone)]
pub struct ChaosCluster {
    nodes: usize,
    docs: usize,
    plan: FaultPlan,
    retry: RetryPolicy,
    degraded: Vec<NodeId>,
    down: Vec<NodeId>,
}

impl ChaosCluster {
    /// `nodes` shards, `docs` synthetic documents, no faults yet.
    pub fn new(nodes: usize, docs: usize) -> Self {
        ChaosCluster {
            nodes,
            docs,
            plan: FaultPlan::new(0),
            retry: RetryPolicy::default(),
            degraded: Vec::new(),
            down: Vec::new(),
        }
    }

    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Shorthand: uniform fault probability `p` under `seed`.
    pub fn chaos(mut self, seed: u64, p: f64) -> Self {
        self.plan = FaultPlan::uniform(seed, p);
        self
    }

    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    pub fn degrade(mut self, node: NodeId) -> Self {
        self.degraded.push(node);
        self
    }

    pub fn degrade_all(mut self) -> Self {
        self.degraded = (0..self.nodes).map(|i| NodeId(i as u32)).collect();
        self
    }

    pub fn down(mut self, node: NodeId) -> Self {
        self.down.push(node);
        self
    }

    /// Boots the cluster: seeds documents, installs the plan/policy on
    /// both the cluster and its service bus, applies node healths.
    pub fn build(self) -> Result<Cluster> {
        let cluster = Cluster::new(self.nodes)?;
        for i in 0..self.docs {
            cluster.store().insert(Entity::new(
                format!("chaos://doc/{i}"),
                SourceKind::Web,
                format!("synthetic chaos document number {i} about cameras"),
            ));
        }
        cluster.set_retry_policy(self.retry);
        cluster.bus().set_retry_policy(self.retry);
        cluster.bus().set_fault_plan(Some(self.plan.clone()));
        cluster.set_fault_plan(Some(self.plan));
        for node in self.degraded {
            cluster.set_health(node, NodeHealth::Degraded);
        }
        for node in self.down {
            cluster.set_health(node, NodeHealth::Down);
        }
        Ok(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_site_same_sequence() {
        let plan = FaultPlan::uniform(7, 0.3);
        let mut a = plan.stream("svc:index");
        let mut b = plan.stream("svc:index");
        for _ in 0..200 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn different_sites_diverge() {
        let plan = FaultPlan::uniform(7, 0.5);
        let mut a = plan.stream("svc:index");
        let mut b = plan.stream("svc:store");
        let seq_a: Vec<_> = (0..64).map(|_| a.draw()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.draw()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::new(123);
        let mut s = plan.stream("anything");
        assert!((0..1000).all(|_| s.draw().is_none()));
    }

    #[test]
    fn rate_one_always_faults() {
        let plan = FaultPlan::new(5).with_rates(FaultRates {
            node_down: 1.0,
            ..FaultRates::default()
        });
        let mut s = plan.stream("x");
        assert!((0..100).all(|_| s.draw() == Some(FaultKind::NodeDown)));
    }

    #[test]
    fn degraded_amplifies() {
        let plan = FaultPlan::new(11).with_rates(FaultRates {
            service_error: 0.1,
            ..FaultRates::default()
        });
        let count = |degraded: bool| {
            let mut s = plan.stream("svc");
            if degraded {
                s.degrade();
            }
            (0..2000).filter(|_| s.draw().is_some()).count()
        };
        let normal = count(false);
        let amplified = count(true);
        assert!(
            amplified > normal * 2,
            "degraded {amplified} vs normal {normal}"
        );
    }

    #[test]
    fn latency_depends_on_fault() {
        let plan = FaultPlan::new(1);
        let s = plan.stream("svc");
        assert_eq!(s.latency_ms(Some(FaultKind::SlowResponse)), 250);
        assert_eq!(s.latency_ms(None), 1);
        assert_eq!(s.latency_ms(Some(FaultKind::NodeDown)), 1);
    }
}

//! The query-time serving tier: a deterministic many-client request loop
//! over a precomputed backend (DESIGN.md §11).
//!
//! The paper's Mode B precomputes sentiment offline so queries answer "in
//! real time"; this module supplies the traffic side of that promise. A
//! [`ServeLoop`] drives a seeded open-loop arrival process — N simulated
//! clients issuing requests on the simulated-ms clock — against any
//! [`ServingBackend`], through:
//!
//! - an [`LruCache`] of results keyed by the request string (the backend
//!   is immutable during a run, so a hit is byte-identical to
//!   recomputation — the cache-coherence property test in
//!   `tests/serving.rs` locks this down);
//! - admission control: a bounded FIFO queue in front of a single
//!   simulated server; arrivals past capacity are **shed** with
//!   [`Error::Unavailable`] semantics and the shedding client backs off
//!   (backpressure) before its next request;
//! - chaos: an optional [`FaultPlan`] injects slow/failing backend calls
//!   on the serving path, and scripted triggers fire callbacks at exact
//!   arrival counts (e.g. downing a shard mid-stream).
//!
//! Everything is instrumented through the shared [`Telemetry`] registry:
//! one trace root per dispatched query (queue wait + execution, with
//! attrs), `serving.*` counters obeying the conservation law
//! `serving.requests == serving.ok + serving.shed + serving.errors`, and
//! the `serving.latency.sim_ms` histogram with exemplars linking back to
//! the flight recorder. Same seed ⇒ byte-identical snapshots and
//! [`ServingReport`]s.

use crate::evlog::Level;
use crate::faults::{FaultKind, FaultPlan, FaultStream};
use crate::telemetry::Telemetry;
use crate::timeseries::TimeSeriesStore;
use crate::trace::TraceSpan;
use serde_json::Value;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;
use wf_types::{Error, Result};

/// Simulated cost of serving a result straight from the LRU cache.
pub const CACHE_HIT_COST_MS: u64 = 1;
/// Simulated dispatch overhead added to every backend execution.
pub const DISPATCH_COST_MS: u64 = 1;

/// A query-answering backend the serve loop can drive.
///
/// Implementations must be pure during a run: the same request string
/// returns the same answer bytes until the backend is explicitly mutated
/// (e.g. by a chaos trigger). The serving cache relies on this.
pub trait ServingBackend: Send + Sync {
    /// Executes one request, returning the canonical answer plus its
    /// simulated cost.
    fn execute(&self, request: &str) -> Result<ServedAnswer>;

    /// Like [`ServingBackend::execute`], with a query span to hang stage
    /// child spans on (shard fanout, postings merge, ...). A backend that
    /// opens children must also advance `span` by the time they consume,
    /// so later stages start at the right simulated instant. The default
    /// records no stages.
    fn execute_traced(&self, request: &str, span: &mut TraceSpan) -> Result<ServedAnswer> {
        let _ = span;
        self.execute(request)
    }
}

/// One backend answer: the canonical body and what it cost to compute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedAnswer {
    /// Canonical answer bytes (same index state ⇒ same bytes).
    pub body: String,
    /// Simulated milliseconds the backend spent computing the answer.
    pub cost_sim_ms: u64,
}

/// Deterministic LRU result cache (BTreeMap-backed, no hashing, so
/// iteration and eviction order are platform-stable).
pub struct LruCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<String, (u64, String)>,
    recency: BTreeMap<u64, String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` results; 0 disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a request, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<String> {
        match self.entries.get_mut(key) {
            Some((used, value)) => {
                self.hits += 1;
                self.recency.remove(used);
                self.tick += 1;
                *used = self.tick;
                let value = value.clone();
                self.recency.insert(self.tick, key.to_string());
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting the least-recently-used entry at
    /// capacity. No-op when capacity is 0.
    pub fn insert(&mut self, key: String, value: String) {
        if self.capacity == 0 {
            return;
        }
        if let Some((used, _)) = self.entries.remove(&key) {
            self.recency.remove(&used);
        } else if self.entries.len() >= self.capacity {
            // BTreeMap front = smallest tick = least recently used
            if let Some((&oldest, _)) = self.recency.iter().next() {
                if let Some(victim) = self.recency.remove(&oldest) {
                    self.entries.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.tick += 1;
        self.entries.insert(key.clone(), (self.tick, value));
        self.recency.insert(self.tick, key);
    }
}

/// SplitMix64, seeded per site like [`FaultPlan::stream`], for the
/// clients' arrival processes and request choices.
struct SimRng {
    state: u64,
}

impl SimRng {
    fn new(seed: u64, site: &str) -> Self {
        SimRng {
            state: seed ^ fnv1a(site.as_bytes()),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Tuning for one serving run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Seed for every client stream (per-client sub-streams are derived
    /// per site, so adding clients never perturbs existing ones).
    pub seed: u64,
    /// Number of simulated clients issuing requests.
    pub clients: u32,
    /// Target aggregate arrival rate, queries per simulated second.
    pub qps: u64,
    /// Total requests to issue before the loop drains and stops.
    pub requests: u64,
    /// LRU result-cache capacity (0 disables the cache).
    pub cache_capacity: usize,
    /// Admission-control bound: arrivals finding this many requests
    /// already waiting are shed.
    pub queue_capacity: usize,
    /// Extra think time a client waits after being shed (backpressure).
    pub shed_backoff_ms: u64,
    /// Invoke the observer every this many completions (0 = never).
    pub observe_every: u64,
    /// Record per-query answers in the report (tests only; answers are
    /// excluded from the canonical JSON).
    pub record_answers: bool,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            seed: 20050405,
            clients: 8,
            qps: 200,
            requests: 400,
            cache_capacity: 64,
            queue_capacity: 32,
            shed_backoff_ms: 50,
            observe_every: 64,
            record_answers: false,
        }
    }
}

/// How one dispatched query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    Ok,
    Error,
}

/// One served query, captured when [`ServingConfig::record_answers`] is
/// set — the raw material of the cache-coherence property test.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// Dispatch sequence number (0-based).
    pub seq: u64,
    pub client: u32,
    pub request: String,
    pub outcome: QueryOutcome,
    /// Answer body (ok) or error rendering (error).
    pub body: String,
    /// True when the body came from the LRU cache.
    pub cached: bool,
    /// End-to-end simulated latency: queue wait + execution.
    pub latency_sim_ms: u64,
}

/// The deterministic result of one serving run.
#[derive(Debug, Clone, Default)]
pub struct ServingReport {
    pub requests: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub latency_p50_ms: u64,
    pub latency_p95_ms: u64,
    pub latency_p99_ms: u64,
    /// Deepest the admission queue ever got.
    pub queue_peak: u64,
    /// Simulated duration of the whole run.
    pub sim_ms: u64,
    /// Completed (ok + error) queries per simulated second, in
    /// milli-units: 1000 ≡ 1 query/s.
    pub sustained_qps_milli: u64,
    /// Per-query capture, only with [`ServingConfig::record_answers`].
    pub answers: Vec<ServedQuery>,
}

impl ServingReport {
    /// Cache hit rate in milli-units (1000 ≡ every lookup hit).
    pub fn cache_hit_rate_milli(&self) -> u64 {
        let lookups = self.cache_hits + self.cache_misses;
        (self.cache_hits * 1000).checked_div(lookups).unwrap_or(0)
    }

    /// Canonical JSON (BTreeMap-sorted keys; excludes `answers`).
    pub fn to_json(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert(
            "cache_evictions".to_string(),
            Value::from(self.cache_evictions),
        );
        o.insert(
            "cache_hit_rate_milli".to_string(),
            Value::from(self.cache_hit_rate_milli()),
        );
        o.insert("cache_hits".to_string(), Value::from(self.cache_hits));
        o.insert("cache_misses".to_string(), Value::from(self.cache_misses));
        o.insert("errors".to_string(), Value::from(self.errors));
        o.insert(
            "latency_p50_ms".to_string(),
            Value::from(self.latency_p50_ms),
        );
        o.insert(
            "latency_p95_ms".to_string(),
            Value::from(self.latency_p95_ms),
        );
        o.insert(
            "latency_p99_ms".to_string(),
            Value::from(self.latency_p99_ms),
        );
        o.insert("ok".to_string(), Value::from(self.ok));
        o.insert("queue_peak".to_string(), Value::from(self.queue_peak));
        o.insert("requests".to_string(), Value::from(self.requests));
        o.insert("shed".to_string(), Value::from(self.shed));
        o.insert("sim_ms".to_string(), Value::from(self.sim_ms));
        o.insert(
            "sustained_qps_milli".to_string(),
            Value::from(self.sustained_qps_milli),
        );
        Value::Object(o)
    }

    /// Pretty-printed canonical JSON (the `wfsm serve --format json`
    /// output; same seed ⇒ byte-identical).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("Value renders infallibly")
    }

    /// Human-readable summary table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "SERVING @ {} sim-ms", self.sim_ms);
        let _ = writeln!(
            out,
            "  requests {}  ok {}  shed {}  errors {}",
            self.requests, self.ok, self.shed, self.errors
        );
        let _ = writeln!(
            out,
            "  sustained {}.{:03} q/s (sim)",
            self.sustained_qps_milli / 1000,
            self.sustained_qps_milli % 1000
        );
        let _ = writeln!(
            out,
            "  latency p50/p95/p99: {}/{}/{} sim-ms",
            self.latency_p50_ms, self.latency_p95_ms, self.latency_p99_ms
        );
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses, {} evictions ({}.{:01}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate_milli() / 10,
            self.cache_hit_rate_milli() % 10
        );
        let _ = writeln!(out, "  queue peak: {}", self.queue_peak);
        out
    }
}

/// A request admitted to the bounded queue, waiting for the server.
struct PendingRequest {
    arrival_ms: u64,
    client: u32,
    request: String,
}

type Trigger<'a> = Box<dyn FnMut() + 'a>;

/// The deterministic many-client request loop.
///
/// Single-threaded discrete-event simulation: client arrivals and server
/// completions interleave on the simulated-ms clock, so the whole run —
/// shed decisions, cache state, latencies, trace ids — is a pure function
/// of (seed, config, workload, backend state).
pub struct ServeLoop<'a> {
    backend: &'a dyn ServingBackend,
    telemetry: Arc<Telemetry>,
    config: ServingConfig,
    workload: Vec<String>,
    plan: Option<FaultPlan>,
    triggers: Vec<(u64, Trigger<'a>)>,
    timeline: Option<Arc<TimeSeriesStore>>,
}

impl<'a> ServeLoop<'a> {
    /// A loop issuing requests drawn uniformly from `workload` (repeat an
    /// entry to skew popularity toward it, which is what makes the cache
    /// earn its keep).
    pub fn new(
        backend: &'a dyn ServingBackend,
        telemetry: Arc<Telemetry>,
        config: ServingConfig,
        workload: Vec<String>,
    ) -> Self {
        ServeLoop {
            backend,
            telemetry,
            config,
            workload,
            plan: None,
            triggers: Vec::new(),
            timeline: None,
        }
    }

    /// Attaches a time-series store scraped at every observation point
    /// (every [`ServingConfig::observe_every`] completions and once at
    /// the end), so a serving run produces a metrics timeline for free.
    pub fn with_timeline(mut self, timeline: Arc<TimeSeriesStore>) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// Injects faults on the backend path (cache hits bypass chaos, as a
    /// real result cache would).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Runs `action` just before arrival number `at_request` (1-based) is
    /// admitted — e.g. downing a backend shard mid-query-stream.
    pub fn with_trigger(mut self, at_request: u64, action: impl FnMut() + 'a) -> Self {
        self.triggers.push((at_request, Box::new(action)));
        self.triggers.sort_by_key(|(at, _)| *at);
        self
    }

    /// Runs to completion; `observer` sees the simulated clock every
    /// [`ServingConfig::observe_every`] completions (for SLO evaluation).
    pub fn run_observed(mut self, observer: &mut dyn FnMut(u64)) -> Result<ServingReport> {
        if self.workload.is_empty() {
            return Err(Error::Config("serving workload is empty".into()));
        }
        if self.config.clients == 0 {
            return Err(Error::Config("serving needs at least one client".into()));
        }
        if self.config.qps == 0 {
            return Err(Error::Config("serving qps must be positive".into()));
        }
        let requests_total = self.config.requests;
        let mean_think_ms = (u64::from(self.config.clients) * 1000 / self.config.qps.max(1)).max(1);

        let counter_requests = self.telemetry.counter("serving.requests");
        let counter_ok = self.telemetry.counter("serving.ok");
        let counter_shed = self.telemetry.counter("serving.shed");
        let counter_errors = self.telemetry.counter("serving.errors");
        let counter_hits = self.telemetry.counter("serving.cache.hits");
        let counter_misses = self.telemetry.counter("serving.cache.misses");
        let counter_evictions = self.telemetry.counter("serving.cache.evictions");
        let gauge_depth = self.telemetry.gauge("serving.queue.depth");
        let gauge_peak = self.telemetry.gauge("serving.queue.peak");
        let latency_hist = self.telemetry.histogram("serving.latency.sim_ms");
        let evlog = Arc::clone(self.telemetry.evlog());

        let mut cache = LruCache::new(self.config.cache_capacity);
        let mut fault_stream: Option<FaultStream> =
            self.plan.as_ref().map(|p| p.stream("serving.backend"));

        // one RNG per client: arrivals and request choices are
        // independent streams, keyed like FaultPlan sites
        let mut client_rngs: Vec<SimRng> = (0..self.config.clients)
            .map(|c| SimRng::new(self.config.seed, &format!("serving.client:{c}")))
            .collect();
        // min-heap of the next arrival per client, tie-broken by client id
        let mut arrivals: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..self.config.clients)
            .map(|c| {
                let stagger = client_rngs[c as usize].below(mean_think_ms);
                std::cmp::Reverse((stagger, c))
            })
            .collect();

        let mut pending: VecDeque<PendingRequest> = VecDeque::new();
        let mut report = ServingReport::default();
        let mut issued: u64 = 0;
        let mut dispatched: u64 = 0;
        let mut completed: u64 = 0;
        let mut free_at: u64 = 0;
        let mut end_ms: u64 = 0;
        let mut trigger_idx = 0;

        while issued < requests_total || !pending.is_empty() {
            let next_arrival = if issued < requests_total {
                arrivals.peek().map(|std::cmp::Reverse((t, _))| *t)
            } else {
                None
            };
            // dispatch the queue head if the server reaches it before the
            // next arrival lands
            if let Some(front) = pending.front() {
                let start = front.arrival_ms.max(free_at);
                if next_arrival.is_none_or(|t| start <= t) {
                    let req = pending.pop_front().expect("front exists");
                    gauge_depth.set(pending.len() as i64);
                    let service_ms = self.dispatch_one(
                        &req,
                        start,
                        dispatched,
                        &mut cache,
                        &mut fault_stream,
                        &mut report,
                        &latency_hist,
                        &counter_ok,
                        &counter_errors,
                    );
                    dispatched += 1;
                    completed += 1;
                    free_at = start + service_ms;
                    end_ms = end_ms.max(free_at);
                    if self.config.observe_every > 0
                        && completed.is_multiple_of(self.config.observe_every)
                    {
                        if let Some(timeline) = &self.timeline {
                            timeline.tick(free_at, || self.telemetry.snapshot());
                        }
                        observer(free_at);
                    }
                    continue;
                }
            }
            // otherwise the next event is a client arrival
            let std::cmp::Reverse((now, client)) = arrivals.pop().expect("issued < total");
            issued += 1;
            end_ms = end_ms.max(now);
            while trigger_idx < self.triggers.len() && self.triggers[trigger_idx].0 <= issued {
                (self.triggers[trigger_idx].1)();
                evlog.event(
                    Level::Warn,
                    "serving.loop",
                    now,
                    "chaos trigger fired",
                    &[("at_request", issued.to_string())],
                );
                trigger_idx += 1;
            }
            counter_requests.inc();
            report.requests += 1;
            let rng = &mut client_rngs[client as usize];
            let request = self.workload[rng.below(self.workload.len() as u64) as usize].clone();
            let mut think = 1 + rng.below(2 * mean_think_ms);
            if pending.len() >= self.config.queue_capacity {
                counter_shed.inc();
                report.shed += 1;
                think += self.config.shed_backoff_ms;
                evlog.event(
                    Level::Warn,
                    "serving.loop",
                    now,
                    "request shed: queue full",
                    &[
                        ("client", client.to_string()),
                        ("queue", pending.len().to_string()),
                    ],
                );
            } else {
                pending.push_back(PendingRequest {
                    arrival_ms: now,
                    client,
                    request,
                });
                gauge_depth.set(pending.len() as i64);
                report.queue_peak = report.queue_peak.max(pending.len() as u64);
            }
            if issued < requests_total {
                arrivals.push(std::cmp::Reverse((now + think, client)));
            }
        }

        gauge_peak.set(report.queue_peak as i64);
        counter_hits.add(cache.hits());
        counter_misses.add(cache.misses());
        counter_evictions.add(cache.evictions());
        report.cache_hits = cache.hits();
        report.cache_misses = cache.misses();
        report.cache_evictions = cache.evictions();
        report.sim_ms = end_ms;
        let completed_total = report.ok + report.errors;
        report.sustained_qps_milli = (completed_total * 1_000_000)
            .checked_div(end_ms)
            .unwrap_or(0);
        {
            let snapshot = self.telemetry.snapshot();
            if let Some(h) = snapshot.histogram("serving.latency.sim_ms") {
                report.latency_p50_ms = h.percentile(50.0);
                report.latency_p95_ms = h.percentile(95.0);
                report.latency_p99_ms = h.percentile(99.0);
            }
        }
        if let Some(timeline) = &self.timeline {
            timeline.scrape_at(end_ms, self.telemetry.snapshot());
        }
        if self.config.observe_every > 0 {
            observer(end_ms);
        }
        Ok(report)
    }

    /// Runs to completion without an observer.
    pub fn run(self) -> Result<ServingReport> {
        self.run_observed(&mut |_| {})
    }

    /// Executes one dequeued request at simulated `start`; returns its
    /// service time.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        &self,
        req: &PendingRequest,
        start: u64,
        seq: u64,
        cache: &mut LruCache,
        fault_stream: &mut Option<FaultStream>,
        report: &mut ServingReport,
        latency_hist: &Arc<crate::telemetry::Histogram>,
        counter_ok: &Arc<crate::telemetry::Counter>,
        counter_errors: &Arc<crate::telemetry::Counter>,
    ) -> u64 {
        // constant root name: the profiler folds every request into one
        // serve.query tree; the sequence number lives in an attr
        let mut span = self.telemetry.trace_root("serve.query");
        span.attr("seq", seq.to_string());
        span.attr("client", req.client.to_string());
        span.attr("request", req.request.clone());
        let queue_wait = start - req.arrival_ms;
        if queue_wait > 0 {
            let mut wait = span.child("queue_wait");
            wait.advance(queue_wait);
            wait.finish();
            span.advance(queue_wait);
            span.event("dequeued");
        }
        // absolute simulated instant service begins; every stage below is
        // a child span partitioning the same service_ms as before
        let service_start = span.end_sim_ms();
        let (outcome, body, cached, service_ms) = if let Some(body) = cache.get(&req.request) {
            span.event("cache_hit");
            let mut lookup = span.child("cache_lookup");
            lookup.attr("hit", "1");
            lookup.advance(CACHE_HIT_COST_MS);
            lookup.finish();
            (QueryOutcome::Ok, body, true, CACHE_HIT_COST_MS)
        } else {
            let mut lookup = span.child("cache_lookup");
            lookup.attr("hit", "0");
            lookup.advance(DISPATCH_COST_MS);
            lookup.finish();
            span.advance(DISPATCH_COST_MS);
            // chaos only touches real backend work, as a result cache
            // in front of the shards would
            let fault = fault_stream.as_mut().and_then(|s| s.draw());
            let slow_ms = match fault {
                Some(FaultKind::SlowResponse) => {
                    span.event("fault:slow_response");
                    fault_stream
                        .as_ref()
                        .map(|s| s.latency_ms(fault))
                        .unwrap_or(0)
                }
                _ => 0,
            };
            let executed = match fault {
                Some(kind) if kind != FaultKind::SlowResponse => {
                    span.event(format!("fault:{}", kind.label()));
                    self.telemetry.evlog().event_in(
                        Level::Warn,
                        &span,
                        "serving.loop",
                        "fault injected",
                        &[("kind", kind.label().to_string()), ("seq", seq.to_string())],
                    );
                    let err = Error::Unavailable(format!("injected {}", kind.label()));
                    (
                        QueryOutcome::Error,
                        err.to_string(),
                        false,
                        DISPATCH_COST_MS,
                    )
                }
                _ => match self.backend.execute_traced(&req.request, &mut span) {
                    Ok(answer) => {
                        cache.insert(req.request.clone(), answer.body.clone());
                        (
                            QueryOutcome::Ok,
                            answer.body,
                            false,
                            DISPATCH_COST_MS + answer.cost_sim_ms + slow_ms,
                        )
                    }
                    Err(err) => (
                        QueryOutcome::Error,
                        err.to_string(),
                        false,
                        DISPATCH_COST_MS + slow_ms,
                    ),
                },
            };
            if slow_ms > 0 {
                // the injected delay lands after whatever the backend did
                span.advance_to(service_start + executed.3 - slow_ms);
                let mut delay = span.child("fault_delay");
                delay.advance(slow_ms);
                delay.finish();
            }
            executed
        };
        span.advance_to(service_start + service_ms);
        let latency = queue_wait + service_ms;
        match outcome {
            QueryOutcome::Ok => {
                counter_ok.inc();
                report.ok += 1;
                span.attr("outcome", "ok");
            }
            QueryOutcome::Error => {
                counter_errors.inc();
                report.errors += 1;
                span.attr("outcome", "error");
                self.telemetry.evlog().event_in(
                    Level::Error,
                    &span,
                    "serving.loop",
                    "query failed",
                    &[
                        ("client", req.client.to_string()),
                        ("error", body.clone()),
                        ("seq", seq.to_string()),
                    ],
                );
            }
        }
        span.attr("cached", if cached { "1" } else { "0" });
        latency_hist.record_exemplar(latency, span.trace_id());
        if self.config.record_answers {
            report.answers.push(ServedQuery {
                seq,
                client: req.client,
                request: req.request.clone(),
                outcome,
                body,
                cached,
                latency_sim_ms: latency,
            });
        }
        span.finish();
        service_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoBackend;
    impl ServingBackend for EchoBackend {
        fn execute(&self, request: &str) -> Result<ServedAnswer> {
            if request == "boom" {
                return Err(Error::NotFound("boom".into()));
            }
            Ok(ServedAnswer {
                body: format!("echo:{request}"),
                cost_sim_ms: 4,
            })
        }
    }

    fn config(requests: u64) -> ServingConfig {
        ServingConfig {
            requests,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        assert_eq!(cache.get("a"), Some("1".into())); // refresh a
        cache.insert("c".into(), "3".into()); // evicts b
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some("1".into()));
        assert_eq!(cache.get("c"), Some("3".into()));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let mut cache = LruCache::new(0);
        cache.insert("a".into(), "1".into());
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn conservation_law_holds() {
        let telemetry = Telemetry::new();
        let report = ServeLoop::new(
            &EchoBackend,
            Arc::clone(&telemetry),
            config(200),
            vec!["q1".into(), "q2".into(), "boom".into()],
        )
        .run()
        .unwrap();
        assert_eq!(report.requests, 200);
        assert_eq!(report.requests, report.ok + report.shed + report.errors);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("serving.requests"),
            snap.counter("serving.ok")
                + snap.counter("serving.shed")
                + snap.counter("serving.errors")
        );
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let run = || {
            let telemetry = Telemetry::new();
            let report = ServeLoop::new(
                &EchoBackend,
                Arc::clone(&telemetry),
                config(300),
                vec!["q1".into(), "q1".into(), "q2".into(), "boom".into()],
            )
            .run()
            .unwrap();
            (
                report.to_json_string(),
                telemetry.snapshot().to_json_string(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tiny_queue_sheds_under_load() {
        let telemetry = Telemetry::new();
        let report = ServeLoop::new(
            &EchoBackend,
            Arc::clone(&telemetry),
            ServingConfig {
                requests: 300,
                qps: 4000,
                queue_capacity: 2,
                cache_capacity: 0,
                ..ServingConfig::default()
            },
            vec!["q1".into(), "q2".into(), "q3".into()],
        )
        .run()
        .unwrap();
        assert!(report.shed > 0, "overload must shed: {report:?}");
        assert_eq!(report.requests, report.ok + report.shed + report.errors);
        assert!(report.queue_peak <= 2);
    }

    #[test]
    fn cache_hits_repeat_answers() {
        let telemetry = Telemetry::new();
        let report = ServeLoop::new(
            &EchoBackend,
            Arc::clone(&telemetry),
            ServingConfig {
                requests: 100,
                record_answers: true,
                ..ServingConfig::default()
            },
            vec!["q1".into()],
        )
        .run()
        .unwrap();
        assert!(report.cache_hits > 0);
        for q in &report.answers {
            assert_eq!(q.body, "echo:q1");
        }
    }

    #[test]
    fn triggers_fire_in_arrival_order() {
        let telemetry = Telemetry::new();
        let fired = std::cell::Cell::new(0u64);
        let report = ServeLoop::new(
            &EchoBackend,
            Arc::clone(&telemetry),
            config(50),
            vec!["q1".into()],
        )
        .with_trigger(10, || fired.set(fired.get() + 1))
        .with_trigger(20, || fired.set(fired.get() + 1))
        .run()
        .unwrap();
        assert_eq!(fired.get(), 2);
        assert_eq!(report.requests, 50);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let telemetry = Telemetry::new();
        let empty: Vec<String> = Vec::new();
        let err = ServeLoop::new(&EchoBackend, Arc::clone(&telemetry), config(10), empty)
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
        let err = ServeLoop::new(
            &EchoBackend,
            Arc::clone(&telemetry),
            ServingConfig {
                clients: 0,
                ..config(10)
            },
            vec!["q".into()],
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
        let err = ServeLoop::new(
            &EchoBackend,
            Arc::clone(&telemetry),
            ServingConfig {
                qps: 0,
                ..config(10)
            },
            vec!["q".into()],
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}

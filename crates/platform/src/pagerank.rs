//! Page ranking — the fourth example miner task the paper names
//! (Tomlin, WWW 2003).
//!
//! A from-scratch PageRank power iteration over the corpus link graph.
//! Links come from `link` annotations whose `target` attribute names
//! another entity's URI (the crawler/ingestors attach these); dangling
//! links and dangling nodes follow the standard teleportation treatment.

use crate::entity::Entity;
use crate::miner::CorpusMiner;
use crate::store::DataStore;
use std::collections::HashMap;
use wf_types::{DocId, Result};

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }
}

/// Computes PageRank over the store's link graph. Returns (doc, score)
/// pairs summing to 1.0, sorted by descending score.
pub fn pagerank(store: &DataStore, config: &PageRankConfig) -> Vec<(DocId, f64)> {
    // uri → doc id resolution
    let mut by_uri: HashMap<String, DocId> = HashMap::new();
    let mut docs: Vec<DocId> = Vec::new();
    store.for_each(|entity| {
        by_uri.insert(entity.uri.clone(), entity.id);
        docs.push(entity.id);
    });
    let n = docs.len();
    if n == 0 {
        return Vec::new();
    }
    let index: HashMap<DocId, usize> = docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    // adjacency: out-links resolved to in-corpus targets only
    let mut out_links: Vec<Vec<usize>> = vec![Vec::new(); n];
    store.for_each(|entity| {
        let from = index[&entity.id];
        for ann in entity.annotations_of("link") {
            if let Some(target) = ann.attr("target") {
                if let Some(&to) = by_uri.get(target) {
                    let to = index[&to];
                    if to != from {
                        out_links[from].push(to);
                    }
                }
            }
        }
    });
    // power iteration
    let mut rank = vec![1.0 / n as f64; n];
    let teleport = (1.0 - config.damping) / n as f64;
    for _ in 0..config.max_iterations {
        let mut next = vec![teleport; n];
        let mut dangling_mass = 0.0;
        for (from, links) in out_links.iter().enumerate() {
            if links.is_empty() {
                dangling_mass += rank[from];
            } else {
                let share = config.damping * rank[from] / links.len() as f64;
                for &to in links {
                    next[to] += share;
                }
            }
        }
        let dangling_share = config.damping * dangling_mass / n as f64;
        for r in &mut next {
            *r += dangling_share;
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < config.tolerance {
            break;
        }
    }
    let mut out: Vec<(DocId, f64)> = docs.into_iter().zip(rank).collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Corpus miner: writes each entity's rank into `pagerank` metadata.
#[derive(Default)]
pub struct PageRankMiner {
    config: PageRankConfig,
}

impl PageRankMiner {
    pub fn new(config: PageRankConfig) -> Self {
        PageRankMiner { config }
    }
}

impl CorpusMiner for PageRankMiner {
    fn name(&self) -> &str {
        "pagerank"
    }

    fn run(&self, store: &DataStore) -> Result<()> {
        for (doc, score) in pagerank(store, &self.config) {
            store.update(doc, |entity: &mut Entity| {
                entity
                    .metadata
                    .insert("pagerank".into(), format!("{score:.6}"));
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Annotation, SourceKind};
    use wf_types::Span;

    /// Builds a store with pages linking per `edges` (by index).
    fn linked_store(n: usize, edges: &[(usize, usize)]) -> DataStore {
        let store = DataStore::single();
        for i in 0..n {
            store.insert(Entity::new(format!("http://p/{i}"), SourceKind::Web, "x"));
        }
        for &(from, to) in edges {
            store
                .update(DocId(from as u64), |e| {
                    e.annotate(
                        Annotation::new("link", Span::new(0, 1))
                            .with_attr("target", format!("http://p/{to}")),
                    );
                })
                .unwrap();
        }
        store
    }

    #[test]
    fn ranks_sum_to_one() {
        let store = linked_store(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let ranks = pagerank(&store, &PageRankConfig::default());
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn hub_target_ranks_highest() {
        // everyone links to page 0
        let store = linked_store(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let ranks = pagerank(&store, &PageRankConfig::default());
        assert_eq!(ranks[0].0, DocId(0));
        assert!(ranks[0].1 > 2.0 * ranks[1].1);
    }

    #[test]
    fn no_links_is_uniform() {
        let store = linked_store(3, &[]);
        let ranks = pagerank(&store, &PageRankConfig::default());
        for (_, r) in &ranks {
            assert!((r - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        // 0 → 1, 1 dangles
        let store = linked_store(2, &[(0, 1)]);
        let ranks = pagerank(&store, &PageRankConfig::default());
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // the linked-to page outranks the linker
        assert_eq!(ranks[0].0, DocId(1));
    }

    #[test]
    fn out_of_corpus_links_are_ignored() {
        let store = linked_store(2, &[]);
        store
            .update(DocId(0), |e| {
                e.annotate(
                    Annotation::new("link", Span::new(0, 1))
                        .with_attr("target", "http://elsewhere.example/"),
                );
            })
            .unwrap();
        let ranks = pagerank(&store, &PageRankConfig::default());
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn miner_writes_metadata() {
        let store = linked_store(3, &[(1, 0), (2, 0)]);
        PageRankMiner::default().run(&store).unwrap();
        store.for_each(|e| {
            assert!(e.metadata.contains_key("pagerank"), "{}", e.uri);
        });
    }

    #[test]
    fn empty_store() {
        let store = DataStore::single();
        assert!(pagerank(&store, &PageRankConfig::default()).is_empty());
    }
}

//! The data store: sharded entity storage.
//!
//! "The data store stores, modifies, and retrieves entities." WebFountain's
//! store spans a shared-nothing cluster; ours shards entities across
//! in-process partitions (one per simulated node) guarded by `parking_lot`
//! RwLocks, so miners can process shards in parallel without contention.

use crate::durable::{DurableStorage, WalOp};
use crate::entity::Entity;
use crate::evlog::{EvLog, Level};
use crate::telemetry::{Counter, Gauge, Telemetry};
use crate::trace::TraceSpan;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_types::{DocId, Error, NodeId, Result};

/// One shard: the entities owned by one simulated cluster node.
#[derive(Debug, Default)]
struct Shard {
    entities: RwLock<BTreeMap<DocId, Entity>>,
}

/// CRUD/versioning instruments, resolved once so hot paths touch only
/// atomics. See DESIGN.md §8 for the `store.*` taxonomy.
#[derive(Debug)]
struct StoreMetrics {
    inserts: Arc<Counter>,
    get_ok: Arc<Counter>,
    get_miss: Arc<Counter>,
    update_ok: Arc<Counter>,
    update_miss: Arc<Counter>,
    delete_ok: Arc<Counter>,
    delete_miss: Arc<Counter>,
    version_bumps: Arc<Counter>,
    entities: Arc<Gauge>,
    /// Structured event log: CRUD misses narrate under
    /// `store.shard:<n>` targets.
    evlog: Arc<EvLog>,
}

impl StoreMetrics {
    fn resolve(tele: &Telemetry) -> Self {
        StoreMetrics {
            evlog: Arc::clone(tele.evlog()),
            inserts: tele.counter("store.insert"),
            get_ok: tele.counter("store.get.ok"),
            get_miss: tele.counter("store.get.miss"),
            update_ok: tele.counter("store.update.ok"),
            update_miss: tele.counter("store.update.miss"),
            delete_ok: tele.counter("store.delete.ok"),
            delete_miss: tele.counter("store.delete.miss"),
            version_bumps: tele.counter("store.version_bumps"),
            entities: tele.gauge("store.entities"),
        }
    }
}

/// Sharded entity store.
#[derive(Debug)]
pub struct DataStore {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    telemetry: Arc<Telemetry>,
    metrics: StoreMetrics,
    /// Optional durable layer: when attached, every mutation appends a
    /// WAL record under the owning shard's write lock, so per-shard log
    /// order always equals apply order.
    durability: RwLock<Option<Arc<DurableStorage>>>,
}

impl DataStore {
    /// Creates a store with `shard_count` shards (≥ 1) and a private
    /// telemetry registry.
    pub fn new(shard_count: usize) -> Result<Self> {
        Self::with_telemetry(shard_count, Telemetry::new())
    }

    /// Creates a store recording its instruments into a shared registry.
    pub fn with_telemetry(shard_count: usize, telemetry: Arc<Telemetry>) -> Result<Self> {
        if shard_count == 0 {
            return Err(Error::Config("store needs at least one shard".into()));
        }
        Ok(DataStore {
            shards: (0..shard_count).map(|_| Shard::default()).collect(),
            next_id: AtomicU64::new(0),
            metrics: StoreMetrics::resolve(&telemetry),
            telemetry,
            durability: RwLock::new(None),
        })
    }

    /// Attaches a durable layer (same shard count required) and binds
    /// its `durable.*` instruments to this store's registry.
    pub fn attach_durability(&self, storage: Arc<DurableStorage>) -> Result<()> {
        if storage.shard_count() != self.shards.len() {
            return Err(Error::Config(format!(
                "durable storage has {} shard(s), store has {}",
                storage.shard_count(),
                self.shards.len()
            )));
        }
        storage.bind_telemetry(&self.telemetry);
        *self.durability.write() = Some(storage);
        Ok(())
    }

    /// The attached durable layer, if any.
    pub fn durability(&self) -> Option<Arc<DurableStorage>> {
        self.durability.read().clone()
    }

    /// The registry this store (and any pipeline run over it) records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Single-shard store for tests and small runs.
    pub fn single() -> Self {
        Self::new(1).expect("one shard is valid")
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The node (shard) owning a document id.
    pub fn node_of(&self, id: DocId) -> NodeId {
        NodeId((id.as_u64() % self.shards.len() as u64) as u32)
    }

    fn shard_index(&self, id: DocId) -> usize {
        (id.as_u64() % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, id: DocId) -> &Shard {
        &self.shards[self.shard_index(id)]
    }

    /// Emits a warn-level event for a CRUD miss on `id`'s shard, stamped
    /// with the durable layer's simulated clock when one is attached
    /// (the plain store has no clock of its own).
    fn log_miss(&self, op: &str, id: DocId) {
        if !self.metrics.evlog.enabled() {
            return;
        }
        let sim_ms = self
            .durability
            .read()
            .as_ref()
            .map(|d| d.sim_now())
            .unwrap_or(0);
        self.metrics.evlog.event(
            Level::Warn,
            &format!("store.shard:{}", self.shard_index(id)),
            sim_ms,
            format!("{op} miss"),
            &[("doc", id.as_u64().to_string())],
        );
    }

    /// Ingests an entity: assigns the next id, stores it, returns the id.
    pub fn insert(&self, mut entity: Entity) -> DocId {
        let id = DocId(self.next_id.fetch_add(1, Ordering::Relaxed));
        entity.id = id;
        entity.version = 1;
        let shard = self.shard_index(id);
        {
            let mut guard = self.shards[shard].entities.write();
            if let Some(durable) = self.durability.read().as_ref() {
                durable.log(shard as u32, WalOp::Insert(entity.clone()));
            }
            guard.insert(id, entity);
        }
        self.metrics.inserts.inc();
        self.metrics.entities.add(1);
        id
    }

    /// Retrieves a clone of an entity.
    pub fn get(&self, id: DocId) -> Result<Entity> {
        match self.shard_of(id).entities.read().get(&id) {
            Some(entity) => {
                self.metrics.get_ok.inc();
                Ok(entity.clone())
            }
            None => {
                self.metrics.get_miss.inc();
                self.log_miss("get", id);
                Err(Error::NotFound(id.to_string()))
            }
        }
    }

    /// Applies a mutation to an entity in place, bumping its version.
    pub fn update<F: FnOnce(&mut Entity)>(&self, id: DocId, f: F) -> Result<()> {
        let mut guard = self.shard_of(id).entities.write();
        let Some(entity) = guard.get_mut(&id) else {
            drop(guard);
            self.metrics.update_miss.inc();
            self.log_miss("update", id);
            return Err(Error::NotFound(id.to_string()));
        };
        f(entity);
        entity.version += 1;
        if let Some(durable) = self.durability.read().as_ref() {
            // full post-state, so replay is idempotent
            durable.log(self.shard_index(id) as u32, WalOp::Update(entity.clone()));
        }
        drop(guard);
        self.metrics.update_ok.inc();
        self.metrics.version_bumps.inc();
        Ok(())
    }

    /// Deletes an entity; returns it if present.
    pub fn delete(&self, id: DocId) -> Option<Entity> {
        let removed = {
            let mut guard = self.shard_of(id).entities.write();
            let removed = guard.remove(&id);
            if removed.is_some() {
                if let Some(durable) = self.durability.read().as_ref() {
                    durable.log(self.shard_index(id) as u32, WalOp::Delete(id));
                }
            }
            removed
        };
        match removed {
            Some(_) => {
                self.metrics.delete_ok.inc();
                self.metrics.entities.add(-1);
            }
            None => {
                self.metrics.delete_miss.inc();
                self.log_miss("delete", id);
            }
        }
        removed
    }

    /// Recovery path: re-seats a replayed entity preserving its id and
    /// version, without writing the WAL (the record already lives
    /// there). Keeps id assignment ahead of everything restored.
    pub fn restore_entity(&self, entity: Entity) {
        let id = entity.id;
        self.next_id
            .fetch_max(id.as_u64().saturating_add(1), Ordering::Relaxed);
        let prev = self.shard_of(id).entities.write().insert(id, entity);
        if prev.is_none() {
            self.metrics.entities.add(1);
        }
    }

    /// Simulated crash: discards one shard's in-memory entities (the
    /// durable layer, if any, is deliberately untouched — surviving the
    /// loss is its job). Returns how many entities were dropped.
    pub fn drop_shard(&self, node: NodeId) -> usize {
        let Some(shard) = self.shards.get(node.0 as usize) else {
            return 0;
        };
        let mut guard = shard.entities.write();
        let lost = guard.len();
        guard.clear();
        self.metrics.entities.add(-(lost as i64));
        lost
    }

    /// [`DataStore::get`] with a `store.get:<id>` child span under
    /// `parent` (a miss becomes a `miss` span event).
    pub fn get_traced(&self, id: DocId, parent: &mut TraceSpan) -> Result<Entity> {
        let mut span = parent.child(format!("store.get:{}", id.0));
        let result = self.get(id);
        if result.is_err() {
            span.event("miss");
        }
        span.finish();
        result
    }

    /// [`DataStore::update`] with a `store.update:<id>` child span under
    /// `parent` (a miss becomes a `miss` span event).
    pub fn update_traced<F: FnOnce(&mut Entity)>(
        &self,
        id: DocId,
        parent: &mut TraceSpan,
        f: F,
    ) -> Result<()> {
        let mut span = parent.child(format!("store.update:{}", id.0));
        let result = self.update(id, f);
        if result.is_err() {
            span.event("miss");
        }
        span.finish();
        result
    }

    /// [`DataStore::insert`] with a `store.insert:<id>` child span under
    /// `parent` (named by the assigned id).
    pub fn insert_traced(&self, entity: Entity, parent: &mut TraceSpan) -> DocId {
        let id = self.insert(entity);
        parent.child(format!("store.insert:{}", id.0)).finish();
        id
    }

    /// Total number of stored entities.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entities.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All ids, ascending.
    pub fn ids(&self) -> Vec<DocId> {
        let mut out: Vec<DocId> = self
            .shards
            .iter()
            .flat_map(|s| s.entities.read().keys().copied().collect::<Vec<_>>())
            .collect();
        out.sort();
        out
    }

    /// Ids owned by one shard, ascending (parallel miners iterate these).
    pub fn shard_ids(&self, node: NodeId) -> Vec<DocId> {
        self.shards
            .get(node.0 as usize)
            .map(|s| s.entities.read().keys().copied().collect())
            .unwrap_or_default()
    }

    /// Runs `f` over a read-only snapshot reference of every entity, in id
    /// order within each shard. Avoids cloning the whole store.
    pub fn for_each<F: FnMut(&Entity)>(&self, mut f: F) {
        for shard in &self.shards {
            let guard = shard.entities.read();
            for entity in guard.values() {
                f(entity);
            }
        }
    }

    /// Per-shard entity counts (cluster balance diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.entities.read().len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SourceKind;

    fn entity(text: &str) -> Entity {
        Entity::new("uri://test", SourceKind::Web, text)
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let store = DataStore::single();
        let a = store.insert(entity("a"));
        let b = store.insert(entity("b"));
        assert_eq!(a, DocId(0));
        assert_eq!(b, DocId(1));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_returns_stored_entity() {
        let store = DataStore::single();
        let id = store.insert(entity("hello"));
        let e = store.get(id).unwrap();
        assert_eq!(e.text, "hello");
        assert_eq!(e.version, 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let store = DataStore::single();
        assert!(matches!(store.get(DocId(42)), Err(Error::NotFound(_))));
    }

    #[test]
    fn update_bumps_version() {
        let store = DataStore::single();
        let id = store.insert(entity("v1"));
        store.update(id, |e| e.text = "v2".into()).unwrap();
        let e = store.get(id).unwrap();
        assert_eq!(e.text, "v2");
        assert_eq!(e.version, 2);
    }

    #[test]
    fn delete_removes() {
        let store = DataStore::single();
        let id = store.insert(entity("bye"));
        assert!(store.delete(id).is_some());
        assert!(store.delete(id).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn sharding_distributes_by_id() {
        let store = DataStore::new(4).unwrap();
        for i in 0..100 {
            store.insert(entity(&format!("doc {i}")));
        }
        let sizes = store.shard_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| s == 25), "{sizes:?}");
    }

    #[test]
    fn shard_ids_partition_ids() {
        let store = DataStore::new(3).unwrap();
        for i in 0..10 {
            store.insert(entity(&format!("{i}")));
        }
        let mut all: Vec<DocId> = (0..3).flat_map(|n| store.shard_ids(NodeId(n))).collect();
        all.sort();
        assert_eq!(all, store.ids());
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(DataStore::new(0).is_err());
    }

    #[test]
    fn for_each_visits_everything() {
        let store = DataStore::new(2).unwrap();
        for i in 0..7 {
            store.insert(entity(&format!("{i}")));
        }
        let mut seen = 0;
        store.for_each(|_| seen += 1);
        assert_eq!(seen, 7);
    }

    #[test]
    fn crud_is_instrumented() {
        let store = DataStore::single();
        let id = store.insert(entity("a"));
        store.insert(entity("b"));
        let _ = store.get(id);
        let _ = store.get(DocId(99));
        store.update(id, |e| e.text.push('!')).unwrap();
        assert!(store.update(DocId(99), |_| {}).is_err());
        store.delete(id);
        assert!(store.delete(id).is_none());
        let snap = store.telemetry().snapshot();
        assert_eq!(snap.counter("store.insert"), 2);
        assert_eq!(snap.counter("store.get.ok"), 1);
        assert_eq!(snap.counter("store.get.miss"), 1);
        assert_eq!(snap.counter("store.update.ok"), 1);
        assert_eq!(snap.counter("store.update.miss"), 1);
        assert_eq!(snap.counter("store.delete.ok"), 1);
        assert_eq!(snap.counter("store.delete.miss"), 1);
        assert_eq!(snap.counter("store.version_bumps"), 1);
        assert_eq!(snap.gauge("store.entities"), 1, "two in, one deleted");
        assert_eq!(snap.gauge("store.entities"), store.len() as i64);
    }

    #[test]
    fn concurrent_inserts_are_unique() {
        use std::sync::Arc;
        let store = Arc::new(DataStore::new(4).unwrap());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| {
                        store.insert(Entity::new(format!("uri://{t}/{i}"), SourceKind::Web, "x"))
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut ids: Vec<DocId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 400);
        assert_eq!(store.len(), 400);
    }
}

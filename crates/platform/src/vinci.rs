//! Vinci: the lightweight service bus.
//!
//! "The nodes in the cluster communicate using a Web-service style,
//! lightweight, high-speed communication protocol called Vinci, a
//! derivative of SOAP." Our in-process equivalent keeps the essential
//! property — components are loosely coupled behind named services
//! exchanging structured documents — using `serde_json::Value` envelopes
//! and a registry, with per-service call statistics.
//!
//! Calls are fault-aware: under a [`FaultPlan`], each logical call draws
//! from the service's own deterministic fault stream, retries transient
//! failures with exponential backoff, and enforces a per-call simulated
//! timeout budget. [`ServiceBus::call_detailed`] exposes the full
//! [`CallOutcome`] (attempts, backoffs, injected faults, simulated time).

use crate::evlog::{EvLog, Level};
use crate::faults::{CallOutcome, FaultKind, FaultPlan, FaultStream};
use crate::telemetry::{Counter, Histogram, Telemetry};
use crate::trace::TraceSpan;
use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_types::{Error, Result, RetryPolicy};

/// A service: handles structured requests.
pub trait Service: Send + Sync {
    fn handle(&self, request: &Value) -> Result<Value>;
}

/// Blanket impl so plain closures can register as services.
impl<F> Service for F
where
    F: Fn(&Value) -> Result<Value> + Send + Sync,
{
    fn handle(&self, request: &Value) -> Result<Value> {
        self(request)
    }
}

struct ServiceEntry {
    /// The handler; `None` after [`ServiceBus::unregister`] — the entry
    /// (and its statistics) outlives the handler.
    service: RwLock<Option<Arc<dyn Service>>>,
    calls: AtomicU64,
    errors: AtomicU64,
    /// How much of `calls`/`errors` has already been flushed into the
    /// telemetry registry, so repeated flushes only add the delta.
    flushed_calls: AtomicU64,
    flushed_errors: AtomicU64,
    /// Per-service simulated-latency histogram (`bus.service.<name>.sim_ms`).
    latency: Arc<Histogram>,
    /// Persistent per-service fault stream so consecutive calls advance
    /// one deterministic sequence instead of replaying the same draws.
    fault_stream: Mutex<Option<FaultStream>>,
}

impl ServiceEntry {
    fn new(telemetry: &Telemetry, name: &str) -> Self {
        ServiceEntry {
            service: RwLock::new(None),
            calls: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            flushed_calls: AtomicU64::new(0),
            flushed_errors: AtomicU64::new(0),
            latency: telemetry.histogram(&format!("bus.service.{name}.sim_ms")),
            fault_stream: Mutex::new(None),
        }
    }
}

/// Bus-wide instruments (DESIGN.md §8). Conservation: `bus.calls` ==
/// `bus.ok` + `bus.errors`; every injected fault is counted by kind.
struct BusMetrics {
    calls: Arc<Counter>,
    ok: Arc<Counter>,
    errors: Arc<Counter>,
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
    /// Slots follow [`FaultKind`]'s variant order.
    faults: [Arc<Counter>; 4],
    call_sim_ms: Arc<Histogram>,
    /// Structured event log: call anomalies narrate under
    /// `bus.svc:<name>` targets.
    evlog: Arc<EvLog>,
}

impl BusMetrics {
    fn resolve(tele: &Telemetry) -> Self {
        BusMetrics {
            evlog: Arc::clone(tele.evlog()),
            calls: tele.counter("bus.calls"),
            ok: tele.counter("bus.ok"),
            errors: tele.counter("bus.errors"),
            retries: tele.counter("bus.retries"),
            timeouts: tele.counter("bus.timeouts"),
            faults: [
                tele.counter("bus.faults.node_down"),
                tele.counter("bus.faults.service_error"),
                tele.counter("bus.faults.slow_response"),
                tele.counter("bus.faults.store_conflict"),
            ],
            call_sim_ms: tele.histogram("bus.call.sim_ms"),
        }
    }

    fn count_fault(&self, kind: FaultKind) {
        let slot = match kind {
            FaultKind::NodeDown => 0,
            FaultKind::ServiceError => 1,
            FaultKind::SlowResponse => 2,
            FaultKind::StoreConflict => 3,
        };
        self.faults[slot].inc();
    }
}

/// The service registry / bus.
pub struct ServiceBus {
    services: RwLock<HashMap<String, Arc<ServiceEntry>>>,
    fault_plan: RwLock<Option<FaultPlan>>,
    retry_policy: RwLock<RetryPolicy>,
    telemetry: Arc<Telemetry>,
    metrics: BusMetrics,
}

impl Default for ServiceBus {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceBus {
    pub fn new() -> Self {
        Self::with_telemetry(Telemetry::new())
    }

    /// A bus recording its instruments into a shared registry.
    pub fn with_telemetry(telemetry: Arc<Telemetry>) -> Self {
        ServiceBus {
            services: RwLock::new(HashMap::new()),
            fault_plan: RwLock::new(None),
            retry_policy: RwLock::new(RetryPolicy::none()),
            metrics: BusMetrics::resolve(&telemetry),
            telemetry,
        }
    }

    /// The registry this bus records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Installs (or clears) the fault plan; resets every service's fault
    /// stream so the new plan starts from its seed.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault_plan.write() = plan;
        for entry in self.services.read().values() {
            *entry.fault_stream.lock() = None;
        }
    }

    /// The retry policy applied to transient call failures.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry_policy.write() = policy;
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry_policy.read()
    }

    /// Registers (or replaces) a service under a name.
    pub fn register(&self, name: impl Into<String>, service: Arc<dyn Service>) {
        let name = name.into();
        let mut services = self.services.write();
        if let Some(entry) = services.get(&name) {
            // replacing keeps stats and the fault stream position
            *entry.service.write() = Some(service);
        } else {
            let entry = Arc::new(ServiceEntry::new(&self.telemetry, &name));
            *entry.service.write() = Some(service);
            services.insert(name, entry);
        }
    }

    /// Unregisters a service's handler, keeping its statistics entry.
    /// Subsequent calls fail with "service ... unregistered". The entry's
    /// call/error counters are flushed into the telemetry registry
    /// (`bus.service.<name>.calls` / `.errors`) so the accounting survives
    /// even if the entry is later dropped. Returns whether a handler was
    /// actually removed.
    pub fn unregister(&self, name: &str) -> bool {
        let services = self.services.read();
        let Some(entry) = services.get(name) else {
            return false;
        };
        let removed = entry.service.write().take().is_some();
        if removed {
            self.flush_entry(name, entry);
        }
        removed
    }

    /// Flushes every service's call/error counters into the registry.
    /// Idempotent: repeated flushes only add what accrued since the last
    /// one, so snapshots taken after a flush are complete and exact.
    pub fn flush_stats(&self) {
        let services = self.services.read();
        let mut names: Vec<&String> = services.keys().collect();
        names.sort();
        for name in names {
            self.flush_entry(name, &services[name]);
        }
    }

    fn flush_entry(&self, name: &str, entry: &ServiceEntry) {
        let calls = entry.calls.load(Ordering::Relaxed);
        let prev = entry.flushed_calls.swap(calls, Ordering::Relaxed);
        self.telemetry
            .counter(&format!("bus.service.{name}.calls"))
            .add(calls.saturating_sub(prev));
        let errors = entry.errors.load(Ordering::Relaxed);
        let prev = entry.flushed_errors.swap(errors, Ordering::Relaxed);
        self.telemetry
            .counter(&format!("bus.service.{name}.errors"))
            .add(errors.saturating_sub(prev));
    }

    /// Emits a structured event for a call anomaly: correlated to the
    /// call's span when traced (so `wfsm logs --trace N` joins back to
    /// the flight recorder), stamped with the in-call simulated offset
    /// otherwise.
    fn log_call_event(
        &self,
        name: &str,
        level: Level,
        span: Option<&TraceSpan>,
        offset_ms: u64,
        message: &str,
        fields: &[(&str, String)],
    ) {
        if !self.metrics.evlog.enabled() {
            return;
        }
        let target = format!("bus.svc:{name}");
        match span {
            Some(s) => {
                self.metrics
                    .evlog
                    .event_in(level, s, &target, message, fields);
            }
            None => {
                self.metrics
                    .evlog
                    .event(level, &target, offset_ms, message, fields);
            }
        }
    }

    /// Calls a service by name (retrying per the installed policy when a
    /// fault plan is active).
    pub fn call(&self, name: &str, request: &Value) -> Result<Value> {
        self.call_detailed(name, request).0
    }

    /// Calls a service and returns the full per-call record alongside the
    /// result. One logical call may span several attempts.
    pub fn call_detailed(&self, name: &str, request: &Value) -> (Result<Value>, CallOutcome) {
        self.call_inner(name, request, None)
    }

    /// A traced call: opens a `bus:<name>#<seq>` child span under
    /// `parent` (seq is the per-service call number, so sequential calls
    /// to one service sort deterministically), attaches the span's
    /// [`TraceContext`](crate::trace::TraceContext) to object-shaped
    /// requests under `__trace__` (handlers may continue the trace via
    /// `TraceContext::from_request`), records injected faults, retries
    /// and timeouts as span events at their exact simulated offsets, and
    /// advances `parent` by the call's simulated duration.
    pub fn call_traced(
        &self,
        name: &str,
        request: &Value,
        parent: &mut TraceSpan,
    ) -> (Result<Value>, CallOutcome) {
        let (result, outcome) = self.call_inner(name, request, Some(parent));
        parent.advance(outcome.sim_elapsed_ms);
        (result, outcome)
    }

    fn call_inner(
        &self,
        name: &str,
        request: &Value,
        parent: Option<&mut TraceSpan>,
    ) -> (Result<Value>, CallOutcome) {
        let mut outcome = CallOutcome::start(name);
        self.metrics.calls.inc();
        let entry = match self.services.read().get(name).cloned() {
            Some(entry) => entry,
            None => {
                match parent {
                    Some(parent) => {
                        let mut span = parent.child(format!("bus:{name}#0"));
                        span.event("error: no such service");
                        self.log_call_event(
                            name,
                            Level::Error,
                            Some(&span),
                            0,
                            "no such service",
                            &[],
                        );
                        span.finish();
                    }
                    None => {
                        self.log_call_event(name, Level::Error, None, 0, "no such service", &[])
                    }
                }
                self.metrics.errors.inc();
                return (
                    Err(Error::Service(format!("no such service: {name}"))),
                    outcome,
                );
            }
        };
        let seq = entry.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let mut span = parent.map(|p| p.child(format!("bus:{name}#{seq}")));
        let enveloped;
        let request = match &span {
            Some(s) => {
                enveloped = s.context().attach(request);
                &enveloped
            }
            None => request,
        };
        let policy = self.retry_policy();
        let result = self.drive_call(name, &entry, request, policy, &mut outcome, span.as_mut());
        if let Err(err) = &result {
            // timeouts already logged an error-level record in drive_call
            if !matches!(err, Error::Timeout(_)) {
                self.log_call_event(
                    name,
                    Level::Error,
                    span.as_ref(),
                    outcome.sim_elapsed_ms,
                    "call failed",
                    &[
                        ("attempts", outcome.attempts.to_string()),
                        ("error", err.to_string()),
                    ],
                );
            }
        }
        if result.is_err() {
            entry.errors.fetch_add(1, Ordering::Relaxed);
        }
        outcome.ok = result.is_ok();
        self.metrics.retries.add(outcome.retries as u64);
        for &kind in &outcome.injected {
            self.metrics.count_fault(kind);
        }
        if matches!(result, Err(Error::Timeout(_))) {
            self.metrics.timeouts.inc();
        }
        if result.is_ok() {
            self.metrics.ok.inc();
        } else {
            self.metrics.errors.inc();
        }
        match &span {
            // traced calls pin the call's trace as the latency bucket's
            // exemplar, linking SLO breaches back to the flight recorder
            Some(s) => {
                let trace = s.trace_id();
                self.metrics
                    .call_sim_ms
                    .record_exemplar(outcome.sim_elapsed_ms, trace);
                entry.latency.record_exemplar(outcome.sim_elapsed_ms, trace);
            }
            None => {
                self.metrics.call_sim_ms.record(outcome.sim_elapsed_ms);
                entry.latency.record(outcome.sim_elapsed_ms);
            }
        }
        if let Some(mut s) = span {
            s.attr("attempts", outcome.attempts.to_string());
            s.attr("ok", outcome.ok.to_string());
            if let Err(err) = &result {
                s.event(format!("error: {err}"));
            }
            s.finish();
        }
        (result, outcome)
    }

    /// The attempt loop: draw fault → apply latency/budget → invoke →
    /// retry transient failures with backoff. When a span is supplied it
    /// advances in lockstep with `outcome.sim_elapsed_ms`, so events land
    /// at exact simulated offsets.
    fn drive_call(
        &self,
        name: &str,
        entry: &ServiceEntry,
        request: &Value,
        policy: RetryPolicy,
        outcome: &mut CallOutcome,
        mut span: Option<&mut TraceSpan>,
    ) -> Result<Value> {
        let mut stream = entry.fault_stream.lock();
        if stream.is_none() {
            if let Some(plan) = self.fault_plan.read().as_ref() {
                *stream = Some(plan.stream(&format!("svc:{name}")));
            }
        }
        loop {
            outcome.attempts += 1;
            let fault = stream.as_mut().and_then(|s| s.draw());
            if let Some(kind) = fault {
                outcome.injected.push(kind);
                if let Some(s) = span.as_deref_mut() {
                    s.event(format!("fault:{}", kind.label()));
                }
                self.log_call_event(
                    name,
                    Level::Warn,
                    span.as_deref(),
                    outcome.sim_elapsed_ms,
                    "fault injected",
                    &[
                        ("attempt", outcome.attempts.to_string()),
                        ("kind", kind.label().to_string()),
                    ],
                );
            }
            let latency = stream.as_ref().map(|s| s.latency_ms(fault)).unwrap_or(0);
            outcome.sim_elapsed_ms += latency;
            if let Some(s) = span.as_deref_mut() {
                s.advance(latency);
            }
            if outcome.sim_elapsed_ms > policy.timeout_budget_ms {
                if let Some(s) = span.as_deref_mut() {
                    s.event("timeout");
                }
                self.log_call_event(
                    name,
                    Level::Error,
                    span.as_deref(),
                    outcome.sim_elapsed_ms,
                    "call timeout",
                    &[
                        ("budget_ms", policy.timeout_budget_ms.to_string()),
                        ("elapsed_ms", outcome.sim_elapsed_ms.to_string()),
                    ],
                );
                return Err(Error::Timeout(format!(
                    "call to {name} exceeded {} sim ms",
                    policy.timeout_budget_ms
                )));
            }
            let attempt_result = match fault {
                Some(FaultKind::NodeDown) => Err(Error::Unavailable(format!(
                    "injected outage calling {name}"
                ))),
                Some(FaultKind::ServiceError) => {
                    Err(Error::Service(format!("injected handler error in {name}")))
                }
                Some(FaultKind::StoreConflict) => Err(Error::Conflict(format!(
                    "injected update conflict in {name}"
                ))),
                // a slow response still reaches the handler
                Some(FaultKind::SlowResponse) | None => match entry.service.read().as_ref() {
                    Some(service) => service.handle(request),
                    None => Err(Error::Service(format!("service {name} unregistered"))),
                },
            };
            match attempt_result {
                Ok(value) => return Ok(value),
                Err(err) if err.is_transient() && outcome.retries < policy.max_retries => {
                    outcome.retries += 1;
                    let backoff = policy.backoff_for(outcome.retries);
                    outcome.backoffs_ms.push(backoff);
                    outcome.sim_elapsed_ms += backoff;
                    if let Some(s) = span.as_deref_mut() {
                        s.event(format!("retry:{} backoff:{backoff}ms", outcome.retries));
                        s.advance(backoff);
                    }
                    self.log_call_event(
                        name,
                        Level::Info,
                        span.as_deref(),
                        outcome.sim_elapsed_ms,
                        "retrying transient failure",
                        &[
                            ("backoff_ms", backoff.to_string()),
                            ("retry", outcome.retries.to_string()),
                        ],
                    );
                    if outcome.sim_elapsed_ms > policy.timeout_budget_ms {
                        if let Some(s) = span.as_deref_mut() {
                            s.event("timeout");
                        }
                        self.log_call_event(
                            name,
                            Level::Error,
                            span.as_deref(),
                            outcome.sim_elapsed_ms,
                            "call timeout",
                            &[
                                ("budget_ms", policy.timeout_budget_ms.to_string()),
                                ("elapsed_ms", outcome.sim_elapsed_ms.to_string()),
                            ],
                        );
                        return Err(Error::Timeout(format!(
                            "call to {name} exceeded {} sim ms while backing off",
                            policy.timeout_budget_ms
                        )));
                    }
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// True when a service is registered (handler present).
    pub fn has(&self, name: &str) -> bool {
        self.services
            .read()
            .get(name)
            .is_some_and(|e| e.service.read().is_some())
    }

    /// Registered service names, sorted (handlerless entries included, so
    /// stats remain discoverable after unregistration).
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// (calls, errors) counters for a service.
    pub fn stats(&self, name: &str) -> Option<(u64, u64)> {
        self.services.read().get(name).map(|e| {
            (
                e.calls.load(Ordering::Relaxed),
                e.errors.load(Ordering::Relaxed),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRates;
    use serde_json::json;

    #[test]
    fn register_and_call() {
        let bus = ServiceBus::new();
        bus.register(
            "echo",
            Arc::new(|req: &Value| Ok(json!({ "echo": req.clone() }))),
        );
        let reply = bus.call("echo", &json!({"msg": "hi"})).unwrap();
        assert_eq!(reply["echo"]["msg"], "hi");
    }

    #[test]
    fn unknown_service_errors() {
        let bus = ServiceBus::new();
        let err = bus.call("nope", &json!({})).unwrap_err();
        assert!(err.to_string().contains("no such service"));
    }

    #[test]
    fn stats_count_calls_and_errors() {
        let bus = ServiceBus::new();
        bus.register(
            "flaky",
            Arc::new(|req: &Value| {
                if req["fail"].as_bool().unwrap_or(false) {
                    Err(Error::Service("boom".into()))
                } else {
                    Ok(json!("ok"))
                }
            }),
        );
        let _ = bus.call("flaky", &json!({"fail": false}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        assert_eq!(bus.stats("flaky"), Some((3, 2)));
        assert_eq!(bus.stats("missing"), None);
    }

    #[test]
    fn replace_service() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(1))));
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(2))));
        assert_eq!(bus.call("svc", &json!({})).unwrap(), json!(2));
        assert_eq!(bus.service_names(), vec!["svc"]);
    }

    #[test]
    fn unregister_makes_calls_fail_but_keeps_stats() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("up"))));
        assert!(bus.call("svc", &json!({})).is_ok());
        assert!(bus.unregister("svc"));
        assert!(!bus.unregister("svc"), "second unregister is a no-op");
        assert!(!bus.has("svc"));
        let err = bus.call("svc", &json!({})).unwrap_err();
        assert_eq!(err.to_string(), "service error: service svc unregistered");
        // entry survives: both calls counted, the second as an error
        assert_eq!(bus.stats("svc"), Some((2, 1)));
        assert_eq!(bus.service_names(), vec!["svc"]);
    }

    #[test]
    fn unregister_unknown_service_is_false() {
        let bus = ServiceBus::new();
        assert!(!bus.unregister("ghost"));
    }

    #[test]
    fn reregister_after_unregister_restores_service() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(1))));
        bus.unregister("svc");
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(2))));
        assert_eq!(bus.call("svc", &json!({})).unwrap(), json!(2));
    }

    #[test]
    fn concurrent_calls() {
        let bus = Arc::new(ServiceBus::new());
        bus.register(
            "inc",
            Arc::new(|v: &Value| Ok(json!(v.as_i64().unwrap_or(0) + 1))),
        );
        let mut handles = Vec::new();
        for _ in 0..8 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let r = bus.call("inc", &json!(i)).unwrap();
                    assert_eq!(r, json!(i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bus.stats("inc").unwrap().0, 800);
    }

    #[test]
    fn injected_outages_are_retried() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("ok"))));
        // 0.3^9 ≈ 2e-5: exhausting 8 retries is effectively impossible
        bus.set_fault_plan(Some(FaultPlan::new(99).with_rates(FaultRates {
            node_down: 0.3,
            ..FaultRates::default()
        })));
        bus.set_retry_policy(RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 5,
            max_backoff_ms: 100,
            timeout_budget_ms: 100_000,
        });
        let mut saw_retry = false;
        for _ in 0..50 {
            let (result, outcome) = bus.call_detailed("svc", &json!({}));
            assert!(result.is_ok(), "retries should absorb 30% outages");
            saw_retry |= outcome.retries > 0;
            assert_eq!(outcome.attempts, outcome.retries + 1);
        }
        assert!(saw_retry, "a 30% outage rate must trigger retries");
    }

    #[test]
    fn calls_are_instrumented() {
        let bus = ServiceBus::new();
        bus.register(
            "flaky",
            Arc::new(|req: &Value| {
                if req["fail"].as_bool().unwrap_or(false) {
                    Err(Error::Service("boom".into()))
                } else {
                    Ok(json!("ok"))
                }
            }),
        );
        let _ = bus.call("flaky", &json!({"fail": false}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        let _ = bus.call("missing", &json!({}));
        let snap = bus.telemetry().snapshot();
        assert_eq!(snap.counter("bus.calls"), 3);
        assert_eq!(snap.counter("bus.ok"), 1);
        assert_eq!(snap.counter("bus.errors"), 2);
        assert_eq!(
            snap.counter("bus.calls"),
            snap.counter("bus.ok") + snap.counter("bus.errors"),
            "conservation: every call is ok or error"
        );
        let per_service = snap.histogram("bus.service.flaky.sim_ms").unwrap();
        assert_eq!(per_service.count, 2, "only resolved calls hit the service");
    }

    #[test]
    fn unregister_flushes_stats_into_registry() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("up"))));
        let _ = bus.call("svc", &json!({}));
        let _ = bus.call("svc", &json!({}));
        bus.unregister("svc");
        let snap = bus.telemetry().snapshot();
        assert_eq!(snap.counter("bus.service.svc.calls"), 2);
        assert_eq!(snap.counter("bus.service.svc.errors"), 0);
        // entry semantics unchanged: stats still queryable on the bus
        assert_eq!(bus.stats("svc"), Some((2, 0)));

        // a register → call → unregister cycle only flushes the delta
        bus.register(
            "svc",
            Arc::new(|_: &Value| Err(Error::Service("down".into()))),
        );
        let _ = bus.call("svc", &json!({}));
        bus.unregister("svc");
        let snap = bus.telemetry().snapshot();
        assert_eq!(snap.counter("bus.service.svc.calls"), 3);
        assert_eq!(snap.counter("bus.service.svc.errors"), 1);
    }

    #[test]
    fn flush_stats_is_idempotent() {
        let bus = ServiceBus::new();
        bus.register("a", Arc::new(|_: &Value| Ok(json!(1))));
        let _ = bus.call("a", &json!({}));
        bus.flush_stats();
        bus.flush_stats();
        let snap = bus.telemetry().snapshot();
        assert_eq!(snap.counter("bus.service.a.calls"), 1);
    }

    #[test]
    fn injected_faults_are_counted_by_kind() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("ok"))));
        bus.set_fault_plan(Some(FaultPlan::new(7).with_rates(FaultRates {
            node_down: 0.5,
            ..FaultRates::default()
        })));
        bus.set_retry_policy(RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 1,
            max_backoff_ms: 10,
            timeout_budget_ms: 100_000,
        });
        let mut retries = 0;
        for _ in 0..40 {
            let (_, outcome) = bus.call_detailed("svc", &json!({}));
            retries += outcome.retries as u64;
        }
        let snap = bus.telemetry().snapshot();
        assert!(snap.counter("bus.faults.node_down") > 0);
        assert_eq!(snap.counter("bus.retries"), retries);
        assert_eq!(snap.histogram("bus.call.sim_ms").unwrap().count, 40);
    }

    #[test]
    fn traced_calls_record_retry_events() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("ok"))));
        bus.set_fault_plan(Some(FaultPlan::new(99).with_rates(FaultRates {
            node_down: 0.3,
            ..FaultRates::default()
        })));
        bus.set_retry_policy(RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 5,
            max_backoff_ms: 100,
            timeout_budget_ms: 100_000,
        });
        let tele = Arc::clone(bus.telemetry());
        let mut root = tele.trace_root("op");
        let mut total_retries = 0u32;
        let mut total_sim = 0u64;
        for _ in 0..50 {
            let (result, outcome) = bus.call_traced("svc", &json!({}), &mut root);
            assert!(result.is_ok());
            total_retries += outcome.retries;
            total_sim += outcome.sim_elapsed_ms;
        }
        assert!(total_retries > 0, "30% outage must retry");
        assert_eq!(root.elapsed_sim_ms(), total_sim, "parent tracks call time");
        root.finish();
        let traces = tele.recorder().last_traces(1);
        let roots = &traces[0].1;
        assert_eq!(roots[0].children.len(), 50, "one span per call");
        let retry_events: usize = roots[0]
            .children
            .iter()
            .flat_map(|c| &c.events)
            .filter(|e| e.label.starts_with("retry:"))
            .count();
        assert_eq!(retry_events as u32, total_retries);
        let fault_events: usize = roots[0]
            .children
            .iter()
            .flat_map(|c| &c.events)
            .filter(|e| e.label.starts_with("fault:"))
            .count();
        assert!(fault_events >= retry_events);
        // sequential calls tile the parent's simulated timeline
        for pair in roots[0].children.windows(2) {
            assert_eq!(pair[1].start_sim_ms, pair[0].end_sim_ms());
        }
    }

    #[test]
    fn trace_context_propagates_through_envelope() {
        use crate::trace::TraceContext;
        let bus = Arc::new(ServiceBus::new());
        let tele = Arc::clone(bus.telemetry());
        let recorder = Arc::clone(tele.recorder());
        bus.register(
            "outer",
            Arc::new(move |req: &Value| {
                let ctx = TraceContext::from_request(req).expect("trace context attached");
                let mut span = ctx.child_in(&recorder, "handler");
                span.advance(3);
                span.finish();
                Ok(json!("done"))
            }),
        );
        let mut root = tele.trace_root("op");
        let (result, _) = bus.call_traced("outer", &json!({"payload": 1}), &mut root);
        assert!(result.is_ok());
        root.finish();
        let traces = tele.recorder().last_traces(1);
        let handler = traces[0].1[0].find("op/bus:outer#1/handler").unwrap();
        assert_eq!(handler.duration_sim_ms, 3);
    }

    #[test]
    fn untraced_calls_carry_no_envelope() {
        use crate::trace::TRACE_ENVELOPE_KEY;
        let bus = ServiceBus::new();
        bus.register(
            "echo",
            Arc::new(|req: &Value| {
                assert!(
                    req.get(TRACE_ENVELOPE_KEY).is_none(),
                    "plain calls must not grow a trace envelope"
                );
                Ok(req.clone())
            }),
        );
        assert!(bus.call("echo", &json!({"a": 1})).is_ok());
    }

    #[test]
    fn timeout_budget_is_enforced() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("ok"))));
        bus.set_fault_plan(Some(FaultPlan::new(3).with_rates(FaultRates {
            node_down: 1.0, // every attempt fails
            ..FaultRates::default()
        })));
        bus.set_retry_policy(RetryPolicy {
            max_retries: 100,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            timeout_budget_ms: 50,
        });
        let (result, outcome) = bus.call_detailed("svc", &json!({}));
        assert!(matches!(result, Err(Error::Timeout(_))), "{result:?}");
        assert!(outcome.sim_elapsed_ms > 50);
        assert!(outcome.attempts < 100, "budget cut retries short");
    }
}

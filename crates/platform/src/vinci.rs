//! Vinci: the lightweight service bus.
//!
//! "The nodes in the cluster communicate using a Web-service style,
//! lightweight, high-speed communication protocol called Vinci, a
//! derivative of SOAP." Our in-process equivalent keeps the essential
//! property — components are loosely coupled behind named services
//! exchanging structured documents — using `serde_json::Value` envelopes
//! and a registry, with per-service call statistics.
//!
//! Calls are fault-aware: under a [`FaultPlan`], each logical call draws
//! from the service's own deterministic fault stream, retries transient
//! failures with exponential backoff, and enforces a per-call simulated
//! timeout budget. [`ServiceBus::call_detailed`] exposes the full
//! [`CallOutcome`] (attempts, backoffs, injected faults, simulated time).

use crate::faults::{CallOutcome, FaultKind, FaultPlan, FaultStream};
use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_types::{Error, Result, RetryPolicy};

/// A service: handles structured requests.
pub trait Service: Send + Sync {
    fn handle(&self, request: &Value) -> Result<Value>;
}

/// Blanket impl so plain closures can register as services.
impl<F> Service for F
where
    F: Fn(&Value) -> Result<Value> + Send + Sync,
{
    fn handle(&self, request: &Value) -> Result<Value> {
        self(request)
    }
}

#[derive(Default)]
struct ServiceEntry {
    /// The handler; `None` after [`ServiceBus::unregister`] — the entry
    /// (and its statistics) outlives the handler.
    service: RwLock<Option<Arc<dyn Service>>>,
    calls: AtomicU64,
    errors: AtomicU64,
    /// Persistent per-service fault stream so consecutive calls advance
    /// one deterministic sequence instead of replaying the same draws.
    fault_stream: Mutex<Option<FaultStream>>,
}

/// The service registry / bus.
#[derive(Default)]
pub struct ServiceBus {
    services: RwLock<HashMap<String, Arc<ServiceEntry>>>,
    fault_plan: RwLock<Option<FaultPlan>>,
    retry_policy: RwLock<RetryPolicy>,
}

impl ServiceBus {
    pub fn new() -> Self {
        ServiceBus {
            services: RwLock::new(HashMap::new()),
            fault_plan: RwLock::new(None),
            retry_policy: RwLock::new(RetryPolicy::none()),
        }
    }

    /// Installs (or clears) the fault plan; resets every service's fault
    /// stream so the new plan starts from its seed.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault_plan.write() = plan;
        for entry in self.services.read().values() {
            *entry.fault_stream.lock() = None;
        }
    }

    /// The retry policy applied to transient call failures.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry_policy.write() = policy;
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry_policy.read()
    }

    /// Registers (or replaces) a service under a name.
    pub fn register(&self, name: impl Into<String>, service: Arc<dyn Service>) {
        let name = name.into();
        let mut services = self.services.write();
        if let Some(entry) = services.get(&name) {
            // replacing keeps stats and the fault stream position
            *entry.service.write() = Some(service);
        } else {
            let entry = Arc::new(ServiceEntry::default());
            *entry.service.write() = Some(service);
            services.insert(name, entry);
        }
    }

    /// Unregisters a service's handler, keeping its statistics entry.
    /// Subsequent calls fail with "service ... unregistered". Returns
    /// whether a handler was actually removed.
    pub fn unregister(&self, name: &str) -> bool {
        self.services
            .read()
            .get(name)
            .is_some_and(|entry| entry.service.write().take().is_some())
    }

    /// Calls a service by name (retrying per the installed policy when a
    /// fault plan is active).
    pub fn call(&self, name: &str, request: &Value) -> Result<Value> {
        self.call_detailed(name, request).0
    }

    /// Calls a service and returns the full per-call record alongside the
    /// result. One logical call may span several attempts.
    pub fn call_detailed(&self, name: &str, request: &Value) -> (Result<Value>, CallOutcome) {
        let mut outcome = CallOutcome::start(name);
        let entry = match self.services.read().get(name).cloned() {
            Some(entry) => entry,
            None => {
                return (
                    Err(Error::Service(format!("no such service: {name}"))),
                    outcome,
                )
            }
        };
        entry.calls.fetch_add(1, Ordering::Relaxed);
        let policy = self.retry_policy();
        let result = self.drive_call(name, &entry, request, policy, &mut outcome);
        if result.is_err() {
            entry.errors.fetch_add(1, Ordering::Relaxed);
        }
        outcome.ok = result.is_ok();
        (result, outcome)
    }

    /// The attempt loop: draw fault → apply latency/budget → invoke →
    /// retry transient failures with backoff.
    fn drive_call(
        &self,
        name: &str,
        entry: &ServiceEntry,
        request: &Value,
        policy: RetryPolicy,
        outcome: &mut CallOutcome,
    ) -> Result<Value> {
        let mut stream = entry.fault_stream.lock();
        if stream.is_none() {
            if let Some(plan) = self.fault_plan.read().as_ref() {
                *stream = Some(plan.stream(&format!("svc:{name}")));
            }
        }
        loop {
            outcome.attempts += 1;
            let fault = stream.as_mut().and_then(|s| s.draw());
            if let Some(kind) = fault {
                outcome.injected.push(kind);
            }
            outcome.sim_elapsed_ms += stream.as_ref().map(|s| s.latency_ms(fault)).unwrap_or(0);
            if outcome.sim_elapsed_ms > policy.timeout_budget_ms {
                return Err(Error::Timeout(format!(
                    "call to {name} exceeded {} sim ms",
                    policy.timeout_budget_ms
                )));
            }
            let attempt_result = match fault {
                Some(FaultKind::NodeDown) => Err(Error::Unavailable(format!(
                    "injected outage calling {name}"
                ))),
                Some(FaultKind::ServiceError) => {
                    Err(Error::Service(format!("injected handler error in {name}")))
                }
                Some(FaultKind::StoreConflict) => Err(Error::Conflict(format!(
                    "injected update conflict in {name}"
                ))),
                // a slow response still reaches the handler
                Some(FaultKind::SlowResponse) | None => match entry.service.read().as_ref() {
                    Some(service) => service.handle(request),
                    None => Err(Error::Service(format!("service {name} unregistered"))),
                },
            };
            match attempt_result {
                Ok(value) => return Ok(value),
                Err(err) if err.is_transient() && outcome.retries < policy.max_retries => {
                    outcome.retries += 1;
                    let backoff = policy.backoff_for(outcome.retries);
                    outcome.backoffs_ms.push(backoff);
                    outcome.sim_elapsed_ms += backoff;
                    if outcome.sim_elapsed_ms > policy.timeout_budget_ms {
                        return Err(Error::Timeout(format!(
                            "call to {name} exceeded {} sim ms while backing off",
                            policy.timeout_budget_ms
                        )));
                    }
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// True when a service is registered (handler present).
    pub fn has(&self, name: &str) -> bool {
        self.services
            .read()
            .get(name)
            .is_some_and(|e| e.service.read().is_some())
    }

    /// Registered service names, sorted (handlerless entries included, so
    /// stats remain discoverable after unregistration).
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// (calls, errors) counters for a service.
    pub fn stats(&self, name: &str) -> Option<(u64, u64)> {
        self.services.read().get(name).map(|e| {
            (
                e.calls.load(Ordering::Relaxed),
                e.errors.load(Ordering::Relaxed),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRates;
    use serde_json::json;

    #[test]
    fn register_and_call() {
        let bus = ServiceBus::new();
        bus.register(
            "echo",
            Arc::new(|req: &Value| Ok(json!({ "echo": req.clone() }))),
        );
        let reply = bus.call("echo", &json!({"msg": "hi"})).unwrap();
        assert_eq!(reply["echo"]["msg"], "hi");
    }

    #[test]
    fn unknown_service_errors() {
        let bus = ServiceBus::new();
        let err = bus.call("nope", &json!({})).unwrap_err();
        assert!(err.to_string().contains("no such service"));
    }

    #[test]
    fn stats_count_calls_and_errors() {
        let bus = ServiceBus::new();
        bus.register(
            "flaky",
            Arc::new(|req: &Value| {
                if req["fail"].as_bool().unwrap_or(false) {
                    Err(Error::Service("boom".into()))
                } else {
                    Ok(json!("ok"))
                }
            }),
        );
        let _ = bus.call("flaky", &json!({"fail": false}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        assert_eq!(bus.stats("flaky"), Some((3, 2)));
        assert_eq!(bus.stats("missing"), None);
    }

    #[test]
    fn replace_service() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(1))));
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(2))));
        assert_eq!(bus.call("svc", &json!({})).unwrap(), json!(2));
        assert_eq!(bus.service_names(), vec!["svc"]);
    }

    #[test]
    fn unregister_makes_calls_fail_but_keeps_stats() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("up"))));
        assert!(bus.call("svc", &json!({})).is_ok());
        assert!(bus.unregister("svc"));
        assert!(!bus.unregister("svc"), "second unregister is a no-op");
        assert!(!bus.has("svc"));
        let err = bus.call("svc", &json!({})).unwrap_err();
        assert_eq!(err.to_string(), "service error: service svc unregistered");
        // entry survives: both calls counted, the second as an error
        assert_eq!(bus.stats("svc"), Some((2, 1)));
        assert_eq!(bus.service_names(), vec!["svc"]);
    }

    #[test]
    fn unregister_unknown_service_is_false() {
        let bus = ServiceBus::new();
        assert!(!bus.unregister("ghost"));
    }

    #[test]
    fn reregister_after_unregister_restores_service() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(1))));
        bus.unregister("svc");
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(2))));
        assert_eq!(bus.call("svc", &json!({})).unwrap(), json!(2));
    }

    #[test]
    fn concurrent_calls() {
        let bus = Arc::new(ServiceBus::new());
        bus.register(
            "inc",
            Arc::new(|v: &Value| Ok(json!(v.as_i64().unwrap_or(0) + 1))),
        );
        let mut handles = Vec::new();
        for _ in 0..8 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let r = bus.call("inc", &json!(i)).unwrap();
                    assert_eq!(r, json!(i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bus.stats("inc").unwrap().0, 800);
    }

    #[test]
    fn injected_outages_are_retried() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("ok"))));
        // 0.3^9 ≈ 2e-5: exhausting 8 retries is effectively impossible
        bus.set_fault_plan(Some(FaultPlan::new(99).with_rates(FaultRates {
            node_down: 0.3,
            ..FaultRates::default()
        })));
        bus.set_retry_policy(RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 5,
            max_backoff_ms: 100,
            timeout_budget_ms: 100_000,
        });
        let mut saw_retry = false;
        for _ in 0..50 {
            let (result, outcome) = bus.call_detailed("svc", &json!({}));
            assert!(result.is_ok(), "retries should absorb 30% outages");
            saw_retry |= outcome.retries > 0;
            assert_eq!(outcome.attempts, outcome.retries + 1);
        }
        assert!(saw_retry, "a 30% outage rate must trigger retries");
    }

    #[test]
    fn timeout_budget_is_enforced() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!("ok"))));
        bus.set_fault_plan(Some(FaultPlan::new(3).with_rates(FaultRates {
            node_down: 1.0, // every attempt fails
            ..FaultRates::default()
        })));
        bus.set_retry_policy(RetryPolicy {
            max_retries: 100,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            timeout_budget_ms: 50,
        });
        let (result, outcome) = bus.call_detailed("svc", &json!({}));
        assert!(matches!(result, Err(Error::Timeout(_))), "{result:?}");
        assert!(outcome.sim_elapsed_ms > 50);
        assert!(outcome.attempts < 100, "budget cut retries short");
    }
}

//! Vinci: the lightweight service bus.
//!
//! "The nodes in the cluster communicate using a Web-service style,
//! lightweight, high-speed communication protocol called Vinci, a
//! derivative of SOAP." Our in-process equivalent keeps the essential
//! property — components are loosely coupled behind named services
//! exchanging structured documents — using `serde_json::Value` envelopes
//! and a registry, with per-service call statistics.

use parking_lot::RwLock;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_types::{Error, Result};

/// A service: handles structured requests.
pub trait Service: Send + Sync {
    fn handle(&self, request: &Value) -> Result<Value>;
}

/// Blanket impl so plain closures can register as services.
impl<F> Service for F
where
    F: Fn(&Value) -> Result<Value> + Send + Sync,
{
    fn handle(&self, request: &Value) -> Result<Value> {
        self(request)
    }
}

#[derive(Default)]
struct ServiceEntry {
    service: Option<Arc<dyn Service>>,
    calls: AtomicU64,
    errors: AtomicU64,
}

/// The service registry / bus.
#[derive(Default)]
pub struct ServiceBus {
    services: RwLock<HashMap<String, Arc<ServiceEntry>>>,
}

impl ServiceBus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a service under a name.
    pub fn register(&self, name: impl Into<String>, service: Arc<dyn Service>) {
        let entry = Arc::new(ServiceEntry {
            service: Some(service),
            calls: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        self.services.write().insert(name.into(), entry);
    }

    /// Calls a service by name.
    pub fn call(&self, name: &str, request: &Value) -> Result<Value> {
        let entry = self
            .services
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Service(format!("no such service: {name}")))?;
        entry.calls.fetch_add(1, Ordering::Relaxed);
        let service = entry
            .service
            .as_ref()
            .ok_or_else(|| Error::Service(format!("service {name} unregistered")))?;
        let result = service.handle(request);
        if result.is_err() {
            entry.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// True when a service is registered.
    pub fn has(&self, name: &str) -> bool {
        self.services.read().contains_key(name)
    }

    /// Registered service names, sorted.
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// (calls, errors) counters for a service.
    pub fn stats(&self, name: &str) -> Option<(u64, u64)> {
        self.services.read().get(name).map(|e| {
            (
                e.calls.load(Ordering::Relaxed),
                e.errors.load(Ordering::Relaxed),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn register_and_call() {
        let bus = ServiceBus::new();
        bus.register(
            "echo",
            Arc::new(|req: &Value| Ok(json!({ "echo": req.clone() }))),
        );
        let reply = bus.call("echo", &json!({"msg": "hi"})).unwrap();
        assert_eq!(reply["echo"]["msg"], "hi");
    }

    #[test]
    fn unknown_service_errors() {
        let bus = ServiceBus::new();
        let err = bus.call("nope", &json!({})).unwrap_err();
        assert!(err.to_string().contains("no such service"));
    }

    #[test]
    fn stats_count_calls_and_errors() {
        let bus = ServiceBus::new();
        bus.register(
            "flaky",
            Arc::new(|req: &Value| {
                if req["fail"].as_bool().unwrap_or(false) {
                    Err(Error::Service("boom".into()))
                } else {
                    Ok(json!("ok"))
                }
            }),
        );
        let _ = bus.call("flaky", &json!({"fail": false}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        let _ = bus.call("flaky", &json!({"fail": true}));
        assert_eq!(bus.stats("flaky"), Some((3, 2)));
        assert_eq!(bus.stats("missing"), None);
    }

    #[test]
    fn replace_service() {
        let bus = ServiceBus::new();
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(1))));
        bus.register("svc", Arc::new(|_: &Value| Ok(json!(2))));
        assert_eq!(bus.call("svc", &json!({})).unwrap(), json!(2));
        assert_eq!(bus.service_names(), vec!["svc"]);
    }

    #[test]
    fn concurrent_calls() {
        let bus = Arc::new(ServiceBus::new());
        bus.register("inc", Arc::new(|v: &Value| Ok(json!(v.as_i64().unwrap_or(0) + 1))));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let r = bus.call("inc", &json!(i)).unwrap();
                    assert_eq!(r, json!(i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bus.stats("inc").unwrap().0, 800);
    }
}

//! A laptop-scale simulation of the WebFountain text-analytics platform.
//!
//! WebFountain (Gruhl et al., IBM Systems Journal 2004) is the substrate
//! the paper's sentiment miner runs on: a shared-nothing cluster that
//! crawls, stores, mines and indexes billions of documents. This crate
//! reproduces its component architecture in-process:
//!
//! - [`entity`]: XML-representable entities with miner annotations;
//! - [`store`]: the sharded data store;
//! - [`index`]: the indexer — text tokens, conceptual tokens, metadata;
//!   boolean / phrase / range / regex queries ([`regex`] is a from-scratch
//!   engine);
//! - [`miner`]: entity-level and corpus-level miner traits plus the
//!   parallel pipeline runner;
//! - [`vinci`]: the Vinci-style service bus;
//! - [`ingest`]: crawler/ingestor normalization into the store;
//! - [`cluster`]: the cluster manager binding it all together;
//! - [`faults`]: deterministic fault injection (node outages, slow calls,
//!   update conflicts) with retry/backoff on a simulated clock;
//! - [`durable`]: the durable layer under the store — a CRC-framed
//!   write-ahead log with per-shard LSNs and fsync-point markers,
//!   per-shard snapshots with log truncation, seeded corruption
//!   injection, and deterministic crash recovery (replay stops at the
//!   last valid record);
//! - [`telemetry`]: deterministic metrics + span tracing (counters,
//!   gauges, fixed-bucket histograms over simulated time) shared by every
//!   component, exported as tables or canonical JSON;
//! - [`trace`]: deterministic causal tracing — trace trees spanning the
//!   bus, pipeline shards, query plans and store CRUD, retained in a
//!   fixed-capacity flight recorder and exported as canonical JSON,
//!   Chrome `trace_event`, or an ASCII waterfall;
//! - [`health`]: the deterministic health engine — declarative SLOs with
//!   multi-window burn-rate alerts on the simulated clock, histogram
//!   exemplars linking metrics back to flight-recorder traces, and the
//!   doctor/scoreboard reports behind `wfsm doctor` / `wfsm top`;
//! - [`serving`]: the query-time serving tier — a deterministic
//!   many-client request loop (seeded arrival process on the simulated
//!   clock) over any precomputed backend, with an LRU result cache,
//!   bounded-queue admission control, load shedding and backpressure,
//!   instrumented end to end (`serving.*` metrics, per-query traces);
//! - [`timeseries`]: deterministic metrics-over-time — a fixed-capacity
//!   ring of telemetry scrapes on the simulated clock with windowed
//!   rollups (counter rate/increase, gauge extrema, histogram-delta
//!   percentiles) and canonical table/JSON export;
//! - [`profile`]: the continuous profiler — flight-recorder spans folded
//!   by path into a self/total-time tree with collapsed-stack
//!   (flamegraph-compatible) export and hotspot ranking;
//! - [`evlog`]: the third observability pillar — a deterministic
//!   structured event log on the simulated clock (leveled records with
//!   stable targets, key=value fields, trace/span correlation, a
//!   fixed-capacity ring with conservation-law drop accounting, and
//!   per-(target, level) token-bucket sampling), exported as canonical
//!   text or JSON behind `wfsm logs`;
//! - [`rundiff`]: the differential layer over the deterministic
//!   exports — `wfsm diff` compares two metrics/profile artifacts and
//!   attributes regressions to counters or profile stage paths with a
//!   machine-readable verdict.

pub mod boilerplate;
pub mod cluster;
pub mod clustering;
pub mod dedup;
pub mod durable;
pub mod entity;
pub mod evlog;
pub mod faults;
pub mod geo;
pub mod health;
pub mod index;
pub mod ingest;
pub mod miner;
pub mod pagerank;
pub mod persist;
pub mod postings;
pub mod profile;
pub mod query_parser;
pub mod regex;
pub mod rundiff;
pub mod serving;
pub mod stats;
pub mod store;
pub mod telemetry;
pub mod timeseries;
pub mod trace;
pub mod vinci;

pub use boilerplate::{TemplateConfig, TemplateDetector};
pub use cluster::{Cluster, ClusterReport, IndexRebuildStats, NodeInfo, NodeRestart, NodeScore};
pub use clustering::{cluster_documents, Clustering, ClusteringMiner};
pub use dedup::{find_duplicates, DedupConfig, DuplicateDetector};
pub use durable::{
    crc32, CorruptionKind, CorruptionOutcome, DurableStorage, FileSink, LogSink, MemorySink,
    RecoveryReport, ShardRecovery, ShardRecoveryStats, SnapshotStats, StopReason, WalOp, WalRecord,
    DEFAULT_FSYNC_INTERVAL, REPLAY_COST_MS, SNAPSHOT_ENTITY_COST_MS, WAL_HEADER_BYTES,
};
pub use entity::{Annotation, Entity, SourceKind};
pub use evlog::{
    EvLog, EvLogSnapshot, EvRecord, EvView, Level, LogFilter, DEFAULT_EVLOG_CAPACITY,
    DEFAULT_SAMPLE_BURST, DEFAULT_SAMPLE_REFILL_MS,
};
pub use faults::{
    CallOutcome, ChaosCluster, FaultKind, FaultPlan, FaultRates, FaultStream, NodeHealth,
};
pub use geo::{GeoMiner, Place};
pub use health::{
    default_slos, render_scoreboard, AlertEvent, DoctorReport, ExemplarRef, HealthEngine,
    Objective, SloSpec, SloStatus, BURN_CLAMP_MILLI,
};
pub use index::{IndexConfig, Indexer, Query, QueryProfile};
pub use ingest::{IngestStats, Ingestor, RawDocument};
pub use miner::{
    CorpusMiner, EntityMiner, FaultContext, MinerPipeline, PipelineStats, ShardOutcome,
};
pub use pagerank::{pagerank, PageRankConfig, PageRankMiner};
pub use persist::{load_store, save_store};
pub use postings::{CompressedPostings, Cursor as PostingsCursor};
pub use profile::{Hotspot, Profile, ProfileNode};
pub use query_parser::parse_query;
pub use regex::Regex;
pub use rundiff::{ArtifactKind, RunDiff, StageDelta, ValueDelta};
pub use serving::{
    LruCache, QueryOutcome, ServeLoop, ServedAnswer, ServedQuery, ServingBackend, ServingConfig,
    ServingReport, CACHE_HIT_COST_MS, DISPATCH_COST_MS,
};
pub use stats::{corpus_stats, CorpusStats};
pub use store::DataStore;
pub use telemetry::{
    Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, Span, Telemetry, TelemetrySnapshot,
};
pub use timeseries::{
    CounterWindow, GaugeWindow, HistogramWindow, TimeSeriesStore, Timeline,
    DEFAULT_SCRAPE_INTERVAL_MS, DEFAULT_TIMELINE_CAPACITY,
};
pub use trace::{
    FlightRecorder, SpanEvent, SpanId, SpanRecord, TraceContext, TraceId, TraceNode, TraceSpan,
    DEFAULT_TRACE_CAPACITY,
};
pub use vinci::{Service, ServiceBus};

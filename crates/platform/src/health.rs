//! The deterministic health engine: SLOs, burn-rate alerts, and the
//! operator report behind `wfsm doctor` / `wfsm top`.
//!
//! The paper's miners ran as long-lived services on a 500-node cluster;
//! operators needed to know *which* node or service was degrading, not
//! just that latency histograms existed. This module interprets the
//! telemetry substrate of DESIGN.md §8–9:
//!
//! - [`SloSpec`] declares an objective over the metric taxonomy
//!   (`bus.call p99 < X sim-ms`, `pipeline error-rate < Y%`, `ingest
//!   throughput > Z docs/s`);
//! - [`HealthEngine`] evaluates objectives over **sliding windows of the
//!   simulated clock** using classic multi-window burn rates: an alert
//!   fires when both the fast and the slow window burn their error
//!   budget faster than the threshold, and resolves when the fast
//!   window recovers. Every transition is an [`AlertEvent`] and bumps
//!   the `health.alerts.fired` / `health.alerts.resolved` counters, so
//!   alerts are part of the deterministic telemetry snapshot;
//! - [`DoctorReport`] assembles SLO status, the alert log, the worst
//!   histogram [`Exemplar`]s (each checked against the flight recorder:
//!   `live == true` means `wfsm trace` can still dump the causal tree),
//!   and the cluster's per-node scoreboard into canonical JSON or a
//!   text report — same seed ⇒ byte-identical output.
//!
//! All burn arithmetic is **integer-only** (milli-units: 1000 ≡ 1.0×
//! budget burn), so reports are bit-stable across platforms; values are
//! clamped to [`BURN_CLAMP_MILLI`].

use crate::cluster::{Cluster, NodeScore};
use crate::telemetry::{HistogramSnapshot, Telemetry, TelemetrySnapshot};
use crate::trace::TraceId;
use serde_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// Burn rates saturate here: 1000× the error budget. Keeps division-free
/// blowups (zero allowed budget, zero observed throughput) finite and
/// serializable.
pub const BURN_CLAMP_MILLI: u64 = 1_000_000;

/// A declarative objective over the metric taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Objective {
    /// The `percentile`-th percentile of `histogram` must stay at or
    /// below `max_sim_ms`. Budget burn counts the fraction of windowed
    /// observations in buckets whose upper bound exceeds `max_sim_ms`
    /// (bucket granularity: an observation is "bad" when its whole
    /// bucket is) against the allowed `1 - percentile/100`.
    LatencyBelow {
        histogram: String,
        percentile: u64,
        max_sim_ms: u64,
    },
    /// `errors / total` (two counters) must stay below
    /// `max_ratio_milli / 1000`.
    ErrorRateBelow {
        errors: String,
        total: String,
        max_ratio_milli: u64,
    },
    /// `counter` must grow by at least `min_per_sec_milli / 1000` units
    /// per simulated second over the window.
    ThroughputAbove {
        counter: String,
        min_per_sec_milli: u64,
    },
}

impl Objective {
    /// Human-readable form for reports.
    pub fn describe(&self) -> String {
        match self {
            Objective::LatencyBelow {
                histogram,
                percentile,
                max_sim_ms,
            } => format!("{histogram} p{percentile} <= {max_sim_ms} sim-ms"),
            Objective::ErrorRateBelow {
                errors,
                total,
                max_ratio_milli,
            } => format!("{errors}/{total} < {max_ratio_milli}/1000"),
            Objective::ThroughputAbove {
                counter,
                min_per_sec_milli,
            } => format!("{counter} > {min_per_sec_milli}/1000 per sim-s"),
        }
    }
}

/// One service-level objective with its alerting windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSpec {
    /// Stable name, used in alerts and reports.
    pub name: String,
    pub objective: Objective,
    /// Fast window (simulated ms): detects the breach and gates
    /// resolution.
    pub fast_window_ms: u64,
    /// Slow window (simulated ms): guards against flapping on blips.
    pub slow_window_ms: u64,
    /// Both windows must burn at or above this rate (milli-units,
    /// 1000 ≡ consuming exactly the error budget) to fire.
    pub burn_threshold_milli: u64,
}

/// The default objectives for a simulated cluster, sized for the chaos
/// fixtures used across the test suite (hundreds of sim-ms per phase).
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "bus-call-p99".to_string(),
            objective: Objective::LatencyBelow {
                histogram: "bus.call.sim_ms".to_string(),
                percentile: 99,
                max_sim_ms: 64,
            },
            fast_window_ms: 2_000,
            slow_window_ms: 10_000,
            burn_threshold_milli: 2_000,
        },
        SloSpec {
            name: "pipeline-error-rate".to_string(),
            objective: Objective::ErrorRateBelow {
                errors: "pipeline.failed".to_string(),
                total: "pipeline.entities_in".to_string(),
                max_ratio_milli: 100,
            },
            fast_window_ms: 2_000,
            slow_window_ms: 10_000,
            burn_threshold_milli: 1_000,
        },
        SloSpec {
            name: "ingest-throughput".to_string(),
            objective: Objective::ThroughputAbove {
                counter: "ingest.documents".to_string(),
                min_per_sec_milli: 1_000,
            },
            fast_window_ms: 5_000,
            slow_window_ms: 20_000,
            burn_threshold_milli: 1_000,
        },
        SloSpec {
            name: "serving-latency-p95".to_string(),
            objective: Objective::LatencyBelow {
                histogram: "serving.latency.sim_ms".to_string(),
                percentile: 95,
                max_sim_ms: 64,
            },
            fast_window_ms: 2_000,
            slow_window_ms: 10_000,
            burn_threshold_milli: 2_000,
        },
        SloSpec {
            name: "serving-error-rate".to_string(),
            objective: Objective::ErrorRateBelow {
                errors: "serving.errors".to_string(),
                total: "serving.requests".to_string(),
                max_ratio_milli: 100,
            },
            fast_window_ms: 2_000,
            slow_window_ms: 10_000,
            burn_threshold_milli: 1_000,
        },
    ]
}

/// One firing→resolved transition of an SLO's burn-rate alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEvent {
    /// Simulated time of the evaluation that transitioned the alert.
    pub at_sim_ms: u64,
    /// [`SloSpec::name`] of the objective.
    pub slo: String,
    /// `true` when the alert fired, `false` when it resolved.
    pub firing: bool,
    pub fast_burn_milli: u64,
    pub slow_burn_milli: u64,
}

/// Current state of one SLO after the latest evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    pub name: String,
    /// [`Objective::describe`] of the objective.
    pub objective: String,
    pub firing: bool,
    pub fast_burn_milli: u64,
    pub slow_burn_milli: u64,
    /// The measured value over the fast window, in the objective's unit:
    /// sim-ms for latency, milli-ratio for error rate, milli-units/s for
    /// throughput.
    pub measured: u64,
    /// The objective's bound, in the same unit as `measured`.
    pub target: u64,
}

/// Evaluates [`SloSpec`]s over a history of telemetry snapshots taken on
/// the simulated clock. Feed it with [`HealthEngine::observe`] after
/// each top-level operation; it retains just enough history to cover the
/// largest slow window.
#[derive(Debug)]
pub struct HealthEngine {
    slos: Vec<SloSpec>,
    telemetry: Option<Arc<Telemetry>>,
    history: VecDeque<(u64, TelemetrySnapshot)>,
    firing: Vec<bool>,
    alerts: Vec<AlertEvent>,
    status: Vec<SloStatus>,
    last_observed_ms: u64,
}

impl HealthEngine {
    /// An engine evaluating `slos`, not attached to any registry.
    pub fn new(slos: Vec<SloSpec>) -> Self {
        let status = slos
            .iter()
            .map(|s| SloStatus {
                name: s.name.clone(),
                objective: s.objective.describe(),
                firing: false,
                fast_burn_milli: 0,
                slow_burn_milli: 0,
                measured: 0,
                target: target_of(&s.objective),
            })
            .collect();
        HealthEngine {
            firing: vec![false; slos.len()],
            slos,
            telemetry: None,
            history: VecDeque::new(),
            alerts: Vec::new(),
            status,
            last_observed_ms: 0,
        }
    }

    /// An engine that additionally bumps `health.alerts.fired` /
    /// `health.alerts.resolved` counters in `telemetry` on transitions,
    /// so alerts become part of the deterministic snapshot.
    pub fn with_telemetry(slos: Vec<SloSpec>, telemetry: Arc<Telemetry>) -> Self {
        let mut engine = HealthEngine::new(slos);
        engine.telemetry = Some(telemetry);
        engine
    }

    /// The configured objectives.
    pub fn slos(&self) -> &[SloSpec] {
        &self.slos
    }

    /// Every alert transition so far, in evaluation order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Per-SLO state as of the latest [`HealthEngine::observe`].
    pub fn status(&self) -> &[SloStatus] {
        &self.status
    }

    /// Feeds one snapshot taken at simulated time `now_sim_ms`,
    /// re-evaluates every SLO, and returns the alert transitions this
    /// evaluation produced. Observations must arrive in non-decreasing
    /// simulated-time order.
    pub fn observe(&mut self, now_sim_ms: u64, snapshot: &TelemetrySnapshot) -> Vec<AlertEvent> {
        debug_assert!(now_sim_ms >= self.last_observed_ms, "sim time is monotone");
        self.last_observed_ms = now_sim_ms;
        self.history.push_back((now_sim_ms, snapshot.clone()));
        self.prune(now_sim_ms);
        let mut transitions = Vec::new();
        for i in 0..self.slos.len() {
            let slo = &self.slos[i];
            let (fast_burn, measured) =
                self.window_burn(&slo.objective, now_sim_ms, slo.fast_window_ms);
            let (slow_burn, _) = self.window_burn(&slo.objective, now_sim_ms, slo.slow_window_ms);
            let was_firing = self.firing[i];
            let now_firing = if was_firing {
                // resolution is gated on the fast window only: the slow
                // window keeps burning long after the incident ends
                fast_burn >= slo.burn_threshold_milli
            } else {
                fast_burn >= slo.burn_threshold_milli && slow_burn >= slo.burn_threshold_milli
            };
            if now_firing != was_firing {
                let event = AlertEvent {
                    at_sim_ms: now_sim_ms,
                    slo: slo.name.clone(),
                    firing: now_firing,
                    fast_burn_milli: fast_burn,
                    slow_burn_milli: slow_burn,
                };
                if let Some(tele) = &self.telemetry {
                    let counter = if now_firing {
                        "health.alerts.fired"
                    } else {
                        "health.alerts.resolved"
                    };
                    tele.counter(counter).inc();
                }
                self.alerts.push(event.clone());
                transitions.push(event);
                self.firing[i] = now_firing;
            }
            self.status[i] = SloStatus {
                name: slo.name.clone(),
                objective: slo.objective.describe(),
                firing: self.firing[i],
                fast_burn_milli: fast_burn,
                slow_burn_milli: slow_burn,
                measured,
                target: target_of(&slo.objective),
            };
        }
        transitions
    }

    /// Drops history entries no window can reach anymore, always keeping
    /// one entry at or before `now - max_window` as the delta base.
    fn prune(&mut self, now_sim_ms: u64) {
        let max_window = self
            .slos
            .iter()
            .map(|s| s.fast_window_ms.max(s.slow_window_ms))
            .max()
            .unwrap_or(0);
        let horizon = now_sim_ms.saturating_sub(max_window);
        while self.history.len() > 1 && self.history[1].0 <= horizon {
            self.history.pop_front();
        }
    }

    /// The snapshot to diff against for a window ending now: the newest
    /// history entry at or before `now - window`, else the empty
    /// snapshot at t=0 (windows longer than the engine's life measure
    /// "since start").
    fn window_base(&self, now_sim_ms: u64, window_ms: u64) -> (u64, TelemetrySnapshot) {
        let cutoff = now_sim_ms.saturating_sub(window_ms);
        self.history
            .iter()
            .rev()
            .find(|(t, _)| *t <= cutoff)
            .map(|(t, s)| (*t, s.clone()))
            .unwrap_or((0, TelemetrySnapshot::default()))
    }

    /// `(burn_milli, measured)` of one objective over the window ending
    /// at `now_sim_ms`. See [`SloStatus::measured`] for units.
    fn window_burn(&self, objective: &Objective, now_sim_ms: u64, window_ms: u64) -> (u64, u64) {
        let Some((_, current)) = self.history.back() else {
            return (0, 0);
        };
        let (base_t, base) = self.window_base(now_sim_ms, window_ms);
        match objective {
            Objective::LatencyBelow {
                histogram,
                percentile,
                max_sim_ms,
            } => {
                let delta =
                    histogram_delta(current.histogram(histogram), base.histogram(histogram));
                let total = delta.count;
                let bad: u64 = delta
                    .buckets
                    .iter()
                    .filter(|(le, _)| le.is_none_or(|b| b > *max_sim_ms))
                    .map(|(_, c)| c)
                    .sum();
                let measured = delta.percentile(*percentile as f64);
                if total == 0 {
                    return (0, measured);
                }
                // burn = (bad/total) / ((100-p)/100), in milli-units
                let allowed_pct = 100u64.saturating_sub(*percentile);
                let denom = total as u128 * allowed_pct as u128;
                // denom == 0 means p == 100: any bad observation is an
                // instant full burn
                let burn = (bad as u128 * 100_000)
                    .checked_div(denom)
                    .unwrap_or(if bad > 0 { BURN_CLAMP_MILLI as u128 } else { 0 });
                (clamp_milli(burn), measured)
            }
            Objective::ErrorRateBelow {
                errors,
                total,
                max_ratio_milli,
            } => {
                let err = current.counter(errors).saturating_sub(base.counter(errors));
                let tot = current.counter(total).saturating_sub(base.counter(total));
                if tot == 0 {
                    return (0, 0);
                }
                let ratio_milli = (err as u128 * 1_000 / tot as u128) as u64;
                let burn = if *max_ratio_milli == 0 {
                    if err > 0 {
                        BURN_CLAMP_MILLI as u128
                    } else {
                        0
                    }
                } else {
                    err as u128 * 1_000_000 / (tot as u128 * *max_ratio_milli as u128)
                };
                (clamp_milli(burn), ratio_milli)
            }
            Objective::ThroughputAbove {
                counter,
                min_per_sec_milli,
            } => {
                let grew = current
                    .counter(counter)
                    .saturating_sub(base.counter(counter));
                let elapsed_ms = now_sim_ms.saturating_sub(base_t);
                if elapsed_ms == 0 {
                    return (0, 0);
                }
                // units/sim-s in milli: grew / (elapsed/1000) * 1000
                let observed_milli = (grew as u128 * 1_000_000 / elapsed_ms as u128) as u64;
                let burn = if observed_milli == 0 {
                    if *min_per_sec_milli > 0 {
                        BURN_CLAMP_MILLI as u128
                    } else {
                        0
                    }
                } else {
                    *min_per_sec_milli as u128 * 1_000 / observed_milli as u128
                };
                (clamp_milli(burn), observed_milli)
            }
        }
    }
}

fn clamp_milli(burn: u128) -> u64 {
    burn.min(BURN_CLAMP_MILLI as u128) as u64
}

fn target_of(objective: &Objective) -> u64 {
    match objective {
        Objective::LatencyBelow { max_sim_ms, .. } => *max_sim_ms,
        Objective::ErrorRateBelow {
            max_ratio_milli, ..
        } => *max_ratio_milli,
        Objective::ThroughputAbove {
            min_per_sec_milli, ..
        } => *min_per_sec_milli,
    }
}

/// The window delta of a histogram: counts/sums/buckets subtracted
/// bucket-by-bucket. `min`/`max` keep the whole-run extremes (they are
/// not windowable), so windowed percentiles clamp against the global
/// max — documented approximation.
fn histogram_delta(
    current: Option<&HistogramSnapshot>,
    base: Option<&HistogramSnapshot>,
) -> HistogramSnapshot {
    let Some(current) = current else {
        return HistogramSnapshot::default();
    };
    let base_buckets: BTreeMap<Option<u64>, u64> = base
        .map(|b| b.buckets.iter().cloned().collect())
        .unwrap_or_default();
    let (base_count, base_sum) = base.map(|b| (b.count, b.sum)).unwrap_or((0, 0));
    HistogramSnapshot {
        count: current.count.saturating_sub(base_count),
        sum: current.sum.saturating_sub(base_sum),
        min: current.min,
        max: current.max,
        buckets: current
            .buckets
            .iter()
            .filter_map(|(le, c)| {
                let d = c.saturating_sub(base_buckets.get(le).copied().unwrap_or(0));
                (d > 0).then_some((*le, d))
            })
            .collect(),
        exemplars: Vec::new(),
    }
}

/// One worst-exemplar reference in a [`DoctorReport`], resolved against
/// the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarRef {
    /// The histogram the exemplar came from.
    pub histogram: String,
    /// Observed value (the histogram's unit, typically sim-ms).
    pub value: u64,
    /// Raw trace id; dump with `wfsm trace` while `live`.
    pub trace: u64,
    /// Whether the flight recorder still retains spans of this trace.
    pub live: bool,
}

/// The full operator report behind `wfsm doctor`: SLO status, the alert
/// log, worst exemplars, and the per-node scoreboard. Same seed ⇒
/// byte-identical [`DoctorReport::to_json_string`] output.
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorReport {
    pub at_sim_ms: u64,
    pub slos: Vec<SloStatus>,
    pub alerts: Vec<AlertEvent>,
    pub exemplars: Vec<ExemplarRef>,
    pub nodes: Vec<NodeScore>,
}

impl DoctorReport {
    /// Assembles the report from a cluster and its health engine at
    /// simulated time `at_sim_ms`: snapshots the metrics, picks each
    /// histogram's worst exemplar, and resolves it against the flight
    /// recorder.
    pub fn build(cluster: &Cluster, engine: &HealthEngine, at_sim_ms: u64) -> DoctorReport {
        let snapshot = cluster.metrics_snapshot();
        let recorder = cluster.telemetry().recorder();
        let mut exemplars = Vec::new();
        for (name, hist) in &snapshot.histograms {
            if let Some(worst) = hist.worst_exemplar() {
                exemplars.push(ExemplarRef {
                    histogram: name.clone(),
                    value: worst.value,
                    trace: worst.trace,
                    live: recorder.contains_trace(TraceId(worst.trace)),
                });
            }
        }
        DoctorReport {
            at_sim_ms,
            slos: engine.status().to_vec(),
            alerts: engine.alerts().to_vec(),
            exemplars,
            nodes: cluster.scoreboard(),
        }
    }

    /// Canonical JSON tree (BTreeMap-sorted keys, arrays in report
    /// order).
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("at_sim_ms".to_string(), Value::from(self.at_sim_ms));
        root.insert(
            "slos".to_string(),
            Value::Array(
                self.slos
                    .iter()
                    .map(|s| {
                        let mut o = BTreeMap::new();
                        o.insert("name".to_string(), Value::from(s.name.clone()));
                        o.insert("objective".to_string(), Value::from(s.objective.clone()));
                        o.insert("firing".to_string(), Value::from(s.firing));
                        o.insert(
                            "fast_burn_milli".to_string(),
                            Value::from(s.fast_burn_milli),
                        );
                        o.insert(
                            "slow_burn_milli".to_string(),
                            Value::from(s.slow_burn_milli),
                        );
                        o.insert("measured".to_string(), Value::from(s.measured));
                        o.insert("target".to_string(), Value::from(s.target));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "alerts".to_string(),
            Value::Array(
                self.alerts
                    .iter()
                    .map(|a| {
                        let mut o = BTreeMap::new();
                        o.insert("at_sim_ms".to_string(), Value::from(a.at_sim_ms));
                        o.insert("slo".to_string(), Value::from(a.slo.clone()));
                        o.insert("firing".to_string(), Value::from(a.firing));
                        o.insert(
                            "fast_burn_milli".to_string(),
                            Value::from(a.fast_burn_milli),
                        );
                        o.insert(
                            "slow_burn_milli".to_string(),
                            Value::from(a.slow_burn_milli),
                        );
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "exemplars".to_string(),
            Value::Array(
                self.exemplars
                    .iter()
                    .map(|e| {
                        let mut o = BTreeMap::new();
                        o.insert("histogram".to_string(), Value::from(e.histogram.clone()));
                        o.insert("value".to_string(), Value::from(e.value));
                        o.insert("trace".to_string(), Value::from(e.trace));
                        o.insert("live".to_string(), Value::from(e.live));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "nodes".to_string(),
            Value::Array(
                self.nodes
                    .iter()
                    .map(|n| {
                        let mut o = BTreeMap::new();
                        o.insert("node".to_string(), Value::from(n.node));
                        o.insert("model".to_string(), Value::from(n.model.clone()));
                        o.insert("health".to_string(), Value::from(format!("{:?}", n.health)));
                        o.insert("runs".to_string(), Value::from(n.runs));
                        o.insert("processed".to_string(), Value::from(n.processed));
                        o.insert("failed".to_string(), Value::from(n.failed));
                        o.insert("retries".to_string(), Value::from(n.retries));
                        o.insert("faults".to_string(), Value::from(n.faults));
                        o.insert("failovers".to_string(), Value::from(n.failovers));
                        o.insert("skipped".to_string(), Value::from(n.skipped));
                        o.insert("sim_ms".to_string(), Value::from(n.sim_ms));
                        o.insert(
                            "last_error".to_string(),
                            n.last_error.clone().map(Value::from).unwrap_or(Value::Null),
                        );
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        Value::Object(root)
    }

    /// Pretty-printed canonical JSON (the `wfsm doctor --format json`
    /// output).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("Value renders infallibly")
    }

    /// The human-readable report (the `wfsm doctor` default output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "DOCTOR REPORT @ {} sim-ms", self.at_sim_ms);
        out.push_str("SLOS\n");
        let _ = writeln!(
            out,
            "  {:<22} {:<8} {:>10} {:>10} {:>9} {:>9}  objective",
            "name", "state", "fast-burn", "slow-burn", "measured", "target"
        );
        for s in &self.slos {
            let _ = writeln!(
                out,
                "  {:<22} {:<8} {:>10} {:>10} {:>9} {:>9}  {}",
                s.name,
                if s.firing { "FIRING" } else { "ok" },
                s.fast_burn_milli,
                s.slow_burn_milli,
                s.measured,
                s.target,
                s.objective
            );
        }
        out.push_str("ALERTS\n");
        if self.alerts.is_empty() {
            out.push_str("  (none)\n");
        }
        for a in &self.alerts {
            let _ = writeln!(
                out,
                "  @{:<8} {:<22} {:<8} fast={} slow={}",
                a.at_sim_ms,
                a.slo,
                if a.firing { "FIRED" } else { "RESOLVED" },
                a.fast_burn_milli,
                a.slow_burn_milli
            );
        }
        out.push_str("EXEMPLARS (worst per histogram)\n");
        if self.exemplars.is_empty() {
            out.push_str("  (none)\n");
        }
        for e in &self.exemplars {
            let _ = writeln!(
                out,
                "  {:<44} value={:<8} trace={:<6} {}",
                e.histogram,
                e.value,
                e.trace,
                if e.live { "live" } else { "evicted" }
            );
        }
        out.push_str(&render_scoreboard(&self.nodes));
        out
    }
}

/// The per-node scoreboard table shared by `wfsm doctor` and `wfsm top`.
pub fn render_scoreboard(nodes: &[NodeScore]) -> String {
    let mut out = String::new();
    out.push_str("NODES\n");
    let _ = writeln!(
        out,
        "  {:<5} {:<6} {:<9} {:>5} {:>9} {:>7} {:>8} {:>7} {:>9} {:>8} {:>9}  last-error",
        "node",
        "model",
        "health",
        "runs",
        "processed",
        "failed",
        "retries",
        "faults",
        "failovers",
        "skipped",
        "avg-ms"
    );
    for n in nodes {
        let avg_ms = n.sim_ms / n.runs.max(1);
        let _ = writeln!(
            out,
            "  {:<5} {:<6} {:<9} {:>5} {:>9} {:>7} {:>8} {:>7} {:>9} {:>8} {:>9}  {}",
            n.node,
            n.model,
            format!("{:?}", n.health),
            n.runs,
            n.processed,
            n.failed,
            n.retries,
            n.faults,
            n.failovers,
            n.skipped,
            avg_ms,
            n.last_error.as_deref().unwrap_or("-")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)]) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        for (k, v) in counters {
            s.counters.insert((*k).to_string(), *v);
        }
        s
    }

    fn error_rate_slo(fast: u64, slow: u64, threshold: u64) -> SloSpec {
        SloSpec {
            name: "errors".to_string(),
            objective: Objective::ErrorRateBelow {
                errors: "failed".to_string(),
                total: "total".to_string(),
                max_ratio_milli: 100, // 10%
            },
            fast_window_ms: fast,
            slow_window_ms: slow,
            burn_threshold_milli: threshold,
        }
    }

    #[test]
    fn alert_fires_and_resolves_on_fast_window_recovery() {
        let mut engine = HealthEngine::new(vec![error_rate_slo(1_000, 4_000, 1_000)]);
        // 50% errors from the start: both windows burn 5x the 10% budget
        let dirty = snap(&[("failed", 50), ("total", 100)]);
        let events = engine.observe(500, &dirty);
        assert_eq!(events.len(), 1);
        assert!(events[0].firing);
        assert_eq!(events[0].fast_burn_milli, 5_000);
        assert!(engine.status()[0].firing);
        // still dirty inside the fast window: no new transition
        assert!(engine.observe(1_000, &dirty).is_empty());
        // errors stop: once the fast window only sees clean deltas, the
        // alert resolves (even though the slow window still burns)
        let events = engine.observe(2_200, &snap(&[("failed", 50), ("total", 1_100)]));
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(!events[0].firing, "fast-window recovery resolves");
        assert_eq!(engine.alerts().len(), 2);
    }

    #[test]
    fn slow_window_guards_against_blips() {
        // a burst that is loud in the fast window but quiet in the slow
        // one must not fire
        let mut engine = HealthEngine::new(vec![error_rate_slo(500, 10_000, 1_000)]);
        let _ = engine.observe(0, &snap(&[("failed", 0), ("total", 10_000)]));
        let _ = engine.observe(9_000, &snap(&[("failed", 0), ("total", 20_000)]));
        // burst: 30 of 60 new entities fail inside the fast window, but
        // over the slow window that is 30/20_060 ≈ 0.15% << 10%
        let events = engine.observe(9_500, &snap(&[("failed", 30), ("total", 20_060)]));
        assert!(events.is_empty(), "slow window vetoes the blip: {events:?}");
        assert!(!engine.status()[0].firing);
        assert!(engine.status()[0].fast_burn_milli >= 1_000);
        assert!(engine.status()[0].slow_burn_milli < 1_000);
    }

    #[test]
    fn latency_burn_counts_bad_buckets() {
        let hist = HistogramSnapshot {
            count: 100,
            sum: 10_000,
            min: 1,
            max: 500,
            buckets: vec![(Some(64), 90), (Some(512), 10)],
            exemplars: Vec::new(),
        };
        let mut s = TelemetrySnapshot::default();
        s.histograms.insert("lat".to_string(), hist.clone());
        let slo = SloSpec {
            name: "p99".to_string(),
            objective: Objective::LatencyBelow {
                histogram: "lat".to_string(),
                percentile: 99,
                max_sim_ms: 64,
            },
            fast_window_ms: 1_000,
            slow_window_ms: 1_000,
            burn_threshold_milli: 2_000,
        };
        let mut engine = HealthEngine::new(vec![slo]);
        let events = engine.observe(100, &s);
        // 10% over the 64ms bound against a 1% budget: burn 10x
        assert_eq!(engine.status()[0].fast_burn_milli, 10_000);
        assert_eq!(events.len(), 1);
        assert!(events[0].firing);
        assert_eq!(engine.status()[0].measured, 500, "p99 in the 512 bucket");
        // an identical later snapshot means zero windowed observations
        // once the window slides past the burst: the alert resolves
        let events = engine.observe(1_200, &s);
        assert_eq!(events.len(), 1);
        assert!(!events[0].firing, "quiet window resolves the alert");
    }

    #[test]
    fn throughput_burn_clamps_when_stalled() {
        let slo = SloSpec {
            name: "ingest".to_string(),
            objective: Objective::ThroughputAbove {
                counter: "docs".to_string(),
                min_per_sec_milli: 1_000,
            },
            fast_window_ms: 1_000,
            slow_window_ms: 2_000,
            burn_threshold_milli: 1_000,
        };
        let mut engine = HealthEngine::new(vec![slo]);
        let _ = engine.observe(1_000, &snap(&[("docs", 10)]));
        // healthy: 10 docs over the first second => 10x the floor
        assert_eq!(engine.status()[0].measured, 10_000);
        assert!(!engine.status()[0].firing);
        // stalled: no growth at all => clamped burn, fires
        let _ = engine.observe(4_000, &snap(&[("docs", 10)]));
        let events_burn = engine.status()[0].fast_burn_milli;
        assert_eq!(events_burn, BURN_CLAMP_MILLI);
        assert!(engine.status()[0].firing);
    }

    #[test]
    fn attached_telemetry_counts_transitions() {
        let tele = Telemetry::new();
        let mut engine = HealthEngine::with_telemetry(
            vec![error_rate_slo(1_000, 2_000, 1_000)],
            Arc::clone(&tele),
        );
        let _ = engine.observe(100, &snap(&[("failed", 50), ("total", 100)]));
        let clean = snap(&[("failed", 50), ("total", 2_000)]);
        let _ = engine.observe(1_000, &clean);
        let _ = engine.observe(2_500, &clean);
        let s = tele.snapshot();
        assert_eq!(s.counter("health.alerts.fired"), 1);
        assert_eq!(s.counter("health.alerts.resolved"), 1);
    }

    #[test]
    fn history_is_pruned_to_the_slow_window() {
        let mut engine = HealthEngine::new(vec![error_rate_slo(1_000, 2_000, 1_000)]);
        for t in 0..50u64 {
            let _ = engine.observe(t * 500, &snap(&[("failed", t), ("total", t * 10)]));
        }
        assert!(
            engine.history.len() <= 7,
            "history bounded by the slow window: {}",
            engine.history.len()
        );
    }
}

//! Continuous profiling from trace spans: fold [`FlightRecorder`]
//! records into a deterministic self/total-time profile tree.
//!
//! Every [`SpanRecord`] carries its stable `/`-joined `path` from the
//! trace root, so the fold is a pure string aggregation: records with the
//! same path merge into one node (count + total simulated ms), nodes nest
//! by path segments, and `self` time is a node's total minus its direct
//! children's totals (saturating — parallel fan-out parents whose
//! children overlap in simulated time get self 0 rather than negative).
//!
//! Because the fold keys on paths, not span ids or ring positions, the
//! exported profile is byte-identical across same-seed runs even when the
//! flight recorder evicted spans (as long as the retained *set* is the
//! same, which holds for single-threaded workloads like the serving
//! loop). Exports:
//!
//! - collapsed stacks (`a;b;c <self_ms>` lines, flamegraph.pl-compatible,
//!   sorted, self > 0 only),
//! - an indented text tree with total/self/count per node,
//! - canonical JSON,
//! - top-N hotspot ranking by self time.

use crate::trace::{FlightRecorder, SpanRecord};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One node of the profile tree: all spans that shared a path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Last path segment (`shard:2`).
    pub name: String,
    /// Full `/`-joined path from the trace root.
    pub path: String,
    /// Spans folded into this node.
    pub count: u64,
    /// Summed span durations, simulated ms.
    pub total_ms: u64,
    /// Total minus direct children's totals (saturating at 0).
    pub self_ms: u64,
    /// Children keyed by name.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    fn compute_self(&mut self) {
        let child_total: u64 = self.children.values().map(|c| c.total_ms).sum();
        self.self_ms = self.total_ms.saturating_sub(child_total);
        for child in self.children.values_mut() {
            child.compute_self();
        }
    }

    /// Nodes in this subtree, including self.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .values()
            .map(ProfileNode::node_count)
            .sum::<usize>()
    }
}

/// One ranked hotspot: a path and its self time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    pub path: String,
    pub self_ms: u64,
    pub total_ms: u64,
    pub count: u64,
}

/// A folded profile: root nodes (one per top-level span name) plus
/// whole-profile aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    pub roots: BTreeMap<String, ProfileNode>,
    /// Spans folded in.
    pub spans: u64,
    /// Summed root-span time, simulated ms. With no eviction this equals
    /// the sum of every recorded root span's duration, panicked shards
    /// included (their Drop guard records accrued time).
    pub total_ms: u64,
}

impl Profile {
    /// Folds span records (any order) into a profile.
    pub fn from_records(records: &[SpanRecord]) -> Profile {
        let mut profile = Profile::default();
        for record in records {
            profile.spans += 1;
            let mut segments = record.path.split('/');
            let Some(first) = segments.next() else {
                continue;
            };
            let mut node = profile
                .roots
                .entry(first.to_string())
                .or_insert_with(|| ProfileNode {
                    name: first.to_string(),
                    path: first.to_string(),
                    ..ProfileNode::default()
                });
            for segment in segments {
                let path = format!("{}/{}", node.path, segment);
                node = node
                    .children
                    .entry(segment.to_string())
                    .or_insert_with(|| ProfileNode {
                        name: segment.to_string(),
                        path,
                        ..ProfileNode::default()
                    });
            }
            node.count += 1;
            node.total_ms += record.duration_sim_ms;
        }
        for root in profile.roots.values_mut() {
            root.compute_self();
        }
        profile.total_ms = profile.roots.values().map(|r| r.total_ms).sum();
        profile
    }

    /// Folds the spans of the recorder's last `n` traces.
    pub fn from_recorder(recorder: &FlightRecorder, last: usize) -> Profile {
        let ids: Vec<_> = recorder.trace_ids();
        let keep: std::collections::BTreeSet<_> = ids[ids.len().saturating_sub(last)..]
            .iter()
            .copied()
            .collect();
        let records: Vec<SpanRecord> = recorder
            .records()
            .into_iter()
            .filter(|r| keep.contains(&r.trace))
            .collect();
        Profile::from_records(&records)
    }

    /// Sum of leaf-node self time: simulated ms attributed to a named
    /// bottom-level stage.
    pub fn attributed_ms(&self) -> u64 {
        fn walk(node: &ProfileNode, acc: &mut u64) {
            if node.children.is_empty() {
                *acc += node.self_ms;
            }
            for child in node.children.values() {
                walk(child, acc);
            }
        }
        let mut acc = 0;
        for root in self.roots.values() {
            walk(root, &mut acc);
        }
        acc
    }

    /// Fraction of total time attributed to leaf stages, milli-units
    /// (1000 = 100%). 1000 when the profile is empty.
    pub fn attributed_milli(&self) -> u64 {
        if self.total_ms == 0 {
            return 1000;
        }
        self.attributed_ms() * 1000 / self.total_ms
    }

    /// The `n` hottest paths by self time (ties broken by path).
    pub fn hotspots(&self, n: usize) -> Vec<Hotspot> {
        let mut all: Vec<Hotspot> = Vec::new();
        fn walk(node: &ProfileNode, acc: &mut Vec<Hotspot>) {
            acc.push(Hotspot {
                path: node.path.clone(),
                self_ms: node.self_ms,
                total_ms: node.total_ms,
                count: node.count,
            });
            for child in node.children.values() {
                walk(child, acc);
            }
        }
        for root in self.roots.values() {
            walk(root, &mut all);
        }
        all.sort_by(|a, b| b.self_ms.cmp(&a.self_ms).then(a.path.cmp(&b.path)));
        all.truncate(n);
        all
    }

    /// Collapsed-stack export: one `seg;seg;seg <self_ms>` line per node
    /// with self > 0, lexicographically sorted — feed straight into
    /// `flamegraph.pl`.
    pub fn to_collapsed(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        fn walk(node: &ProfileNode, lines: &mut Vec<String>) {
            if node.self_ms > 0 {
                lines.push(format!("{} {}", node.path.replace('/', ";"), node.self_ms));
            }
            for child in node.children.values() {
                walk(child, lines);
            }
        }
        for root in self.roots.values() {
            walk(root, &mut lines);
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Indented text tree: total/self/count per node.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "PROFILE  spans {}  total {} sim-ms  attributed {}.{:01}%",
            self.spans,
            self.total_ms,
            self.attributed_milli() / 10,
            self.attributed_milli() % 10,
        );
        fn walk(node: &ProfileNode, depth: usize, out: &mut String) {
            let _ = writeln!(
                out,
                "{:indent$}{:<32} total {:>8}  self {:>8}  n {:>6}",
                "",
                node.name,
                node.total_ms,
                node.self_ms,
                node.count,
                indent = depth * 2,
            );
            for child in node.children.values() {
                walk(child, depth + 1, out);
            }
        }
        for root in self.roots.values() {
            walk(root, 0, &mut out);
        }
        out
    }

    /// Canonical JSON export of the tree plus aggregates.
    pub fn to_json(&self) -> Value {
        fn node_json(node: &ProfileNode) -> Value {
            let mut o = BTreeMap::new();
            o.insert("name".to_string(), Value::from(node.name.as_str()));
            o.insert("total_ms".to_string(), Value::from(node.total_ms));
            o.insert("self_ms".to_string(), Value::from(node.self_ms));
            o.insert("count".to_string(), Value::from(node.count));
            o.insert(
                "children".to_string(),
                Value::Array(node.children.values().map(node_json).collect()),
            );
            Value::Object(o.into_iter().collect())
        }
        let mut root = BTreeMap::new();
        root.insert("spans".to_string(), Value::from(self.spans));
        root.insert("total_ms".to_string(), Value::from(self.total_ms));
        root.insert(
            "attributed_milli".to_string(),
            Value::from(self.attributed_milli()),
        );
        root.insert(
            "roots".to_string(),
            Value::Array(self.roots.values().map(node_json).collect()),
        );
        Value::Object(root.into_iter().collect())
    }

    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("Value renders infallibly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    fn workload(telemetry: &std::sync::Arc<Telemetry>) {
        let mut root = telemetry.trace_root("op");
        let mut a = root.child("stage_a");
        a.advance(10);
        a.finish();
        root.advance(10);
        let mut b = root.child("stage_b");
        let mut inner = b.child("inner");
        inner.advance(4);
        inner.finish();
        b.advance(4);
        b.advance(3); // 3 ms of b's own time
        b.finish();
        root.advance(7);
        root.finish();
    }

    #[test]
    fn folds_spans_by_path() {
        let telemetry = Telemetry::new();
        workload(&telemetry);
        workload(&telemetry);
        let profile = Profile::from_records(&telemetry.recorder().records());
        assert_eq!(profile.spans, 8);
        assert_eq!(profile.total_ms, 34, "two 17ms roots");
        let op = &profile.roots["op"];
        assert_eq!(op.count, 2);
        assert_eq!(op.self_ms, 0, "fully covered by stages");
        assert_eq!(op.children["stage_a"].self_ms, 20);
        let b = &op.children["stage_b"];
        assert_eq!(b.total_ms, 14);
        assert_eq!(b.self_ms, 6, "3 own ms per run");
        assert_eq!(b.children["inner"].self_ms, 8);
    }

    #[test]
    fn collapsed_export_is_sorted_and_stable() {
        let telemetry = Telemetry::new();
        workload(&telemetry);
        let profile = Profile::from_records(&telemetry.recorder().records());
        let collapsed = profile.to_collapsed();
        assert_eq!(
            collapsed,
            "op;stage_a 10\nop;stage_b 3\nop;stage_b;inner 4\n"
        );
        assert_eq!(collapsed, profile.to_collapsed(), "re-export identical");
    }

    #[test]
    fn hotspots_rank_by_self_time() {
        let telemetry = Telemetry::new();
        workload(&telemetry);
        let profile = Profile::from_records(&telemetry.recorder().records());
        let top = profile.hotspots(2);
        assert_eq!(top[0].path, "op/stage_a");
        assert_eq!(top[0].self_ms, 10);
        assert_eq!(top[1].path, "op/stage_b/inner");
    }

    #[test]
    fn attribution_counts_leaf_self_time() {
        let telemetry = Telemetry::new();
        workload(&telemetry);
        let profile = Profile::from_records(&telemetry.recorder().records());
        // leaves: stage_a (10) + inner (4); stage_b keeps 3 interior ms
        assert_eq!(profile.attributed_ms(), 14);
        assert_eq!(profile.attributed_milli(), 14 * 1000 / 17);
    }

    #[test]
    fn orphaned_children_fold_under_their_recorded_path() {
        // an evicted parent leaves the child's path intact, so the fold
        // still nests it (with zero recorded parent time)
        let telemetry = Telemetry::with_trace_capacity(1);
        let mut root = telemetry.trace_root("op");
        let mut a = root.child("stage_a");
        a.advance(5);
        a.finish();
        root.advance(5);
        root.finish(); // evicts stage_a? capacity 1: root push evicts a
        let records = telemetry.recorder().records();
        assert_eq!(records.len(), 1);
        let profile = Profile::from_records(&records);
        assert_eq!(profile.roots["op"].total_ms, 5);
        let empty = Profile::from_records(&[]);
        assert_eq!(empty.total_ms, 0);
        assert_eq!(empty.attributed_milli(), 1000);
        assert_eq!(empty.to_collapsed(), "");
    }

    #[test]
    fn last_n_traces_filter() {
        let telemetry = Telemetry::new();
        workload(&telemetry);
        workload(&telemetry);
        let all = Profile::from_recorder(telemetry.recorder(), 10);
        let last = Profile::from_recorder(telemetry.recorder(), 1);
        assert_eq!(all.roots["op"].count, 2);
        assert_eq!(last.roots["op"].count, 1);
        assert_eq!(last.total_ms, 17);
    }
}

//! Near-duplicate detection — one of the paper's example corpus-level
//! miners ("Examples of corpus-level miners are computing aggregate
//! statistics, duplicate detection, trending, and clustering").
//!
//! Pipeline: word 4-shingles per document → MinHash signatures (k
//! independent hash permutations, built from scratch) → LSH banding to
//! propose candidate pairs → exact Jaccard verification → union-find
//! duplicate clusters. Detected duplicates get `duplicate-of` metadata
//! pointing at the cluster's lowest id.

use crate::entity::Entity;
use crate::miner::CorpusMiner;
use crate::store::DataStore;
use std::collections::{HashMap, HashSet};
use wf_types::{DocId, Result};

/// Configuration for the duplicate detector.
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Words per shingle.
    pub shingle_size: usize,
    /// MinHash signature length (must be divisible by `bands`).
    pub num_hashes: usize,
    /// LSH bands (more bands → more candidate pairs).
    pub bands: usize,
    /// Exact-Jaccard threshold for a verified duplicate pair.
    pub jaccard_threshold: f64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            shingle_size: 4,
            num_hashes: 64,
            bands: 16,
            jaccard_threshold: 0.8,
        }
    }
}

/// Word shingles of a lower-cased document.
fn shingles(text: &str, size: usize) -> HashSet<u64> {
    let words: Vec<String> = text
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect();
    let mut out = HashSet::new();
    if words.len() < size {
        if !words.is_empty() {
            out.insert(fnv1a(words.join(" ").as_bytes()));
        }
        return out;
    }
    for window in words.windows(size) {
        out.insert(fnv1a(window.join(" ").as_bytes()));
    }
    out
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A cheap parameterized mixer standing in for k independent hash
/// functions: multiply-xor-shift with per-function odd constants.
fn mix(value: u64, seed: u64) -> u64 {
    let mut x = value ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// MinHash signature of a shingle set.
fn minhash(shingle_set: &HashSet<u64>, num_hashes: usize) -> Vec<u64> {
    (0..num_hashes as u64)
        .map(|seed| {
            shingle_set
                .iter()
                .map(|&s| mix(s, seed + 1))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect()
}

/// Exact Jaccard similarity of two shingle sets.
fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    if union == 0 {
        0.0
    } else {
        intersection as f64 / union as f64
    }
}

/// Union-find with path compression.
struct UnionFind {
    parent: HashMap<DocId, DocId>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, x: DocId) -> DocId {
        let p = *self.parent.get(&x).unwrap_or(&x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: DocId, b: DocId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // keep the lower id as the representative
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }
}

/// Detected duplicate clusters: representative id → members (including the
/// representative), ascending.
pub type DuplicateClusters = Vec<(DocId, Vec<DocId>)>;

/// Finds near-duplicate clusters across the store.
pub fn find_duplicates(store: &DataStore, config: &DedupConfig) -> DuplicateClusters {
    assert!(
        config.num_hashes.is_multiple_of(config.bands),
        "num_hashes must be divisible by bands"
    );
    let rows = config.num_hashes / config.bands;
    // shingle sets and signatures
    let mut sets: Vec<(DocId, HashSet<u64>)> = Vec::new();
    store.for_each(|entity| {
        sets.push((entity.id, shingles(&entity.text, config.shingle_size)));
    });
    let signatures: Vec<Vec<u64>> = sets
        .iter()
        .map(|(_, s)| minhash(s, config.num_hashes))
        .collect();
    // LSH banding: bucket by (band index, band hash)
    let mut buckets: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
    for (doc_idx, signature) in signatures.iter().enumerate() {
        for band in 0..config.bands {
            let slice = &signature[band * rows..(band + 1) * rows];
            let mut h = 0xcbf29ce484222325u64;
            for &v in slice {
                h = mix(h ^ v, band as u64 + 7);
            }
            buckets.entry((band, h)).or_default().push(doc_idx);
        }
    }
    // verify candidate pairs
    let mut verified: HashSet<(usize, usize)> = HashSet::new();
    let mut uf = UnionFind::new();
    for bucket in buckets.values() {
        for i in 0..bucket.len() {
            for j in i + 1..bucket.len() {
                let pair = (bucket[i].min(bucket[j]), bucket[i].max(bucket[j]));
                if !verified.insert(pair) {
                    continue;
                }
                if jaccard(&sets[pair.0].1, &sets[pair.1].1) >= config.jaccard_threshold {
                    uf.union(sets[pair.0].0, sets[pair.1].0);
                }
            }
        }
    }
    // collect clusters with ≥ 2 members
    let mut clusters: HashMap<DocId, Vec<DocId>> = HashMap::new();
    for (doc, _) in &sets {
        let root = uf.find(*doc);
        clusters.entry(root).or_default().push(*doc);
    }
    let mut out: DuplicateClusters = clusters
        .into_iter()
        .filter(|(_, members)| members.len() > 1)
        .map(|(root, mut members)| {
            members.sort();
            (root, members)
        })
        .collect();
    out.sort_by_key(|(root, _)| *root);
    out
}

/// The corpus-level miner wrapper: marks every non-representative member
/// of a duplicate cluster with `duplicate-of` metadata.
#[derive(Default)]
pub struct DuplicateDetector {
    config: DedupConfig,
}

impl DuplicateDetector {
    pub fn new(config: DedupConfig) -> Self {
        DuplicateDetector { config }
    }
}

impl CorpusMiner for DuplicateDetector {
    fn name(&self) -> &str {
        "duplicate-detector"
    }

    fn run(&self, store: &DataStore) -> Result<()> {
        for (representative, members) in find_duplicates(store, &self.config) {
            for member in members {
                if member == representative {
                    continue;
                }
                store.update(member, |entity: &mut Entity| {
                    entity
                        .metadata
                        .insert("duplicate-of".into(), representative.to_string());
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SourceKind;

    fn seed(texts: &[&str]) -> DataStore {
        let store = DataStore::new(2).unwrap();
        for (i, t) in texts.iter().enumerate() {
            store.insert(Entity::new(format!("uri://{i}"), SourceKind::Web, *t));
        }
        store
    }

    const PAGE: &str = "The quick brown fox jumps over the lazy dog while the \
                        band plays a slow waltz in the old town square tonight.";

    #[test]
    fn exact_duplicates_cluster() {
        let store = seed(&[
            PAGE,
            PAGE,
            "Entirely different content about cameras and lenses.",
        ]);
        let clusters = find_duplicates(&store, &DedupConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].1, vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn near_duplicates_cluster() {
        let near = PAGE.replace("tonight", "this evening");
        let store = seed(&[PAGE, &near, "Unrelated text about drilling rigs offshore."]);
        let clusters = find_duplicates(
            &store,
            &DedupConfig {
                jaccard_threshold: 0.6,
                ..DedupConfig::default()
            },
        );
        assert_eq!(clusters.len(), 1, "{clusters:?}");
        assert_eq!(clusters[0].1.len(), 2);
    }

    #[test]
    fn distinct_documents_do_not_cluster() {
        let store = seed(&[
            "The camera takes excellent pictures in bright daylight conditions.",
            "Oil prices rose sharply after the refinery outage last week.",
            "The symphony's final movement builds to a remarkable close.",
        ]);
        assert!(find_duplicates(&store, &DedupConfig::default()).is_empty());
    }

    #[test]
    fn miner_marks_non_representatives() {
        let store = seed(&[PAGE, PAGE, PAGE]);
        DuplicateDetector::default().run(&store).unwrap();
        assert!(!store
            .get(DocId(0))
            .unwrap()
            .metadata
            .contains_key("duplicate-of"));
        for i in [1, 2] {
            assert_eq!(
                store
                    .get(DocId(i))
                    .unwrap()
                    .metadata
                    .get("duplicate-of")
                    .unwrap(),
                "doc:0"
            );
        }
    }

    #[test]
    fn jaccard_properties() {
        let a: HashSet<u64> = [1, 2, 3].into_iter().collect();
        let b: HashSet<u64> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&HashSet::new(), &HashSet::new()), 1.0);
        assert_eq!(jaccard(&a, &HashSet::new()), 0.0);
    }

    #[test]
    fn minhash_similarity_tracks_jaccard() {
        let a = shingles(PAGE, 4);
        let near_text = PAGE.replace("tonight", "this evening");
        let b = shingles(&near_text, 4);
        let sig_a = minhash(&a, 128);
        let sig_b = minhash(&b, 128);
        let agree = sig_a.iter().zip(&sig_b).filter(|(x, y)| x == y).count() as f64 / 128.0;
        let true_jaccard = jaccard(&a, &b);
        assert!(
            (agree - true_jaccard).abs() < 0.2,
            "estimate {agree} vs true {true_jaccard}"
        );
    }

    #[test]
    fn short_documents_do_not_panic() {
        let store = seed(&["one", "two words", ""]);
        let _ = find_duplicates(&store, &DedupConfig::default());
    }
}

//! Template (boilerplate) detection — the paper cites template detection
//! (Bar-Yossef & Rajagopalan, WWW 2002) among the miners WebFountain
//! runs before analytics, because navigation chrome and legal footers
//! repeated across a site would otherwise pollute text statistics and
//! sentiment counts.
//!
//! Approach: group entities by site (URI prefix), hash each sentence-like
//! segment, and flag segments that recur in at least `min_fraction` of
//! the site's pages (with an absolute floor) as template content. The
//! corpus miner annotates flagged spans with `template` annotations so
//! downstream miners can skip them.

use crate::entity::{Annotation, Entity};
use crate::miner::CorpusMiner;
use crate::store::DataStore;
use std::collections::{HashMap, HashSet};
use wf_types::{Result, Span};

/// Configuration for template detection.
#[derive(Debug, Clone, Copy)]
pub struct TemplateConfig {
    /// Minimum fraction of a site's pages a segment must appear in.
    pub min_fraction: f64,
    /// Absolute minimum number of pages (guards tiny sites).
    pub min_pages: usize,
    /// Minimum segment length in bytes (short fragments are too common).
    pub min_segment_len: usize,
}

impl Default for TemplateConfig {
    fn default() -> Self {
        TemplateConfig {
            min_fraction: 0.5,
            min_pages: 3,
            min_segment_len: 12,
        }
    }
}

/// The site key of an entity: scheme + host part of the URI.
fn site_of(uri: &str) -> String {
    match uri.find("://") {
        Some(idx) => {
            let rest = &uri[idx + 3..];
            let host_end = rest.find('/').unwrap_or(rest.len());
            uri[..idx + 3 + host_end].to_string()
        }
        None => uri.split('/').next().unwrap_or(uri).to_string(),
    }
}

/// Splits text into sentence-like segments with byte spans (on `.`, `!`,
/// `?`, and newlines).
fn segments(text: &str) -> Vec<Span> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        if matches!(c, '.' | '!' | '?' | '\n') {
            let end = i + c.len_utf8();
            if end > start {
                out.push(Span::new(start, end));
            }
            start = end;
        }
    }
    if start < text.len() {
        out.push(Span::new(start, text.len()));
    }
    out
}

fn segment_key(text: &str) -> u64 {
    let normalized: String = text
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect();
    let mut hash = 0xcbf29ce484222325u64;
    for b in normalized.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The template detector corpus miner.
#[derive(Default)]
pub struct TemplateDetector {
    config: TemplateConfig,
}

impl TemplateDetector {
    pub fn new(config: TemplateConfig) -> Self {
        TemplateDetector { config }
    }

    /// Returns, per site, the set of segment keys considered template.
    fn template_keys(&self, store: &DataStore) -> HashMap<String, HashSet<u64>> {
        // site → segment key → page count (each page counts once per key)
        let mut site_pages: HashMap<String, usize> = HashMap::new();
        let mut key_pages: HashMap<String, HashMap<u64, usize>> = HashMap::new();
        store.for_each(|entity| {
            let site = site_of(&entity.uri);
            *site_pages.entry(site.clone()).or_insert(0) += 1;
            let counts = key_pages.entry(site).or_default();
            let mut seen = HashSet::new();
            for span in segments(&entity.text) {
                if span.len() < self.config.min_segment_len {
                    continue;
                }
                let key = segment_key(span.slice(&entity.text));
                if seen.insert(key) {
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        });
        key_pages
            .into_iter()
            .map(|(site, counts)| {
                let pages = site_pages[&site];
                let threshold = ((pages as f64 * self.config.min_fraction).ceil() as usize)
                    .max(self.config.min_pages);
                let keys = counts
                    .into_iter()
                    .filter(|&(_, c)| c >= threshold)
                    .map(|(k, _)| k)
                    .collect();
                (site, keys)
            })
            .collect()
    }
}

impl CorpusMiner for TemplateDetector {
    fn name(&self) -> &str {
        "template-detector"
    }

    fn run(&self, store: &DataStore) -> Result<()> {
        let templates = self.template_keys(store);
        for id in store.ids() {
            store.update(id, |entity: &mut Entity| {
                entity.clear_annotations("template");
                let site = site_of(&entity.uri);
                let Some(keys) = templates.get(&site) else {
                    return;
                };
                let text = entity.text.clone();
                for span in segments(&text) {
                    if span.len() < self.config.min_segment_len {
                        continue;
                    }
                    if keys.contains(&segment_key(span.slice(&text))) {
                        entity.annotate(Annotation::new("template", span));
                    }
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SourceKind;
    use wf_types::DocId;

    const FOOTER: &str = "Copyright Example Corp, all rights reserved.";

    fn seeded() -> DataStore {
        let store = DataStore::single();
        for i in 0..5 {
            store.insert(Entity::new(
                format!("http://site-a.example/page{i}"),
                SourceKind::Web,
                format!("Unique review text number {i} about the camera. {FOOTER}"),
            ));
        }
        // a different site with its own content, no shared footer
        for i in 0..3 {
            store.insert(Entity::new(
                format!("http://site-b.example/p{i}"),
                SourceKind::Web,
                format!("Completely different article body {i} here."),
            ));
        }
        store
    }

    #[test]
    fn shared_footer_is_flagged() {
        let store = seeded();
        TemplateDetector::default().run(&store).unwrap();
        for i in 0..5 {
            let e = store.get(DocId(i)).unwrap();
            let template_texts: Vec<String> = e
                .annotations_of("template")
                .map(|a| a.span.slice(&e.text).trim().to_string())
                .collect();
            assert!(
                template_texts.iter().any(|t| t.contains("Copyright")),
                "page {i}: {template_texts:?}"
            );
            // the unique body is not flagged
            assert!(
                !template_texts.iter().any(|t| t.contains("Unique review")),
                "page {i}: {template_texts:?}"
            );
        }
    }

    #[test]
    fn unique_content_sites_have_no_templates() {
        let store = seeded();
        TemplateDetector::default().run(&store).unwrap();
        for i in 5..8 {
            let e = store.get(DocId(i)).unwrap();
            assert_eq!(e.annotations_of("template").count(), 0, "page {i}");
        }
    }

    #[test]
    fn small_sites_are_guarded_by_min_pages() {
        let store = DataStore::single();
        for i in 0..2 {
            store.insert(Entity::new(
                format!("http://tiny.example/{i}"),
                SourceKind::Web,
                format!("Body {i}. {FOOTER}"),
            ));
        }
        TemplateDetector::default().run(&store).unwrap();
        // 2 pages < min_pages floor of 3 → nothing flagged
        for i in 0..2 {
            let e = store.get(DocId(i)).unwrap();
            assert_eq!(e.annotations_of("template").count(), 0);
        }
    }

    #[test]
    fn rerun_is_idempotent() {
        let store = seeded();
        let detector = TemplateDetector::default();
        detector.run(&store).unwrap();
        let first = store
            .get(DocId(0))
            .unwrap()
            .annotations_of("template")
            .count();
        detector.run(&store).unwrap();
        let second = store
            .get(DocId(0))
            .unwrap()
            .annotations_of("template")
            .count();
        assert_eq!(first, second);
    }

    #[test]
    fn site_extraction() {
        assert_eq!(site_of("http://a.example/x/y"), "http://a.example");
        assert_eq!(site_of("https://b.example"), "https://b.example");
        assert_eq!(site_of("no-scheme/path"), "no-scheme");
    }

    #[test]
    fn segments_cover_text() {
        let text = "One. Two! Three";
        let spans = segments(text);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].slice(text), "One.");
        assert_eq!(spans[2].slice(text), " Three");
    }
}

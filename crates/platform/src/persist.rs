//! Data-store persistence: JSON-lines snapshots.
//!
//! WebFountain's store manages hundreds of terabytes across RAID arrays;
//! our durability substitute serializes every entity as one JSON line so
//! a mined corpus (with all annotations) survives process restarts and
//! can be inspected with standard tooling.

use crate::entity::Entity;
use crate::store::DataStore;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use wf_types::{Error, Result};

fn io_err(context: &str, err: std::io::Error) -> Error {
    Error::Service(format!("{context}: {err}"))
}

/// Writes every entity of the store to `path`, one JSON object per line,
/// in ascending id order. Returns the number of entities written.
pub fn save_store(store: &DataStore, path: &Path) -> Result<usize> {
    let file = File::create(path).map_err(|e| io_err("create snapshot", e))?;
    let mut writer = BufWriter::new(file);
    let mut written = 0usize;
    for id in store.ids() {
        let entity = store.get(id)?;
        let line = serde_json::to_string(&entity)
            .map_err(|e| Error::Service(format!("serialize {id}: {e}")))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| io_err("write snapshot", e))?;
        written += 1;
    }
    writer.flush().map_err(|e| io_err("flush snapshot", e))?;
    Ok(written)
}

/// Loads a snapshot into a fresh store with `shard_count` shards.
/// Entities keep their annotations and metadata; ids are reassigned
/// densely in file order (the store owns id assignment).
pub fn load_store(path: &Path, shard_count: usize) -> Result<DataStore> {
    let store = DataStore::new(shard_count)?;
    let file = File::open(path).map_err(|e| io_err("open snapshot", e))?;
    let reader = BufReader::new(file);
    for (line_no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| io_err("read snapshot", e))?;
        if line.trim().is_empty() {
            continue;
        }
        let entity: Entity = serde_json::from_str(&line)
            .map_err(|e| Error::parse(path.display().to_string(), line_no + 1, e.to_string()))?;
        store.insert(entity);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Annotation, SourceKind};
    use wf_types::{DocId, Span};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wf-persist-{name}-{}.jsonl", std::process::id()));
        p
    }

    fn seeded_store() -> DataStore {
        let store = DataStore::new(2).unwrap();
        for i in 0..10 {
            let mut e = Entity::new(
                format!("uri://{i}"),
                SourceKind::Web,
                format!("Document number {i}."),
            )
            .with_metadata("k", format!("v{i}"));
            e.annotate(Annotation::new("sentiment", Span::new(0, 8)).with_attr("polarity", "+"));
            store.insert(e);
        }
        store
    }

    #[test]
    fn round_trip_preserves_entities() {
        let store = seeded_store();
        let path = temp_path("roundtrip");
        let written = save_store(&store, &path).unwrap();
        assert_eq!(written, 10);
        let loaded = load_store(&path, 4).unwrap();
        assert_eq!(loaded.len(), 10);
        for i in 0..10 {
            let orig = store.get(DocId(i)).unwrap();
            let back = loaded.get(DocId(i)).unwrap();
            assert_eq!(orig.text, back.text);
            assert_eq!(orig.uri, back.uri);
            assert_eq!(orig.metadata, back.metadata);
            assert_eq!(orig.annotations, back.annotations);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_store(Path::new("/nonexistent/wf-snapshot.jsonl"), 1).unwrap_err();
        assert!(err.to_string().contains("open snapshot"));
    }

    #[test]
    fn load_rejects_corrupt_lines() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{not json}\n").unwrap();
        let err = load_store(&path, 1).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_are_skipped() {
        let store = seeded_store();
        let path = temp_path("gaps");
        save_store(&store, &path).unwrap();
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("\n\n");
        std::fs::write(&path, content).unwrap();
        assert_eq!(load_store(&path, 1).unwrap().len(), 10);
        std::fs::remove_file(&path).ok();
    }
}

//! Minimal from-scratch regular-expression engine for index term queries.
//!
//! The WebFountain indexer "supports multiple indices for various query
//! types including boolean, range, regular expression". This engine covers
//! the term-matching subset those queries need: literals, `.`, character
//! classes `[a-z0-9]` (with negation `[^...]`), the quantifiers `*`, `+`,
//! `?`, grouping `(...)` and alternation `|`. Matching is whole-string
//! (anchored), ASCII-oriented, case-sensitive (the index lowercases terms).
//!
//! Implementation: recursive-descent parse into an AST, then backtracking
//! evaluation. Index terms are short, so the worst-case exponential
//! behaviour of backtracking is not a concern here.

use wf_types::{Error, Result};

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Sequence of factors.
    Concat(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// One literal byte.
    Literal(u8),
    /// Any single byte.
    Dot,
    /// Character class; `negated` flips membership.
    Class {
        negated: bool,
        ranges: Vec<(u8, u8)>,
    },
    /// Zero or more.
    Star(Box<Node>),
    /// One or more.
    Plus(Box<Node>),
    /// Zero or one.
    Opt(Box<Node>),
}

/// A compiled regular expression.
///
/// ```
/// use wf_platform::Regex;
///
/// let re = Regex::new("nr[0-9]+").unwrap();
/// assert!(re.is_match("nr70"));
/// assert!(!re.is_match("nr"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    root: Node,
    source: String,
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Self> {
        let mut parser = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
            pattern,
        };
        let root = parser.parse_alt()?;
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("unexpected trailing characters"));
        }
        Ok(Regex {
            root,
            source: pattern.to_string(),
        })
    }

    /// The original pattern.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// True when the whole of `text` matches.
    pub fn is_match(&self, text: &str) -> bool {
        let bytes = text.as_bytes();
        match_node(&self.root, bytes, 0, &|pos| pos == bytes.len())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::Query(format!(
            "regex {:?} at byte {}: {msg}",
            self.pattern, self.pos
        ))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// alt := concat ('|' concat)*
    fn parse_alt(&mut self) -> Result<Node> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Node::Alt(branches)
        })
    }

    /// concat := repeated*
    fn parse_concat(&mut self) -> Result<Node> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Node::Concat(parts)
        })
    }

    /// repeated := atom ('*' | '+' | '?')?
    fn parse_repeat(&mut self) -> Result<Node> {
        let atom = self.parse_atom()?;
        Ok(match self.peek() {
            Some(b'*') => {
                self.bump();
                Node::Star(Box::new(atom))
            }
            Some(b'+') => {
                self.bump();
                Node::Plus(Box::new(atom))
            }
            Some(b'?') => {
                self.bump();
                Node::Opt(Box::new(atom))
            }
            _ => atom,
        })
    }

    fn parse_atom(&mut self) -> Result<Node> {
        match self.bump() {
            None => Err(self.error("expected an atom")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Node::Dot),
            Some(b'\\') => match self.bump() {
                Some(c) => Ok(Node::Literal(c)),
                None => Err(self.error("dangling escape")),
            },
            Some(b @ (b'*' | b'+' | b'?')) => Err(self.error(&format!(
                "quantifier {:?} with nothing to repeat",
                b as char
            ))),
            Some(b')') => Err(self.error("unmatched ')'")),
            Some(b) => Ok(Node::Literal(b)),
        }
    }

    fn parse_class(&mut self) -> Result<Node> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let lo = match self.bump() {
                None => return Err(self.error("unclosed character class")),
                Some(b']') if !ranges.is_empty() || negated => break,
                Some(b']') => break, // empty class: matches nothing
                Some(b'\\') => self
                    .bump()
                    .ok_or_else(|| self.error("dangling escape in class"))?,
                Some(b) => b,
            };
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1).is_some_and(|&b| b != b']')
            {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some(b'\\') => self
                        .bump()
                        .ok_or_else(|| self.error("dangling escape in class"))?,
                    Some(b) => b,
                    None => return Err(self.error("unclosed range")),
                };
                if lo > hi {
                    return Err(self.error("reversed range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Node::Class { negated, ranges })
    }
}

/// Backtracking matcher: does `node` match some prefix of `text[pos..]`
/// such that the continuation `k` accepts the end position?
fn match_node(node: &Node, text: &[u8], pos: usize, k: &dyn Fn(usize) -> bool) -> bool {
    match node {
        Node::Literal(b) => text.get(pos) == Some(b) && k(pos + 1),
        Node::Dot => pos < text.len() && k(pos + 1),
        Node::Class { negated, ranges } => match text.get(pos) {
            None => false,
            Some(&b) => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
                inside != *negated && k(pos + 1)
            }
        },
        Node::Concat(parts) => match_seq(parts, text, pos, k),
        Node::Alt(branches) => branches.iter().any(|b| match_node(b, text, pos, k)),
        Node::Opt(inner) => match_node(inner, text, pos, k) || k(pos),
        Node::Star(inner) => match_star(inner, text, pos, k),
        Node::Plus(inner) => match_node(inner, text, pos, &|next| {
            next > pos && match_star(inner, text, next, k)
        }),
    }
}

fn match_seq(parts: &[Node], text: &[u8], pos: usize, k: &dyn Fn(usize) -> bool) -> bool {
    match parts.split_first() {
        None => k(pos),
        Some((head, rest)) => match_node(head, text, pos, &|next| match_seq(rest, text, next, k)),
    }
}

fn match_star(inner: &Node, text: &[u8], pos: usize, k: &dyn Fn(usize) -> bool) -> bool {
    if k(pos) {
        return true;
    }
    match_node(inner, text, pos, &|next| {
        next > pos && match_star(inner, text, next, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literals() {
        assert!(m("camera", "camera"));
        assert!(!m("camera", "cameras"));
        assert!(!m("camera", "camer"));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(m("c.mera", "camera"));
        assert!(m("ca*mera", "cmera"));
        assert!(m("ca*mera", "caaamera"));
        assert!(m("ca+mera", "camera"));
        assert!(!m("ca+mera", "cmera"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
    }

    #[test]
    fn star_matches_anything() {
        assert!(m(".*", ""));
        assert!(m(".*", "anything at all"));
        assert!(m("nr.*", "nr70"));
        assert!(!m("nr.*", "xnr70"));
    }

    #[test]
    fn classes() {
        assert!(m("nr[0-9]+", "nr70"));
        assert!(!m("nr[0-9]+", "nr"));
        assert!(m("[a-c]+", "abcba"));
        assert!(!m("[a-c]+", "abd"));
        assert!(m("[^0-9]+", "abc"));
        assert!(!m("[^0-9]+", "ab3"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "cat"));
        assert!(m("cat|dog", "dog"));
        assert!(!m("cat|dog", "cow"));
        assert!(m("(ab)+c", "ababc"));
        assert!(!m("(ab)+c", "abac"));
        assert!(m("gr(a|e)y", "gray"));
        assert!(m("gr(a|e)y", "grey"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\[x\]", "[x]"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn nested_star_terminates() {
        // (a*)* must not loop on empty inner matches
        assert!(m("(a*)*", "aaaa"));
        assert!(m("(a*)*", ""));
        assert!(!m("(a*)*b", "c"));
    }

    #[test]
    fn dash_literal_at_class_end() {
        assert!(m("[a-]", "-"));
        assert!(m("[a-]", "a"));
        assert!(!m("[a-]", "b"));
    }
}

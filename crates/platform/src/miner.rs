//! The miner framework: entity-level and corpus-level miners.
//!
//! "There are two types of miners in WebFountain: entity-level and
//! corpus-level (cross-entity) miners. Entity-level miners process each
//! entity without information from neighboring entities, and typically
//! augment processed entities with the results. [...] corpus-level miners
//! require all or part of the entire data in store."
//!
//! [`MinerPipeline`] runs a chain of entity miners over every shard of a
//! [`DataStore`], one scoped worker thread per shard — the in-process
//! equivalent of WebFountain's per-node parallelism. Workers capture
//! panics (a crashed shard becomes counted failures, never a crashed
//! cluster) and, when run under a [`FaultPlan`], weather injected faults
//! by retrying with exponential backoff on a simulated clock.

use crate::entity::Entity;
use crate::evlog::Level;
use crate::faults::{FaultKind, FaultPlan, NodeHealth};
use crate::store::DataStore;
use crate::trace::TraceSpan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use wf_types::{NodeId, Result, RetryPolicy};

/// An entity-level miner: sees one entity at a time and augments it.
pub trait EntityMiner: Send + Sync {
    /// Stable miner name (used in annotations and stats).
    fn name(&self) -> &str;

    /// Processes one entity in place.
    fn process(&self, entity: &mut Entity) -> Result<()>;

    /// Processes a batch of entities, returning one result per entity in
    /// order. The default delegates to [`EntityMiner::process`] per
    /// entity; miners with a batch-aware hot path (shared scratch
    /// buffers, one-pass document analysis) override this to amortize
    /// per-document setup. Implementations must leave each entity exactly
    /// as `process` would have.
    fn process_batch(&self, batch: &mut [Entity]) -> Vec<Result<()>> {
        batch.iter_mut().map(|e| self.process(e)).collect()
    }

    /// [`EntityMiner::process_batch`] under a trace span. Miners that can
    /// attribute their work to stages (e.g. the NLP chain) override this
    /// to record per-stage child spans and advance `span` by the batch's
    /// simulated cost; the default delegates untraced and leaves the span
    /// untouched. Entity outcomes must match `process_batch` exactly.
    fn process_batch_traced(&self, batch: &mut [Entity], span: &mut TraceSpan) -> Vec<Result<()>> {
        let _ = span;
        self.process_batch(batch)
    }
}

/// A corpus-level miner: sees the whole store.
pub trait CorpusMiner: Send + Sync {
    fn name(&self) -> &str;

    /// Runs over the full store (read or write through the store API).
    fn run(&self, store: &DataStore) -> Result<()>;
}

/// Per-run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Entities processed successfully.
    pub processed: usize,
    /// Entities whose processing failed (miner error, injected fault after
    /// exhausted retries, or a shard that crashed or could not be placed).
    pub failed: usize,
    /// Retries performed against transient injected faults.
    pub retries: u64,
    /// Shards abandoned whole: worker panic, or the owning node was Down
    /// with no healthy node to fail over to.
    pub skipped_shards: usize,
    /// Shards executed by a stand-in node because their owner was Down.
    pub failed_over: usize,
    /// Simulated milliseconds consumed per shard, in shard order.
    pub shard_sim_ms: Vec<u64>,
    /// Per-shard outcome detail, in shard order (feeds the cluster
    /// scoreboard behind `wfsm top`).
    pub shards: Vec<ShardOutcome>,
}

impl PipelineStats {
    fn absorb(&mut self, other: PipelineStats) {
        self.processed += other.processed;
        self.failed += other.failed;
        self.retries += other.retries;
        self.skipped_shards += other.skipped_shards;
        self.failed_over += other.failed_over;
        self.shard_sim_ms.extend(other.shard_sim_ms);
        self.shards.extend(other.shards);
    }
}

/// What happened to one shard during a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Shard (== owning node) index.
    pub shard: usize,
    /// Node that actually executed the shard; `None` when the whole
    /// cluster was down and the shard could not be placed.
    pub executor: Option<usize>,
    pub processed: usize,
    pub failed: usize,
    pub retries: u64,
    /// Injected faults drawn while mining the shard.
    pub faults: u64,
    /// A stand-in node executed the shard (owner was Down).
    pub failed_over: bool,
    /// The shard was abandoned whole (worker panic or unplaced).
    pub skipped: bool,
    /// Simulated milliseconds the shard consumed.
    pub sim_ms: u64,
    /// Most recent failure on this shard, mirroring the span event text.
    pub last_error: Option<String>,
}

/// Fault-injection context for one pipeline run.
///
/// `health[i]` is the health of node `i` (missing entries mean `Up`).
/// Without a plan and with every node up, the pipeline behaves exactly
/// like the fault-free original.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultContext<'a> {
    pub plan: Option<&'a FaultPlan>,
    pub retry: RetryPolicy,
    pub health: &'a [NodeHealth],
}

impl FaultContext<'_> {
    /// No faults, no retries: the legacy fast path.
    pub fn none() -> Self {
        FaultContext {
            plan: None,
            retry: RetryPolicy::none(),
            health: &[],
        }
    }

    fn health_of(&self, node: usize) -> NodeHealth {
        self.health.get(node).copied().unwrap_or(NodeHealth::Up)
    }

    /// The node that should execute `shard`, honoring failover: a Down
    /// owner hands its shard to the first Up node, else the first
    /// Degraded one. `None` when the whole cluster is down.
    fn executor_for(&self, shard: usize, shard_count: usize) -> Option<usize> {
        match self.health_of(shard) {
            NodeHealth::Up | NodeHealth::Degraded => Some(shard),
            NodeHealth::Down => {
                let up = (0..shard_count).find(|&n| self.health_of(n) == NodeHealth::Up);
                up.or_else(|| (0..shard_count).find(|&n| self.health_of(n) == NodeHealth::Degraded))
            }
        }
    }
}

/// A chain of entity miners executed in order over each entity.
#[derive(Default)]
pub struct MinerPipeline {
    miners: Vec<Box<dyn EntityMiner>>,
}

impl MinerPipeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a miner to the chain.
    #[allow(clippy::should_implement_trait)] // builder-style chain, not arithmetic
    pub fn add(mut self, miner: Box<dyn EntityMiner>) -> Self {
        self.miners.push(miner);
        self
    }

    /// Names of the chained miners, in order.
    pub fn miner_names(&self) -> Vec<&str> {
        self.miners.iter().map(|m| m.name()).collect()
    }

    /// Runs the chain over every entity of the store, one worker thread per
    /// shard, fault-free. Errors from individual entities are counted, not
    /// propagated: a malformed page must not stall the cluster.
    pub fn run(&self, store: &DataStore) -> PipelineStats {
        self.run_with(store, &FaultContext::none())
    }

    /// Runs the chain over every entity of the store in document batches
    /// of `batch_size` per shard (one worker thread per shard,
    /// fault-free), routing each batch through
    /// [`EntityMiner::process_batch`] so batch-aware miners amortize
    /// per-document setup. Per-entity semantics match [`MinerPipeline::run`]
    /// exactly: the chain stops at the first failing miner (which marks
    /// `miner-error`), every surviving entity gets exactly one version
    /// bump, and `processed + failed == store.len()`.
    pub fn run_batched(&self, store: &DataStore, batch_size: usize) -> PipelineStats {
        let batch_size = batch_size.max(1);
        let shard_count = store.shard_count();
        let entities_in = store.len() as u64;
        let results: Vec<PipelineStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shard_count)
                .map(|shard| {
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            self.run_shard_batched(store, shard, batch_size)
                        }))
                        .unwrap_or_else(|_| {
                            let shard_len = store.shard_ids(NodeId(shard as u32)).len();
                            PipelineStats {
                                failed: shard_len,
                                skipped_shards: 1,
                                shard_sim_ms: vec![0],
                                shards: vec![ShardOutcome {
                                    shard,
                                    executor: Some(shard),
                                    failed: shard_len,
                                    skipped: true,
                                    last_error: Some("panicked".to_string()),
                                    ..ShardOutcome::default()
                                }],
                                ..PipelineStats::default()
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker wrapper never panics"))
                .collect()
        });
        let mut total = PipelineStats::default();
        for r in results {
            total.absorb(r);
        }
        let tele = store.telemetry();
        tele.counter("pipeline.runs").inc();
        tele.counter("pipeline.entities_in").add(entities_in);
        tele.counter("pipeline.processed")
            .add(total.processed as u64);
        tele.counter("pipeline.failed").add(total.failed as u64);
        tele.counter("pipeline.skipped_shards")
            .add(total.skipped_shards as u64);
        total
    }

    /// One shard of [`MinerPipeline::run_batched`]: fetch a batch, run the
    /// chain (batch calls while every entity is still healthy, per-entity
    /// for the stragglers once one has failed), then write back with one
    /// update per entity.
    fn run_shard_batched(
        &self,
        store: &DataStore,
        shard: usize,
        batch_size: usize,
    ) -> PipelineStats {
        let mut stats = PipelineStats::default();
        for chunk in store.shard_ids(NodeId(shard as u32)).chunks(batch_size) {
            let mut ids = Vec::with_capacity(chunk.len());
            let mut batch = Vec::with_capacity(chunk.len());
            for &id in chunk {
                match store.get(id) {
                    Ok(e) => {
                        ids.push(id);
                        batch.push(e);
                    }
                    Err(_) => stats.failed += 1,
                }
            }
            let mut active = vec![true; batch.len()];
            for miner in &self.miners {
                if active.iter().all(|&a| a) {
                    for (i, res) in miner.process_batch(&mut batch).into_iter().enumerate() {
                        if res.is_err() {
                            batch[i]
                                .metadata
                                .insert("miner-error".into(), miner.name().to_string());
                            active[i] = false;
                        }
                    }
                } else {
                    for (i, entity) in batch.iter_mut().enumerate() {
                        if active[i] && miner.process(entity).is_err() {
                            entity
                                .metadata
                                .insert("miner-error".into(), miner.name().to_string());
                            active[i] = false;
                        }
                    }
                }
            }
            for ((id, mined), ok) in ids.into_iter().zip(batch).zip(active) {
                let written = store.update(id, |slot| *slot = mined).is_ok();
                if written && ok {
                    stats.processed += 1;
                } else {
                    stats.failed += 1;
                }
            }
        }
        stats.shard_sim_ms = vec![0];
        stats.shards = vec![ShardOutcome {
            shard,
            executor: Some(shard),
            processed: stats.processed,
            failed: stats.failed,
            ..ShardOutcome::default()
        }];
        stats
    }

    /// [`MinerPipeline::run_batched`] as a child span of `parent`: one
    /// `shard:<n>` span per shard forked at the same instant, batches
    /// routed through [`EntityMiner::process_batch_traced`] so stage-aware
    /// miners attribute their work (the sentiment chain records
    /// `nlp.tokenize` … `nlp.ner` children), and the parent clock advanced
    /// by the slowest shard. Entity outcomes match `run_batched` exactly.
    pub fn run_batched_traced(
        &self,
        store: &DataStore,
        batch_size: usize,
        parent: &mut TraceSpan,
    ) -> PipelineStats {
        let batch_size = batch_size.max(1);
        let shard_count = store.shard_count();
        let entities_in = store.len() as u64;
        let mut span = parent.child("pipeline.run");
        let fork_start = span.start_sim_ms() + span.elapsed_sim_ms();
        let shard_spans: Vec<TraceSpan> = (0..shard_count)
            .map(|s| span.child(format!("shard:{s}")))
            .collect();
        let results: Vec<(PipelineStats, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_spans
                .into_iter()
                .enumerate()
                .map(|(shard, mut sp)| {
                    scope.spawn(move || {
                        let stats = match catch_unwind(AssertUnwindSafe(|| {
                            self.run_shard_batched_traced(store, shard, batch_size, &mut sp)
                        })) {
                            Ok(stats) => stats,
                            Err(_) => {
                                sp.event("panicked");
                                let shard_len = store.shard_ids(NodeId(shard as u32)).len();
                                store.telemetry().evlog().event_in(
                                    Level::Error,
                                    &sp,
                                    &format!("miner.shard:{shard}"),
                                    "shard worker panicked",
                                    &[("docs", shard_len.to_string())],
                                );
                                PipelineStats {
                                    failed: shard_len,
                                    skipped_shards: 1,
                                    shard_sim_ms: vec![sp.elapsed_sim_ms()],
                                    shards: vec![ShardOutcome {
                                        shard,
                                        executor: Some(shard),
                                        failed: shard_len,
                                        skipped: true,
                                        sim_ms: sp.elapsed_sim_ms(),
                                        last_error: Some("panicked".to_string()),
                                        ..ShardOutcome::default()
                                    }],
                                    ..PipelineStats::default()
                                }
                            }
                        };
                        sp.attr("processed", stats.processed.to_string());
                        sp.attr("failed", stats.failed.to_string());
                        let elapsed = sp.elapsed_sim_ms();
                        sp.finish();
                        (stats, elapsed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker wrapper never panics"))
                .collect()
        });
        // merged in shard order, independent of worker interleaving
        let mut total = PipelineStats::default();
        let mut slowest = 0u64;
        for (r, elapsed) in results {
            total.absorb(r);
            slowest = slowest.max(elapsed);
        }
        span.advance_to(fork_start + slowest);
        let elapsed = span.elapsed_sim_ms();
        span.finish();
        parent.advance(elapsed);
        let tele = store.telemetry();
        tele.counter("pipeline.runs").inc();
        tele.counter("pipeline.entities_in").add(entities_in);
        tele.counter("pipeline.processed")
            .add(total.processed as u64);
        tele.counter("pipeline.failed").add(total.failed as u64);
        tele.counter("pipeline.skipped_shards")
            .add(total.skipped_shards as u64);
        total
    }

    /// One shard of [`MinerPipeline::run_batched_traced`]: identical
    /// entity semantics to [`MinerPipeline::run_shard_batched`], but each
    /// batch runs under the shard's span so stage-aware miners charge it.
    fn run_shard_batched_traced(
        &self,
        store: &DataStore,
        shard: usize,
        batch_size: usize,
        span: &mut TraceSpan,
    ) -> PipelineStats {
        let mut stats = PipelineStats::default();
        for chunk in store.shard_ids(NodeId(shard as u32)).chunks(batch_size) {
            let mut ids = Vec::with_capacity(chunk.len());
            let mut batch = Vec::with_capacity(chunk.len());
            for &id in chunk {
                match store.get(id) {
                    Ok(e) => {
                        ids.push(id);
                        batch.push(e);
                    }
                    Err(_) => stats.failed += 1,
                }
            }
            let mut active = vec![true; batch.len()];
            for miner in &self.miners {
                if active.iter().all(|&a| a) {
                    let results = miner.process_batch_traced(&mut batch, span);
                    for (i, res) in results.into_iter().enumerate() {
                        if res.is_err() {
                            batch[i]
                                .metadata
                                .insert("miner-error".into(), miner.name().to_string());
                            active[i] = false;
                        }
                    }
                } else {
                    for (i, entity) in batch.iter_mut().enumerate() {
                        if active[i] && miner.process(entity).is_err() {
                            entity
                                .metadata
                                .insert("miner-error".into(), miner.name().to_string());
                            active[i] = false;
                        }
                    }
                }
            }
            for ((id, mined), ok) in ids.into_iter().zip(batch).zip(active) {
                let written = store.update(id, |slot| *slot = mined).is_ok();
                if written && ok {
                    stats.processed += 1;
                } else {
                    stats.failed += 1;
                }
            }
        }
        stats.shard_sim_ms = vec![span.elapsed_sim_ms()];
        stats.shards = vec![ShardOutcome {
            shard,
            executor: Some(shard),
            processed: stats.processed,
            failed: stats.failed,
            sim_ms: span.elapsed_sim_ms(),
            ..ShardOutcome::default()
        }];
        stats
    }

    /// Runs the chain under a fault context: injected faults are retried
    /// per the policy, Down nodes fail over, and worker panics are
    /// captured — the aggregate stats always satisfy
    /// `processed + failed == store.len()`.
    ///
    /// The run records into the store's telemetry registry: `pipeline.*`
    /// counters mirror the returned [`PipelineStats`] exactly, and each
    /// shard's simulated time lands in `span.pipeline.shard.sim_ms` (in
    /// shard order, so same-seed runs snapshot identically).
    pub fn run_with(&self, store: &DataStore, ctx: &FaultContext<'_>) -> PipelineStats {
        let mut root = store.telemetry().trace_root("pipeline.run");
        let stats = self.run_traced_inner(store, ctx, &mut root);
        root.finish();
        stats
    }

    /// [`MinerPipeline::run_with`] as a child span of `parent`, advancing
    /// the parent's simulated clock by the run's elapsed time. The trace
    /// tree gains one `shard:<n>` span per shard; injected faults, retries
    /// and timeouts become events on their shard's span.
    pub fn run_traced(
        &self,
        store: &DataStore,
        ctx: &FaultContext<'_>,
        parent: &mut TraceSpan,
    ) -> PipelineStats {
        let mut span = parent.child("pipeline.run");
        let stats = self.run_traced_inner(store, ctx, &mut span);
        let elapsed = span.elapsed_sim_ms();
        span.finish();
        parent.advance(elapsed);
        stats
    }

    fn run_traced_inner(
        &self,
        store: &DataStore,
        ctx: &FaultContext<'_>,
        span: &mut TraceSpan,
    ) -> PipelineStats {
        let shard_count = store.shard_count();
        let entities_in = store.len() as u64;
        // every shard span forks from the same instant; the workers run in
        // parallel, so afterwards the parent clock jumps to the slowest one
        let fork_start = span.start_sim_ms() + span.elapsed_sim_ms();
        let shard_spans: Vec<TraceSpan> = (0..shard_count)
            .map(|s| span.child(format!("shard:{s}")))
            .collect();
        let results: Vec<(PipelineStats, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_spans
                .into_iter()
                .enumerate()
                .map(|(shard, mut sp)| {
                    scope.spawn(move || {
                        let stats = self.run_shard_guarded(store, shard, ctx, &mut sp);
                        sp.attr("processed", stats.processed.to_string());
                        sp.attr("failed", stats.failed.to_string());
                        let elapsed = sp.elapsed_sim_ms();
                        sp.finish();
                        (stats, elapsed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker wrapper never panics"))
                .collect()
        });
        // merged in shard order: identical fault seeds give byte-identical
        // stats no matter how the workers interleaved
        let mut total = PipelineStats::default();
        let mut slowest = 0u64;
        for (r, elapsed) in results {
            total.absorb(r);
            slowest = slowest.max(elapsed);
        }
        span.advance_to(fork_start + slowest);
        let tele = store.telemetry();
        tele.counter("pipeline.runs").inc();
        tele.counter("pipeline.entities_in").add(entities_in);
        tele.counter("pipeline.processed")
            .add(total.processed as u64);
        tele.counter("pipeline.failed").add(total.failed as u64);
        tele.counter("pipeline.retries").add(total.retries);
        tele.counter("pipeline.skipped_shards")
            .add(total.skipped_shards as u64);
        tele.counter("pipeline.failed_over")
            .add(total.failed_over as u64);
        // shard durations double as exemplars: each bucket of the shard
        // histogram remembers the run whose shard was slowest
        let shard_hist = tele.histogram("span.pipeline.shard.sim_ms");
        let trace = span.trace_id();
        for &sim_ms in &total.shard_sim_ms {
            shard_hist.record_exemplar(sim_ms, trace);
        }
        total
    }

    /// One shard, panic-safe: a crash inside a miner converts the whole
    /// shard into counted failures instead of poisoning the run — and
    /// leaves a `panicked` event on the shard's span, which keeps the
    /// simulated time it had accrued up to the crash (it used to be lost,
    /// reported as 0).
    fn run_shard_guarded(
        &self,
        store: &DataStore,
        shard: usize,
        ctx: &FaultContext<'_>,
        span: &mut TraceSpan,
    ) -> PipelineStats {
        let shard_len = store.shard_ids(NodeId(shard as u32)).len();
        let Some(executor) = ctx.executor_for(shard, store.shard_count()) else {
            // whole cluster down: shard cannot be placed
            span.event("unplaced");
            store.telemetry().evlog().event_in(
                Level::Error,
                span,
                &format!("miner.shard:{shard}"),
                "shard unplaced: no healthy node",
                &[("docs", shard_len.to_string())],
            );
            return PipelineStats {
                failed: shard_len,
                skipped_shards: 1,
                shard_sim_ms: vec![0],
                shards: vec![ShardOutcome {
                    shard,
                    executor: None,
                    failed: shard_len,
                    skipped: true,
                    last_error: Some("unplaced".to_string()),
                    ..ShardOutcome::default()
                }],
                ..PipelineStats::default()
            };
        };
        let failed_over = executor != shard;
        if failed_over {
            span.event(format!("failover:node:{executor}"));
            store.telemetry().evlog().event_in(
                Level::Warn,
                span,
                &format!("miner.shard:{shard}"),
                "shard failed over",
                &[("executor", executor.to_string())],
            );
        }
        match catch_unwind(AssertUnwindSafe(|| {
            self.run_shard(store, shard, executor, ctx, span)
        })) {
            Ok(mut stats) => {
                stats.failed_over = usize::from(failed_over);
                if let Some(outcome) = stats.shards.first_mut() {
                    outcome.failed_over = failed_over;
                }
                stats
            }
            Err(_) => {
                span.event("panicked");
                store.telemetry().evlog().event_in(
                    Level::Error,
                    span,
                    &format!("miner.shard:{shard}"),
                    "shard worker panicked",
                    &[("docs", shard_len.to_string())],
                );
                PipelineStats {
                    // conservative accounting: a crashed worker forfeits the
                    // shard, so every entity in it counts as failed
                    failed: shard_len,
                    skipped_shards: 1,
                    failed_over: usize::from(failed_over),
                    shard_sim_ms: vec![span.elapsed_sim_ms()],
                    shards: vec![ShardOutcome {
                        shard,
                        executor: Some(executor),
                        failed: shard_len,
                        failed_over,
                        skipped: true,
                        sim_ms: span.elapsed_sim_ms(),
                        last_error: Some("panicked".to_string()),
                        ..ShardOutcome::default()
                    }],
                    ..PipelineStats::default()
                }
            }
        }
    }

    /// Runs the chain over one shard (sequentially within the shard),
    /// drawing faults from the shard's own deterministic stream.
    fn run_shard(
        &self,
        store: &DataStore,
        shard: usize,
        executor: usize,
        ctx: &FaultContext<'_>,
        span: &mut TraceSpan,
    ) -> PipelineStats {
        let mut stats = PipelineStats::default();
        let mut sim_ms = 0u64;
        let mut faults = 0u64;
        let mut last_error: Option<String> = None;
        let log = store.telemetry().evlog();
        let target = format!("miner.shard:{shard}");
        let mut stream = ctx.plan.map(|p| p.stream(&format!("shard:{shard}")));
        if let Some(s) = stream.as_mut() {
            if ctx.health_of(executor) == NodeHealth::Degraded {
                s.degrade();
            }
        }
        for id in store.shard_ids(NodeId(shard as u32)) {
            // retry loop per entity: injected transient faults (node blip,
            // store conflict) back off and try again on the simulated
            // clock; terminal faults and exhausted budgets count as failed.
            // The shard span's clock advances in lockstep with
            // `entity_elapsed`, so span duration == shard_sim_ms.
            let mut entity_elapsed = 0u64;
            let mut outcome: Option<bool> = None; // Some(ok) once decided
            let mut entity_error: Option<String> = None;
            for attempt in 0..=ctx.retry.max_retries {
                let fault = stream.as_mut().and_then(|s| s.draw());
                let latency = stream.as_ref().map(|s| s.latency_ms(fault)).unwrap_or(0);
                entity_elapsed += latency;
                span.advance(latency);
                if entity_elapsed > ctx.retry.timeout_budget_ms {
                    span.event(format!("timeout doc={}", id.0));
                    log.event_in(
                        Level::Error,
                        span,
                        &target,
                        "entity timeout",
                        &[
                            ("budget_ms", ctx.retry.timeout_budget_ms.to_string()),
                            ("doc", id.0.to_string()),
                        ],
                    );
                    entity_error = Some(format!("timeout doc={}", id.0));
                    outcome = Some(false); // budget exhausted: timeout
                    break;
                }
                if let Some(kind) = fault {
                    faults += 1;
                    span.event(format!("fault:{} doc={}", kind.label(), id.0));
                    log.event_in(
                        Level::Warn,
                        span,
                        &target,
                        "fault injected",
                        &[
                            ("doc", id.0.to_string()),
                            ("kind", kind.label().to_string()),
                        ],
                    );
                }
                match fault {
                    Some(FaultKind::ServiceError) => {
                        entity_error = Some(format!("fault:service_error doc={}", id.0));
                        outcome = Some(false); // application error: terminal
                        break;
                    }
                    Some(kind @ (FaultKind::NodeDown | FaultKind::StoreConflict)) => {
                        // transient: injected *before* the store mutation,
                        // so a later successful attempt bumps the entity
                        // version exactly once
                        if attempt == ctx.retry.max_retries {
                            log.event_in(
                                Level::Error,
                                span,
                                &target,
                                "retries exhausted",
                                &[
                                    ("doc", id.0.to_string()),
                                    ("kind", kind.label().to_string()),
                                ],
                            );
                            entity_error = Some(format!(
                                "fault:{} doc={} retries exhausted",
                                kind.label(),
                                id.0
                            ));
                            outcome = Some(false);
                            break;
                        }
                        stats.retries += 1;
                        let backoff = ctx.retry.backoff_for(attempt + 1);
                        entity_elapsed += backoff;
                        span.advance(backoff);
                        span.event(format!(
                            "retry:{} doc={} backoff:{backoff}ms",
                            attempt + 1,
                            id.0
                        ));
                        log.event_in(
                            Level::Info,
                            span,
                            &target,
                            "retrying entity",
                            &[
                                ("backoff_ms", backoff.to_string()),
                                ("doc", id.0.to_string()),
                                ("retry", (attempt + 1).to_string()),
                            ],
                        );
                        if entity_elapsed > ctx.retry.timeout_budget_ms {
                            span.event(format!("timeout doc={}", id.0));
                            log.event_in(
                                Level::Error,
                                span,
                                &target,
                                "entity timeout",
                                &[
                                    ("budget_ms", ctx.retry.timeout_budget_ms.to_string()),
                                    ("doc", id.0.to_string()),
                                ],
                            );
                            entity_error = Some(format!("timeout doc={}", id.0));
                            outcome = Some(false);
                            break;
                        }
                        continue;
                    }
                    Some(FaultKind::SlowResponse) | None => {
                        outcome = Some(self.mine_one(store, id, span));
                        break;
                    }
                }
            }
            match outcome {
                Some(true) => stats.processed += 1,
                _ => {
                    stats.failed += 1;
                    last_error =
                        Some(entity_error.unwrap_or_else(|| format!("miner-error doc={}", id.0)));
                }
            }
            sim_ms += entity_elapsed;
        }
        stats.shard_sim_ms = vec![sim_ms];
        stats.shards = vec![ShardOutcome {
            shard,
            executor: Some(executor),
            processed: stats.processed,
            failed: stats.failed,
            retries: stats.retries,
            faults,
            failed_over: false, // the caller fills this in
            skipped: false,
            sim_ms,
            last_error,
        }];
        stats
    }

    /// Applies the miner chain to one entity; true on clean success. Store
    /// round-trips appear as `store.update:<id>` / `store.get:<id>` child
    /// spans — if a miner panics mid-update, the in-flight span still
    /// records on unwind (via Drop), so the flight recorder keeps the
    /// partial trace.
    fn mine_one(&self, store: &DataStore, id: wf_types::DocId, span: &mut TraceSpan) -> bool {
        let updated = store.update_traced(id, span, |entity| {
            for miner in &self.miners {
                if miner.process(entity).is_err() {
                    // mark and stop the chain for this entity
                    entity
                        .metadata
                        .insert("miner-error".into(), miner.name().to_string());
                    break;
                }
            }
        });
        match updated {
            Ok(()) => store
                .get_traced(id, span)
                .ok()
                .is_none_or(|e| !e.metadata.contains_key("miner-error")),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Annotation, SourceKind};
    use wf_types::{Error, Span};

    struct UppercaseCounter;
    impl EntityMiner for UppercaseCounter {
        fn name(&self) -> &str {
            "uppercase-counter"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            let n = entity.text.chars().filter(|c| c.is_uppercase()).count();
            entity.metadata.insert("uppercase".into(), n.to_string());
            Ok(())
        }
    }

    struct Tagger;
    impl EntityMiner for Tagger {
        fn name(&self) -> &str {
            "tagger"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            let len = entity.text.len();
            entity.annotate(Annotation::new("whole-doc", Span::new(0, len)));
            Ok(())
        }
    }

    struct FailOnEmpty;
    impl EntityMiner for FailOnEmpty {
        fn name(&self) -> &str {
            "fail-on-empty"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            if entity.text.is_empty() {
                Err(Error::Config("empty entity".into()))
            } else {
                Ok(())
            }
        }
    }

    struct CountingCorpusMiner;
    impl CorpusMiner for CountingCorpusMiner {
        fn name(&self) -> &str {
            "counting"
        }
        fn run(&self, store: &DataStore) -> Result<()> {
            // aggregate statistic example: total text length
            let mut total = 0usize;
            store.for_each(|e| total += e.text.len());
            assert!(total > 0);
            Ok(())
        }
    }

    fn seeded_store(shards: usize, docs: usize) -> DataStore {
        let store = DataStore::new(shards).unwrap();
        for i in 0..docs {
            store.insert(Entity::new(
                format!("uri://{i}"),
                SourceKind::Web,
                format!("Document Number {i}"),
            ));
        }
        store
    }

    #[test]
    fn pipeline_processes_all_entities() {
        let store = seeded_store(4, 20);
        let pipeline = MinerPipeline::new()
            .add(Box::new(UppercaseCounter))
            .add(Box::new(Tagger));
        let stats = pipeline.run(&store);
        assert_eq!(stats.processed, 20);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.skipped_shards, 0);
        for id in store.ids() {
            let e = store.get(id).unwrap();
            assert!(e.metadata.contains_key("uppercase"));
            assert_eq!(e.annotations_of("whole-doc").count(), 1);
            assert_eq!(e.version, 2, "each entity updated once");
        }
    }

    #[test]
    fn miner_errors_are_counted_not_fatal() {
        let store = DataStore::new(2).unwrap();
        store.insert(Entity::new("a", SourceKind::Web, "content"));
        store.insert(Entity::new("b", SourceKind::Web, ""));
        store.insert(Entity::new("c", SourceKind::Web, "more"));
        let pipeline = MinerPipeline::new().add(Box::new(FailOnEmpty));
        let stats = pipeline.run(&store);
        assert_eq!(stats.processed, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn chain_stops_after_failing_miner() {
        let store = DataStore::single();
        store.insert(Entity::new("a", SourceKind::Web, ""));
        let pipeline = MinerPipeline::new()
            .add(Box::new(FailOnEmpty))
            .add(Box::new(UppercaseCounter));
        pipeline.run(&store);
        let e = store.get(wf_types::DocId(0)).unwrap();
        // second miner never ran
        assert!(!e.metadata.contains_key("uppercase"));
        assert_eq!(e.metadata.get("miner-error").unwrap(), "fail-on-empty");
    }

    #[test]
    fn corpus_miner_runs() {
        let store = seeded_store(2, 5);
        CountingCorpusMiner.run(&store).unwrap();
    }

    #[test]
    fn miner_names_in_order() {
        let pipeline = MinerPipeline::new()
            .add(Box::new(UppercaseCounter))
            .add(Box::new(Tagger));
        assert_eq!(pipeline.miner_names(), vec!["uppercase-counter", "tagger"]);
    }

    #[test]
    fn empty_store_is_noop() {
        let store = DataStore::new(3).unwrap();
        let stats = MinerPipeline::new().add(Box::new(Tagger)).run(&store);
        assert_eq!(stats.processed, 0);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.shard_sim_ms, vec![0, 0, 0]);
    }

    #[test]
    fn pipeline_counters_mirror_stats() {
        let store = DataStore::new(2).unwrap();
        store.insert(Entity::new("a", SourceKind::Web, "content"));
        store.insert(Entity::new("b", SourceKind::Web, ""));
        store.insert(Entity::new("c", SourceKind::Web, "more"));
        let pipeline = MinerPipeline::new().add(Box::new(FailOnEmpty));
        let stats = pipeline.run(&store);
        let snap = store.telemetry().snapshot();
        assert_eq!(snap.counter("pipeline.runs"), 1);
        assert_eq!(snap.counter("pipeline.entities_in"), 3);
        assert_eq!(snap.counter("pipeline.processed"), stats.processed as u64);
        assert_eq!(snap.counter("pipeline.failed"), stats.failed as u64);
        assert_eq!(
            snap.counter("pipeline.entities_in"),
            snap.counter("pipeline.processed") + snap.counter("pipeline.failed"),
            "counter conservation"
        );
        let spans = snap.histogram("span.pipeline.shard.sim_ms").unwrap();
        assert_eq!(spans.count as usize, stats.shard_sim_ms.len());
        assert_eq!(spans.sum, stats.shard_sim_ms.iter().sum::<u64>());
    }

    #[test]
    fn run_batched_matches_run_exactly() {
        let sequential = seeded_store(4, 20);
        let batched = seeded_store(4, 20);
        let pipeline = MinerPipeline::new()
            .add(Box::new(UppercaseCounter))
            .add(Box::new(Tagger));
        let a = pipeline.run(&sequential);
        let b = pipeline.run_batched(&batched, 7);
        assert_eq!((a.processed, a.failed), (b.processed, b.failed));
        for id in sequential.ids() {
            assert_eq!(
                sequential.get(id).unwrap(),
                batched.get(id).unwrap(),
                "batched entity diverged for {id:?}"
            );
        }
    }

    #[test]
    fn run_batched_falls_back_per_entity_after_a_failure() {
        let sequential = DataStore::new(2).unwrap();
        let batched = DataStore::new(2).unwrap();
        for store in [&sequential, &batched] {
            store.insert(Entity::new("a", SourceKind::Web, "content"));
            store.insert(Entity::new("b", SourceKind::Web, ""));
            store.insert(Entity::new("c", SourceKind::Web, "more"));
            store.insert(Entity::new("d", SourceKind::Web, ""));
        }
        let pipeline = MinerPipeline::new()
            .add(Box::new(FailOnEmpty))
            .add(Box::new(UppercaseCounter));
        let a = pipeline.run(&sequential);
        let b = pipeline.run_batched(&batched, 16);
        assert_eq!((a.processed, a.failed), (b.processed, b.failed));
        assert_eq!(b.processed, 2);
        assert_eq!(b.failed, 2);
        for id in sequential.ids() {
            assert_eq!(sequential.get(id).unwrap(), batched.get(id).unwrap());
        }
    }

    struct CostedTagger;
    impl EntityMiner for CostedTagger {
        fn name(&self) -> &str {
            "costed-tagger"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            Tagger.process(entity)
        }
        fn process_batch_traced(
            &self,
            batch: &mut [Entity],
            span: &mut TraceSpan,
        ) -> Vec<Result<()>> {
            let mut stage = span.child("tag");
            stage.advance(batch.len() as u64);
            stage.finish();
            span.advance(batch.len() as u64);
            self.process_batch(batch)
        }
    }

    #[test]
    fn run_batched_traced_matches_run_batched_and_charges_stage_spans() {
        let plain = seeded_store(3, 12);
        let traced = seeded_store(3, 12);
        let pipeline = MinerPipeline::new().add(Box::new(CostedTagger));
        let a = pipeline.run_batched(&plain, 5);
        let tele = traced.telemetry().clone();
        let mut op = tele.trace_root("op");
        let b = pipeline.run_batched_traced(&traced, 5, &mut op);
        let elapsed = op.elapsed_sim_ms();
        op.finish();
        assert_eq!((a.processed, a.failed), (b.processed, b.failed));
        for id in plain.ids() {
            assert_eq!(plain.get(id).unwrap(), traced.get(id).unwrap());
        }
        // each shard holds 4 docs in one batch of 5 ⇒ 4 sim-ms per shard,
        // shards run in parallel ⇒ the run costs as much as the slowest
        let slowest = *b.shard_sim_ms.iter().max().unwrap();
        assert_eq!(elapsed, slowest);
        assert_eq!(b.shard_sim_ms, vec![4, 4, 4]);
        let traces = tele.recorder().last_traces(1);
        let run = traces[0].1[0]
            .find("op/pipeline.run")
            .expect("pipeline.run");
        assert_eq!(run.children.len(), 3);
        for (shard, child) in run.children.iter().enumerate() {
            assert_eq!(child.name, format!("shard:{shard}"));
            assert_eq!(child.duration_sim_ms, b.shard_sim_ms[shard]);
            assert_eq!(child.children.len(), 1, "one batch ⇒ one stage span");
            assert_eq!(child.children[0].name, "tag");
        }
    }

    #[test]
    fn run_batched_batch_size_edges() {
        for batch_size in [0, 1, 1000] {
            let store = seeded_store(3, 10);
            let stats = MinerPipeline::new()
                .add(Box::new(Tagger))
                .run_batched(&store, batch_size);
            assert_eq!(stats.processed, 10, "batch_size {batch_size}");
            assert_eq!(stats.failed, 0);
            for id in store.ids() {
                assert_eq!(store.get(id).unwrap().version, 2, "one bump each");
            }
        }
    }

    struct PanicMiner;
    impl EntityMiner for PanicMiner {
        fn name(&self) -> &str {
            "panic-miner"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            if entity.text.contains("poison") {
                panic!("injected miner crash");
            }
            Ok(())
        }
    }

    #[test]
    fn worker_panic_is_contained() {
        let store = DataStore::new(2).unwrap();
        store.insert(Entity::new("a", SourceKind::Web, "fine")); // shard 0
        store.insert(Entity::new("b", SourceKind::Web, "poison pill")); // shard 1
        store.insert(Entity::new("c", SourceKind::Web, "fine")); // shard 0
        store.insert(Entity::new("d", SourceKind::Web, "fine")); // shard 1
        let pipeline = MinerPipeline::new().add(Box::new(PanicMiner));
        let stats = pipeline.run(&store);
        assert_eq!(stats.skipped_shards, 1, "crashed shard abandoned");
        assert_eq!(stats.processed + stats.failed, store.len());
        assert_eq!(stats.processed, 2, "healthy shard unaffected");
        assert_eq!(stats.failed, 2, "crashed shard counted failed");
    }

    #[test]
    fn crashed_shard_span_keeps_accrued_time_and_panicked_event() {
        let store = DataStore::new(2).unwrap();
        store.insert(Entity::new("a", SourceKind::Web, "fine")); // doc 0, shard 0
        store.insert(Entity::new("b", SourceKind::Web, "fine")); // doc 1, shard 1
        store.insert(Entity::new("c", SourceKind::Web, "fine")); // doc 2, shard 0
        store.insert(Entity::new("d", SourceKind::Web, "poison pill")); // doc 3, shard 1
        let plan = FaultPlan::new(7); // zero fault rates, 1 sim-ms per op
        let ctx = FaultContext {
            plan: Some(&plan),
            retry: RetryPolicy::default(),
            health: &[],
        };
        let stats = MinerPipeline::new()
            .add(Box::new(PanicMiner))
            .run_with(&store, &ctx);
        assert_eq!(stats.skipped_shards, 1);
        // the crashed shard mined doc 1 (1 ms) and reached doc 3 (1 ms)
        // before the panic: that time must not be lost
        assert_eq!(stats.shard_sim_ms, vec![2, 2]);

        let traces = store.telemetry().recorder().last_traces(1);
        assert_eq!(traces.len(), 1);
        let root = &traces[0].1[0];
        assert_eq!(root.name, "pipeline.run");
        let crashed = root.find("pipeline.run/shard:1").expect("shard:1 span");
        assert_eq!(crashed.duration_sim_ms, 2, "accrued sim time survives");
        assert!(
            crashed.events.iter().any(|e| e.label == "panicked"),
            "crash marked on the span: {:?}",
            crashed.events
        );
        // the update that panicked still recorded (on unwind, via Drop)
        assert!(root.find("shard:1/store.update:3").is_some());
    }

    #[test]
    fn traced_run_nests_under_parent_and_advances_its_clock() {
        let store = seeded_store(3, 9);
        let tele = store.telemetry().clone();
        let plan = FaultPlan::new(11);
        let ctx = FaultContext {
            plan: Some(&plan),
            retry: RetryPolicy::default(),
            health: &[],
        };
        let mut op = tele.trace_root("op");
        let stats = MinerPipeline::new()
            .add(Box::new(Tagger))
            .run_traced(&store, &ctx, &mut op);
        let elapsed = op.elapsed_sim_ms();
        op.finish();
        assert_eq!(stats.processed, 9);
        // parallel shards: the run costs as much as its slowest shard
        let slowest = *stats.shard_sim_ms.iter().max().unwrap();
        assert_eq!(elapsed, slowest);
        let traces = tele.recorder().last_traces(1);
        let run = traces[0].1[0]
            .find("op/pipeline.run")
            .expect("pipeline.run");
        assert_eq!(run.duration_sim_ms, slowest);
        assert_eq!(
            run.children.len(),
            3,
            "one span per shard: {:?}",
            run.children.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
        for (shard, child) in run.children.iter().enumerate() {
            assert_eq!(child.name, format!("shard:{shard}"));
            assert_eq!(child.duration_sim_ms, stats.shard_sim_ms[shard]);
            assert_eq!(child.start_sim_ms, run.start_sim_ms, "forked together");
        }
    }
}

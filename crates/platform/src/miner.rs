//! The miner framework: entity-level and corpus-level miners.
//!
//! "There are two types of miners in WebFountain: entity-level and
//! corpus-level (cross-entity) miners. Entity-level miners process each
//! entity without information from neighboring entities, and typically
//! augment processed entities with the results. [...] corpus-level miners
//! require all or part of the entire data in store."
//!
//! [`MinerPipeline`] runs a chain of entity miners over every shard of a
//! [`DataStore`], one crossbeam-scoped worker per shard — the in-process
//! equivalent of WebFountain's per-node parallelism.

use crate::entity::Entity;
use crate::store::DataStore;
use wf_types::{NodeId, Result};

/// An entity-level miner: sees one entity at a time and augments it.
pub trait EntityMiner: Send + Sync {
    /// Stable miner name (used in annotations and stats).
    fn name(&self) -> &str;

    /// Processes one entity in place.
    fn process(&self, entity: &mut Entity) -> Result<()>;
}

/// A corpus-level miner: sees the whole store.
pub trait CorpusMiner: Send + Sync {
    fn name(&self) -> &str;

    /// Runs over the full store (read or write through the store API).
    fn run(&self, store: &DataStore) -> Result<()>;
}

/// Per-run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Entities processed successfully.
    pub processed: usize,
    /// Entities whose processing returned an error (skipped, not fatal).
    pub failed: usize,
}

/// A chain of entity miners executed in order over each entity.
#[derive(Default)]
pub struct MinerPipeline {
    miners: Vec<Box<dyn EntityMiner>>,
}

impl MinerPipeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a miner to the chain.
    #[allow(clippy::should_implement_trait)] // builder-style chain, not arithmetic
    pub fn add(mut self, miner: Box<dyn EntityMiner>) -> Self {
        self.miners.push(miner);
        self
    }

    /// Names of the chained miners, in order.
    pub fn miner_names(&self) -> Vec<&str> {
        self.miners.iter().map(|m| m.name()).collect()
    }

    /// Runs the chain over every entity of the store, one worker thread per
    /// shard. Errors from individual entities are counted, not propagated:
    /// a malformed page must not stall the cluster.
    pub fn run(&self, store: &DataStore) -> PipelineStats {
        let shard_count = store.shard_count();
        let results: Vec<PipelineStats> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..shard_count)
                .map(|shard| {
                    scope.spawn(move |_| self.run_shard(store, NodeId(shard as u32)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("miner worker must not panic"))
                .collect()
        })
        .expect("crossbeam scope");
        let mut total = PipelineStats::default();
        for r in results {
            total.processed += r.processed;
            total.failed += r.failed;
        }
        total
    }

    /// Runs the chain over one shard (sequentially within the shard).
    fn run_shard(&self, store: &DataStore, node: NodeId) -> PipelineStats {
        let mut stats = PipelineStats::default();
        for id in store.shard_ids(node) {
            let outcome = store.update(id, |entity| {
                for miner in &self.miners {
                    if miner.process(entity).is_err() {
                        // mark and stop the chain for this entity
                        entity
                            .metadata
                            .insert("miner-error".into(), miner.name().to_string());
                        break;
                    }
                }
            });
            match outcome {
                Ok(()) => {
                    // check whether a miner flagged an error
                    if store
                        .get(id)
                        .ok()
                        .is_some_and(|e| e.metadata.contains_key("miner-error"))
                    {
                        stats.failed += 1;
                    } else {
                        stats.processed += 1;
                    }
                }
                Err(_) => stats.failed += 1,
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Annotation, SourceKind};
    use wf_types::{Error, Span};

    struct UppercaseCounter;
    impl EntityMiner for UppercaseCounter {
        fn name(&self) -> &str {
            "uppercase-counter"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            let n = entity.text.chars().filter(|c| c.is_uppercase()).count();
            entity
                .metadata
                .insert("uppercase".into(), n.to_string());
            Ok(())
        }
    }

    struct Tagger;
    impl EntityMiner for Tagger {
        fn name(&self) -> &str {
            "tagger"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            let len = entity.text.len();
            entity.annotate(Annotation::new("whole-doc", Span::new(0, len)));
            Ok(())
        }
    }

    struct FailOnEmpty;
    impl EntityMiner for FailOnEmpty {
        fn name(&self) -> &str {
            "fail-on-empty"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            if entity.text.is_empty() {
                Err(Error::Config("empty entity".into()))
            } else {
                Ok(())
            }
        }
    }

    struct CountingCorpusMiner;
    impl CorpusMiner for CountingCorpusMiner {
        fn name(&self) -> &str {
            "counting"
        }
        fn run(&self, store: &DataStore) -> Result<()> {
            // aggregate statistic example: total text length
            let mut total = 0usize;
            store.for_each(|e| total += e.text.len());
            assert!(total > 0);
            Ok(())
        }
    }

    fn seeded_store(shards: usize, docs: usize) -> DataStore {
        let store = DataStore::new(shards).unwrap();
        for i in 0..docs {
            store.insert(Entity::new(
                format!("uri://{i}"),
                SourceKind::Web,
                format!("Document Number {i}"),
            ));
        }
        store
    }

    #[test]
    fn pipeline_processes_all_entities() {
        let store = seeded_store(4, 20);
        let pipeline = MinerPipeline::new()
            .add(Box::new(UppercaseCounter))
            .add(Box::new(Tagger));
        let stats = pipeline.run(&store);
        assert_eq!(stats.processed, 20);
        assert_eq!(stats.failed, 0);
        for id in store.ids() {
            let e = store.get(id).unwrap();
            assert!(e.metadata.contains_key("uppercase"));
            assert_eq!(e.annotations_of("whole-doc").count(), 1);
            assert_eq!(e.version, 2, "each entity updated once");
        }
    }

    #[test]
    fn miner_errors_are_counted_not_fatal() {
        let store = DataStore::new(2).unwrap();
        store.insert(Entity::new("a", SourceKind::Web, "content"));
        store.insert(Entity::new("b", SourceKind::Web, ""));
        store.insert(Entity::new("c", SourceKind::Web, "more"));
        let pipeline = MinerPipeline::new().add(Box::new(FailOnEmpty));
        let stats = pipeline.run(&store);
        assert_eq!(stats.processed, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn chain_stops_after_failing_miner() {
        let store = DataStore::single();
        store.insert(Entity::new("a", SourceKind::Web, ""));
        let pipeline = MinerPipeline::new()
            .add(Box::new(FailOnEmpty))
            .add(Box::new(UppercaseCounter));
        pipeline.run(&store);
        let e = store.get(wf_types::DocId(0)).unwrap();
        // second miner never ran
        assert!(!e.metadata.contains_key("uppercase"));
        assert_eq!(e.metadata.get("miner-error").unwrap(), "fail-on-empty");
    }

    #[test]
    fn corpus_miner_runs() {
        let store = seeded_store(2, 5);
        CountingCorpusMiner.run(&store).unwrap();
    }

    #[test]
    fn miner_names_in_order() {
        let pipeline = MinerPipeline::new()
            .add(Box::new(UppercaseCounter))
            .add(Box::new(Tagger));
        assert_eq!(pipeline.miner_names(), vec!["uppercase-counter", "tagger"]);
    }

    #[test]
    fn empty_store_is_noop() {
        let store = DataStore::new(3).unwrap();
        let stats = MinerPipeline::new().add(Box::new(Tagger)).run(&store);
        assert_eq!(stats, PipelineStats::default());
    }
}

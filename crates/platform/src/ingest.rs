//! Data acquisition: crawler and ingestors.
//!
//! "Large-scale Web content acquisition is done by Web crawlers.
//! Acquisition of other sources [...] is done by a set of ingestors that
//! handle the unique delivery method and format of each source." Our
//! ingestors normalize raw documents from any source into [`Entity`]s and
//! feed the [`DataStore`], optionally indexing as they go.

use crate::entity::{Entity, SourceKind};
use crate::index::Indexer;
use crate::store::DataStore;
use std::collections::BTreeMap;
use wf_types::DocId;

/// A raw document as delivered by some source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDocument {
    pub uri: String,
    pub source: SourceKind,
    pub text: String,
    pub metadata: BTreeMap<String, String>,
}

impl RawDocument {
    pub fn new(uri: impl Into<String>, source: SourceKind, text: impl Into<String>) -> Self {
        RawDocument {
            uri: uri.into(),
            source,
            text: text.into(),
            metadata: BTreeMap::new(),
        }
    }

    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }
}

/// Ingest statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    pub documents: usize,
    pub bytes: usize,
}

/// Normalizes raw documents into the store (and index, when given).
pub struct Ingestor<'a> {
    store: &'a DataStore,
    indexer: Option<&'a Indexer>,
    stats: IngestStats,
}

impl<'a> Ingestor<'a> {
    pub fn new(store: &'a DataStore) -> Self {
        Ingestor {
            store,
            indexer: None,
            stats: IngestStats::default(),
        }
    }

    /// Also index every ingested entity.
    pub fn with_indexer(mut self, indexer: &'a Indexer) -> Self {
        self.indexer = Some(indexer);
        self
    }

    /// Ingests one document; returns its assigned id.
    pub fn ingest(&mut self, doc: RawDocument) -> DocId {
        self.stats.documents += 1;
        self.stats.bytes += doc.text.len();
        let mut entity = Entity::new(doc.uri, doc.source, doc.text);
        entity.metadata = doc.metadata;
        let id = self.store.insert(entity);
        if let Some(indexer) = self.indexer {
            // fetch back with the assigned id so conceptual tokens see it
            if let Ok(stored) = self.store.get(id) {
                indexer.index_entity(&stored);
            }
        }
        id
    }

    /// Ingests a batch; returns assigned ids in order.
    pub fn ingest_batch<I: IntoIterator<Item = RawDocument>>(&mut self, docs: I) -> Vec<DocId> {
        docs.into_iter().map(|d| self.ingest(d)).collect()
    }

    /// Running statistics.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Query;

    #[test]
    fn ingest_assigns_ids_and_counts() {
        let store = DataStore::new(2).unwrap();
        let mut ing = Ingestor::new(&store);
        let ids = ing.ingest_batch(vec![
            RawDocument::new("u1", SourceKind::Web, "hello world"),
            RawDocument::new("u2", SourceKind::News, "breaking news"),
        ]);
        assert_eq!(ids, vec![DocId(0), DocId(1)]);
        assert_eq!(ing.stats().documents, 2);
        assert_eq!(ing.stats().bytes, "hello world".len() + "breaking news".len());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn metadata_flows_through() {
        let store = DataStore::single();
        let mut ing = Ingestor::new(&store);
        let id = ing.ingest(
            RawDocument::new("u", SourceKind::Web, "text").with_metadata("domain", "camera"),
        );
        assert_eq!(
            store.get(id).unwrap().metadata.get("domain").unwrap(),
            "camera"
        );
    }

    #[test]
    fn indexing_during_ingest() {
        let store = DataStore::single();
        let indexer = Indexer::new();
        let mut ing = Ingestor::new(&store).with_indexer(&indexer);
        ing.ingest(RawDocument::new("u", SourceKind::Web, "the quick fox"));
        assert_eq!(indexer.doc_count(), 1);
        assert_eq!(
            indexer.query(&Query::Term("quick".into())).unwrap(),
            vec![DocId(0)]
        );
    }
}

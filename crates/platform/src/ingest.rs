//! Data acquisition: crawler and ingestors.
//!
//! "Large-scale Web content acquisition is done by Web crawlers.
//! Acquisition of other sources [...] is done by a set of ingestors that
//! handle the unique delivery method and format of each source." Our
//! ingestors normalize raw documents from any source into [`Entity`]s and
//! feed the [`DataStore`], optionally indexing as they go.

use crate::entity::{Entity, SourceKind};
use crate::faults::{FaultKind, FaultPlan, FaultStream};
use crate::index::Indexer;
use crate::store::DataStore;
use crate::telemetry::Counter;
use crate::trace::TraceSpan;
use std::collections::BTreeMap;
use std::sync::Arc;
use wf_types::{DocId, Error, Result, RetryPolicy};

/// A raw document as delivered by some source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDocument {
    pub uri: String,
    pub source: SourceKind,
    pub text: String,
    pub metadata: BTreeMap<String, String>,
}

impl RawDocument {
    pub fn new(uri: impl Into<String>, source: SourceKind, text: impl Into<String>) -> Self {
        RawDocument {
            uri: uri.into(),
            source,
            text: text.into(),
            metadata: BTreeMap::new(),
        }
    }

    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }
}

/// Ingest statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    pub documents: usize,
    pub bytes: usize,
    /// Documents dropped after exhausting retries against injected faults.
    pub failed: usize,
    /// Retries performed against transient injected faults.
    pub retries: u64,
}

/// Ingest-path instruments, mirroring [`IngestStats`] into the store's
/// telemetry registry (DESIGN.md §8).
struct IngestMetrics {
    documents: Arc<Counter>,
    bytes: Arc<Counter>,
    failed: Arc<Counter>,
    retries: Arc<Counter>,
}

impl IngestMetrics {
    fn resolve(store: &DataStore) -> Self {
        let tele = store.telemetry();
        IngestMetrics {
            documents: tele.counter("ingest.documents"),
            bytes: tele.counter("ingest.bytes"),
            failed: tele.counter("ingest.failed"),
            retries: tele.counter("ingest.retries"),
        }
    }
}

/// Normalizes raw documents into the store (and index, when given).
pub struct Ingestor<'a> {
    store: &'a DataStore,
    indexer: Option<&'a Indexer>,
    stats: IngestStats,
    metrics: IngestMetrics,
    faults: Option<FaultStream>,
    retry: RetryPolicy,
}

impl<'a> Ingestor<'a> {
    pub fn new(store: &'a DataStore) -> Self {
        Ingestor {
            store,
            indexer: None,
            stats: IngestStats::default(),
            metrics: IngestMetrics::resolve(store),
            faults: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Also index every ingested entity.
    pub fn with_indexer(mut self, indexer: &'a Indexer) -> Self {
        self.indexer = Some(indexer);
        self
    }

    /// Subject every ingest to the plan's `"ingest"` fault stream, retried
    /// per `retry` ([`Ingestor::try_ingest`] then becomes fallible).
    pub fn with_faults(mut self, plan: &FaultPlan, retry: RetryPolicy) -> Self {
        self.faults = Some(plan.stream("ingest"));
        self.retry = retry;
        self
    }

    /// Ingests one document; returns its assigned id. Infallible: faults
    /// are not consulted on this path (see [`Ingestor::try_ingest`]).
    pub fn ingest(&mut self, doc: RawDocument) -> DocId {
        self.stats.documents += 1;
        self.stats.bytes += doc.text.len();
        self.metrics.documents.inc();
        self.metrics.bytes.add(doc.text.len() as u64);
        self.store_doc(doc)
    }

    /// Ingests one document under the configured fault stream: transient
    /// faults (node blip, store conflict) are retried with backoff; a
    /// terminal fault or exhausted budget drops the document and counts it
    /// in `stats().failed`.
    pub fn try_ingest(&mut self, doc: RawDocument) -> Result<DocId> {
        self.try_ingest_inner(doc, None)
    }

    /// [`Ingestor::try_ingest`] as a `doc:<seq>` child span under `parent`
    /// (`seq` is this ingestor's running document count). Injected faults,
    /// retries and timeouts become span events; the parent clock advances
    /// by the simulated time the ingest consumed.
    pub fn try_ingest_traced(&mut self, doc: RawDocument, parent: &mut TraceSpan) -> Result<DocId> {
        let seq = self.stats.documents;
        let mut span = parent.child(format!("doc:{seq}"));
        let result = self.try_ingest_inner(doc, Some(&mut span));
        match &result {
            Ok(id) => span.attr("id", id.0.to_string()),
            Err(e) => span.event(format!("error: {e}")),
        }
        let elapsed = span.elapsed_sim_ms();
        span.finish();
        parent.advance(elapsed);
        result
    }

    fn try_ingest_inner(
        &mut self,
        doc: RawDocument,
        mut span: Option<&mut TraceSpan>,
    ) -> Result<DocId> {
        let Some(stream) = self.faults.as_mut() else {
            return Ok(self.ingest(doc));
        };
        self.stats.documents += 1;
        self.stats.bytes += doc.text.len();
        self.metrics.documents.inc();
        self.metrics.bytes.add(doc.text.len() as u64);
        let mut elapsed = 0u64;
        for attempt in 0..=self.retry.max_retries {
            let fault = stream.draw();
            let latency = stream.latency_ms(fault);
            elapsed += latency;
            if let Some(s) = span.as_deref_mut() {
                s.advance(latency);
                if let Some(kind) = fault {
                    s.event(format!("fault:{}", kind.label()));
                }
            }
            if elapsed > self.retry.timeout_budget_ms {
                if let Some(s) = span.as_deref_mut() {
                    s.event("timeout");
                }
                self.stats.failed += 1;
                self.metrics.failed.inc();
                return Err(Error::Timeout(format!(
                    "ingest of {} exceeded {} sim ms",
                    doc.uri, self.retry.timeout_budget_ms
                )));
            }
            match fault {
                Some(FaultKind::ServiceError) => {
                    self.stats.failed += 1;
                    self.metrics.failed.inc();
                    return Err(Error::Service(format!(
                        "injected ingest error for {}",
                        doc.uri
                    )));
                }
                Some(FaultKind::NodeDown) | Some(FaultKind::StoreConflict) => {
                    if attempt == self.retry.max_retries {
                        break;
                    }
                    self.stats.retries += 1;
                    self.metrics.retries.inc();
                    let backoff = self.retry.backoff_for(attempt + 1);
                    elapsed += backoff;
                    if let Some(s) = span.as_deref_mut() {
                        s.advance(backoff);
                        s.event(format!("retry:{} backoff:{backoff}ms", attempt + 1));
                    }
                }
                Some(FaultKind::SlowResponse) | None => {
                    return Ok(self.store_doc(doc));
                }
            }
        }
        self.stats.failed += 1;
        self.metrics.failed.inc();
        Err(Error::Unavailable(format!(
            "ingest of {} failed after {} retries",
            doc.uri, self.retry.max_retries
        )))
    }

    fn store_doc(&mut self, doc: RawDocument) -> DocId {
        let mut entity = Entity::new(doc.uri, doc.source, doc.text);
        entity.metadata = doc.metadata;
        let id = self.store.insert(entity);
        if let Some(indexer) = self.indexer {
            // fetch back with the assigned id so conceptual tokens see it
            if let Ok(stored) = self.store.get(id) {
                indexer.index_entity(&stored);
            }
        }
        id
    }

    /// Ingests a batch; returns assigned ids in order (documents dropped
    /// by injected faults are skipped).
    pub fn ingest_batch<I: IntoIterator<Item = RawDocument>>(&mut self, docs: I) -> Vec<DocId> {
        docs.into_iter()
            .filter_map(|d| self.try_ingest(d).ok())
            .collect()
    }

    /// [`Ingestor::ingest_batch`] under an `ingest.batch` span: one
    /// `doc:<seq>` child per document, ingested sequentially on the
    /// simulated clock.
    pub fn ingest_batch_traced<I: IntoIterator<Item = RawDocument>>(
        &mut self,
        docs: I,
        parent: &mut TraceSpan,
    ) -> Vec<DocId> {
        let mut span = parent.child("ingest.batch");
        let ids: Vec<DocId> = docs
            .into_iter()
            .filter_map(|d| self.try_ingest_traced(d, &mut span).ok())
            .collect();
        span.attr("stored", ids.len().to_string());
        span.attr("documents", self.stats.documents.to_string());
        let elapsed = span.elapsed_sim_ms();
        span.finish();
        parent.advance(elapsed);
        ids
    }

    /// Running statistics.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Query;

    #[test]
    fn ingest_assigns_ids_and_counts() {
        let store = DataStore::new(2).unwrap();
        let mut ing = Ingestor::new(&store);
        let ids = ing.ingest_batch(vec![
            RawDocument::new("u1", SourceKind::Web, "hello world"),
            RawDocument::new("u2", SourceKind::News, "breaking news"),
        ]);
        assert_eq!(ids, vec![DocId(0), DocId(1)]);
        assert_eq!(ing.stats().documents, 2);
        assert_eq!(
            ing.stats().bytes,
            "hello world".len() + "breaking news".len()
        );
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn metadata_flows_through() {
        let store = DataStore::single();
        let mut ing = Ingestor::new(&store);
        let id = ing.ingest(
            RawDocument::new("u", SourceKind::Web, "text").with_metadata("domain", "camera"),
        );
        assert_eq!(
            store.get(id).unwrap().metadata.get("domain").unwrap(),
            "camera"
        );
    }

    #[test]
    fn faulted_ingest_retries_and_counts_drops() {
        use crate::faults::FaultRates;
        let store = DataStore::new(2).unwrap();
        let plan = FaultPlan::new(42).with_rates(FaultRates {
            store_conflict: 0.4,
            service_error: 0.1,
            ..FaultRates::default()
        });
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            timeout_budget_ms: 10_000,
        };
        let mut ing = Ingestor::new(&store).with_faults(&plan, retry);
        let docs: Vec<RawDocument> = (0..50)
            .map(|i| RawDocument::new(format!("u{i}"), SourceKind::Web, "text"))
            .collect();
        let ids = ing.ingest_batch(docs);
        let stats = ing.stats();
        assert_eq!(stats.documents, 50);
        assert_eq!(ids.len() + stats.failed, 50, "every doc stored or counted");
        assert_eq!(store.len(), ids.len());
        assert!(stats.retries > 0, "a 40% conflict rate must retry");
    }

    #[test]
    fn faultless_try_ingest_never_fails() {
        let store = DataStore::single();
        let mut ing = Ingestor::new(&store);
        assert_eq!(
            ing.try_ingest(RawDocument::new("u", SourceKind::Web, "x"))
                .unwrap(),
            DocId(0)
        );
        assert_eq!(ing.stats().failed, 0);
    }

    #[test]
    fn ingest_is_instrumented() {
        use crate::faults::FaultRates;
        let store = DataStore::new(2).unwrap();
        let plan = FaultPlan::new(42).with_rates(FaultRates {
            store_conflict: 0.4,
            service_error: 0.1,
            ..FaultRates::default()
        });
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            timeout_budget_ms: 10_000,
        };
        let mut ing = Ingestor::new(&store).with_faults(&plan, retry);
        for i in 0..50 {
            let _ = ing.try_ingest(RawDocument::new(format!("u{i}"), SourceKind::Web, "text"));
        }
        let stats = ing.stats();
        let snap = store.telemetry().snapshot();
        assert_eq!(snap.counter("ingest.documents"), stats.documents as u64);
        assert_eq!(snap.counter("ingest.bytes"), stats.bytes as u64);
        assert_eq!(snap.counter("ingest.failed"), stats.failed as u64);
        assert_eq!(snap.counter("ingest.retries"), stats.retries);
    }

    #[test]
    fn traced_batch_ingest_builds_sequential_doc_spans() {
        use crate::faults::FaultRates;
        let store = DataStore::new(2).unwrap();
        let tele = store.telemetry().clone();
        let plan = FaultPlan::new(42).with_rates(FaultRates {
            store_conflict: 0.4,
            service_error: 0.1,
            ..FaultRates::default()
        });
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            timeout_budget_ms: 10_000,
        };
        let mut ing = Ingestor::new(&store).with_faults(&plan, retry);
        let mut root = tele.trace_root("op");
        let docs: Vec<RawDocument> = (0..20)
            .map(|i| RawDocument::new(format!("u{i}"), SourceKind::Web, "text"))
            .collect();
        let ids = ing.ingest_batch_traced(docs, &mut root);
        let elapsed = root.elapsed_sim_ms();
        root.finish();
        let stats = ing.stats();

        let traces = tele.recorder().last_traces(1);
        let batch = traces[0].1[0].find("op/ingest.batch").expect("batch span");
        assert_eq!(batch.children.len(), 20, "one span per document");
        assert_eq!(batch.duration_sim_ms, elapsed, "batch time flows upward");
        for pair in batch.children.windows(2) {
            assert_eq!(
                pair[1].start_sim_ms,
                pair[0].end_sim_ms(),
                "docs ingest sequentially on the simulated clock"
            );
        }
        let retry_events: u64 = batch
            .children
            .iter()
            .flat_map(|c| &c.events)
            .filter(|e| e.label.starts_with("retry:"))
            .count() as u64;
        assert_eq!(retry_events, stats.retries, "every retry marked on a span");
        assert_eq!(batch.attrs.get("stored").unwrap(), &ids.len().to_string());
    }

    #[test]
    fn indexing_during_ingest() {
        let store = DataStore::single();
        let indexer = Indexer::new();
        let mut ing = Ingestor::new(&store).with_indexer(&indexer);
        ing.ingest(RawDocument::new("u", SourceKind::Web, "the quick fox"));
        assert_eq!(indexer.doc_count(), 1);
        assert_eq!(
            indexer.query(&Query::Term("quick".into())).unwrap(),
            vec![DocId(0)]
        );
    }
}

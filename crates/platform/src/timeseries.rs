//! Deterministic metrics-over-time: a fixed-capacity ring buffer of
//! [`TelemetrySnapshot`] scrapes on the simulated-ms clock.
//!
//! Point-in-time snapshots (PR 2) answer *what* a run cost; this module
//! answers *when* the cost accrued. A [`TimeSeriesStore`] is scraped
//! periodically — [`TimeSeriesStore::tick`] takes the current simulated
//! time and a snapshot closure, and scrapes only when a full interval has
//! elapsed, so wiring it into a hot loop is free between scrapes. The
//! ring keeps the most recent `capacity` samples (oldest evicted first,
//! evictions counted).
//!
//! [`TimeSeriesStore::timeline`] rolls the retained samples into
//! per-metric windows:
//!
//! - **counters**: `increase` (saturating delta) and `rate_milli`
//!   (events per simulated second, milli-units) per window. The first
//!   window is measured against an implicit all-zero baseline, so the
//!   summed increase over all windows telescopes to exactly the final
//!   counter value — a conservation law the property suite checks.
//! - **gauges**: `last`/`min`/`max` over the window's endpoints.
//! - **histograms**: per-window bucket deltas folded back into a
//!   synthetic [`HistogramSnapshot`], so `p50/p95/p99` are computed over
//!   only the observations that landed in that window.
//!
//! Everything is integer arithmetic over `BTreeMap`s; the table and JSON
//! exports are byte-identical for identical sample sequences.

use crate::telemetry::{HistogramSnapshot, TelemetrySnapshot};
use serde_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Default number of retained scrape samples.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 256;

/// Default scrape interval in simulated milliseconds.
pub const DEFAULT_SCRAPE_INTERVAL_MS: u64 = 50;

/// A fixed-capacity ring of `(scrape_sim_ms, snapshot)` samples.
pub struct TimeSeriesStore {
    capacity: usize,
    interval_ms: u64,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    samples: VecDeque<(u64, TelemetrySnapshot)>,
    scrapes: u64,
    dropped: u64,
    last_scrape_ms: Option<u64>,
}

impl TimeSeriesStore {
    /// A store retaining up to `capacity` samples, scraping at most once
    /// per `interval_ms` of simulated time. Capacity 0 disables sampling
    /// entirely; interval 0 scrapes on every distinct tick time.
    pub fn new(capacity: usize, interval_ms: u64) -> Self {
        TimeSeriesStore {
            capacity,
            interval_ms,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Scrapes `make()` at simulated time `now_ms` if at least one full
    /// interval has passed since the last scrape (the first tick always
    /// scrapes). Returns whether a scrape happened; `make` is not called
    /// otherwise.
    pub fn tick(&self, now_ms: u64, make: impl FnOnce() -> TelemetrySnapshot) -> bool {
        if self.capacity == 0 {
            return false;
        }
        {
            let inner = self.inner.lock().expect("timeseries lock");
            if let Some(last) = inner.last_scrape_ms {
                if now_ms < last.saturating_add(self.interval_ms.max(1)) {
                    return false;
                }
            }
        }
        // snapshot outside the lock: `make` may itself touch telemetry
        self.scrape_at(now_ms, make());
        true
    }

    /// Unconditionally records one sample at `now_ms` (ticks and direct
    /// scrapes share the ring). Out-of-order times are clamped to be
    /// monotonic so windows never run backwards.
    pub fn scrape_at(&self, now_ms: u64, snapshot: TelemetrySnapshot) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("timeseries lock");
        let at = match inner.samples.back() {
            Some((last, _)) => now_ms.max(*last),
            None => now_ms,
        };
        inner.samples.push_back((at, snapshot));
        inner.scrapes += 1;
        inner.last_scrape_ms = Some(at);
        while inner.samples.len() > self.capacity {
            inner.samples.pop_front();
            inner.dropped += 1;
        }
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> Vec<(u64, TelemetrySnapshot)> {
        self.inner
            .lock()
            .expect("timeseries lock")
            .samples
            .iter()
            .cloned()
            .collect()
    }

    /// Total scrapes ever taken (including dropped ones).
    pub fn scrapes(&self) -> u64 {
        self.inner.lock().expect("timeseries lock").scrapes
    }

    /// Samples evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("timeseries lock").dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("timeseries lock").samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rolls the retained samples into a [`Timeline`].
    pub fn timeline(&self) -> Timeline {
        let inner = self.inner.lock().expect("timeseries lock");
        Timeline::from_samples(
            inner.samples.iter().cloned().collect::<Vec<_>>().as_slice(),
            inner.scrapes,
            inner.dropped,
        )
    }
}

/// One counter window: what the counter did between two scrapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    /// Saturating delta over the window.
    pub increase: u64,
    /// Events per simulated second, milli-units
    /// (`increase * 1_000_000 / window_ms`).
    pub rate_milli: u64,
}

/// One gauge window: endpoint values between two scrapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    pub last: i64,
    pub min: i64,
    pub max: i64,
}

/// One histogram window: percentiles over only that window's
/// observations (bucket deltas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    /// Observations that landed in this window.
    pub count: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// The rolled-up view of a scrape ring: per-metric window series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Simulated time of the first retained sample.
    pub start_ms: u64,
    /// Simulated time of the last retained sample.
    pub end_ms: u64,
    /// Total scrapes taken (including evicted).
    pub scrapes: u64,
    /// Samples evicted by the ring.
    pub dropped: u64,
    pub counters: BTreeMap<String, Vec<CounterWindow>>,
    pub gauges: BTreeMap<String, Vec<GaugeWindow>>,
    pub histograms: BTreeMap<String, Vec<HistogramWindow>>,
}

impl Timeline {
    /// Folds an ordered sample sequence into windows. The first window is
    /// measured against an implicit empty snapshot at time 0, so counter
    /// increases telescope to the final value.
    pub fn from_samples(samples: &[(u64, TelemetrySnapshot)], scrapes: u64, dropped: u64) -> Self {
        let mut timeline = Timeline {
            start_ms: samples.first().map(|(t, _)| *t).unwrap_or(0),
            end_ms: samples.last().map(|(t, _)| *t).unwrap_or(0),
            scrapes,
            dropped,
            ..Timeline::default()
        };
        let baseline = TelemetrySnapshot::default();
        let mut prev_ms = 0u64;
        let mut prev = &baseline;
        for (at, snap) in samples {
            let window_ms = at.saturating_sub(prev_ms).max(1);
            for (name, end) in &snap.counters {
                let start = prev.counter(name);
                let increase = end.saturating_sub(start);
                timeline
                    .counters
                    .entry(name.clone())
                    .or_default()
                    .push(CounterWindow {
                        start_ms: prev_ms,
                        end_ms: *at,
                        increase,
                        rate_milli: increase.saturating_mul(1_000_000) / window_ms,
                    });
            }
            for (name, end) in &snap.gauges {
                // a gauge absent from the previous sample contributes
                // only its endpoint (no phantom zero)
                let endpoints = match prev.gauges.get(name) {
                    Some(start) => (*start.min(end), *start.max(end)),
                    None => (*end, *end),
                };
                timeline
                    .gauges
                    .entry(name.clone())
                    .or_default()
                    .push(GaugeWindow {
                        start_ms: prev_ms,
                        end_ms: *at,
                        last: *end,
                        min: endpoints.0,
                        max: endpoints.1,
                    });
            }
            for (name, end) in &snap.histograms {
                let delta = delta_histogram(prev.histogram(name), end);
                timeline
                    .histograms
                    .entry(name.clone())
                    .or_default()
                    .push(HistogramWindow {
                        start_ms: prev_ms,
                        end_ms: *at,
                        count: delta.count,
                        p50: delta.percentile(50.0),
                        p95: delta.percentile(95.0),
                        p99: delta.percentile(99.0),
                    });
            }
            prev_ms = *at;
            prev = snap;
        }
        timeline
    }

    /// Windows of one counter (empty when never scraped).
    pub fn counter(&self, name: &str) -> &[CounterWindow] {
        self.counters.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summed `increase` over every window of one counter.
    pub fn total_increase(&self, name: &str) -> u64 {
        self.counter(name).iter().map(|w| w.increase).sum()
    }

    /// Canonical JSON export: stable key order, integers only.
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("start_ms".to_string(), Value::from(self.start_ms));
        root.insert("end_ms".to_string(), Value::from(self.end_ms));
        root.insert("scrapes".to_string(), Value::from(self.scrapes));
        root.insert("dropped".to_string(), Value::from(self.dropped));
        root.insert(
            "counters".to_string(),
            Value::Object(
                self.counters
                    .iter()
                    .map(|(name, windows)| {
                        let series = windows
                            .iter()
                            .map(|w| {
                                let mut o = BTreeMap::new();
                                o.insert("start_ms".to_string(), Value::from(w.start_ms));
                                o.insert("end_ms".to_string(), Value::from(w.end_ms));
                                o.insert("increase".to_string(), Value::from(w.increase));
                                o.insert("rate_milli".to_string(), Value::from(w.rate_milli));
                                Value::Object(o)
                            })
                            .collect();
                        (name.clone(), Value::Array(series))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Value::Object(
                self.gauges
                    .iter()
                    .map(|(name, windows)| {
                        let series = windows
                            .iter()
                            .map(|w| {
                                let mut o = BTreeMap::new();
                                o.insert("start_ms".to_string(), Value::from(w.start_ms));
                                o.insert("end_ms".to_string(), Value::from(w.end_ms));
                                o.insert("last".to_string(), Value::from(w.last));
                                o.insert("min".to_string(), Value::from(w.min));
                                o.insert("max".to_string(), Value::from(w.max));
                                Value::Object(o)
                            })
                            .collect();
                        (name.clone(), Value::Array(series))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "histograms".to_string(),
            Value::Object(
                self.histograms
                    .iter()
                    .map(|(name, windows)| {
                        let series = windows
                            .iter()
                            .map(|w| {
                                let mut o = BTreeMap::new();
                                o.insert("start_ms".to_string(), Value::from(w.start_ms));
                                o.insert("end_ms".to_string(), Value::from(w.end_ms));
                                o.insert("count".to_string(), Value::from(w.count));
                                o.insert("p50".to_string(), Value::from(w.p50));
                                o.insert("p95".to_string(), Value::from(w.p95));
                                o.insert("p99".to_string(), Value::from(w.p99));
                                Value::Object(o)
                            })
                            .collect();
                        (name.clone(), Value::Array(series))
                    })
                    .collect(),
            ),
        );
        Value::Object(root.into_iter().collect())
    }

    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("Value renders infallibly")
    }

    /// Aligned human-readable table: one line per metric window.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TIMELINE  span {}..{} sim-ms  scrapes {}  dropped {}",
            self.start_ms, self.end_ms, self.scrapes, self.dropped
        );
        if !self.counters.is_empty() {
            out.push_str("COUNTERS\n");
            for (name, windows) in &self.counters {
                for w in windows {
                    let _ = writeln!(
                        out,
                        "  {name:<44} [{:>6}..{:>6}] +{:<10} {:>10} milli/s",
                        w.start_ms, w.end_ms, w.increase, w.rate_milli
                    );
                }
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("GAUGES\n");
            for (name, windows) in &self.gauges {
                for w in windows {
                    let _ = writeln!(
                        out,
                        "  {name:<44} [{:>6}..{:>6}] last {:<8} min {:<8} max {}",
                        w.start_ms, w.end_ms, w.last, w.min, w.max
                    );
                }
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("HISTOGRAMS\n");
            for (name, windows) in &self.histograms {
                for w in windows {
                    let _ = writeln!(
                        out,
                        "  {name:<44} [{:>6}..{:>6}] n {:<8} p50 {:<6} p95 {:<6} p99 {}",
                        w.start_ms, w.end_ms, w.count, w.p50, w.p95, w.p99
                    );
                }
            }
        }
        out
    }
}

/// Bucket-wise saturating delta between two cumulative histogram
/// snapshots, as a synthetic snapshot suitable for `percentile()`.
fn delta_histogram(prev: Option<&HistogramSnapshot>, end: &HistogramSnapshot) -> HistogramSnapshot {
    let mut prev_buckets: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    let (prev_count, prev_sum) = match prev {
        Some(p) => {
            for (bound, count) in &p.buckets {
                prev_buckets.insert(*bound, *count);
            }
            (p.count, p.sum)
        }
        None => (0, 0),
    };
    let buckets: Vec<(Option<u64>, u64)> = end
        .buckets
        .iter()
        .map(|(bound, count)| {
            let before = prev_buckets.get(bound).copied().unwrap_or(0);
            (*bound, count.saturating_sub(before))
        })
        .filter(|(_, count)| *count > 0)
        .collect();
    HistogramSnapshot {
        count: end.count.saturating_sub(prev_count),
        sum: end.sum.saturating_sub(prev_sum),
        // windowed extrema are not tracked; clamp percentiles to the
        // cumulative max, which can only round a bucket bound down
        min: end.min,
        max: end.max,
        buckets,
        exemplars: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, i64)]) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn tick_scrapes_on_the_interval() {
        let store = TimeSeriesStore::new(16, 50);
        assert!(store.tick(0, || snap(&[("a", 1)], &[])));
        assert!(!store.tick(10, || unreachable!("not due yet")));
        assert!(!store.tick(49, || unreachable!("not due yet")));
        assert!(store.tick(50, || snap(&[("a", 3)], &[])));
        assert!(store.tick(230, || snap(&[("a", 7)], &[])));
        assert_eq!(store.len(), 3);
        assert_eq!(store.scrapes(), 3);
        assert_eq!(store.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest() {
        let store = TimeSeriesStore::new(2, 1);
        for i in 0..5u64 {
            store.scrape_at(i * 10, snap(&[("a", i + 1)], &[]));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped(), 3);
        let samples = store.samples();
        assert_eq!(samples[0].0, 30);
        assert_eq!(samples[1].0, 40);
    }

    #[test]
    fn counter_increase_telescopes_to_final_value_even_with_drops() {
        let store = TimeSeriesStore::new(2, 1);
        for i in 0..6u64 {
            store.scrape_at(i * 10, snap(&[("a", i * i)], &[]));
        }
        let timeline = store.timeline();
        // windows: baseline(0)→16 then 16→25: telescopes to 25
        assert_eq!(timeline.total_increase("a"), 25);
    }

    #[test]
    fn gauge_windows_track_endpoints() {
        let store = TimeSeriesStore::new(8, 1);
        store.scrape_at(10, snap(&[], &[("q", 5)]));
        store.scrape_at(20, snap(&[], &[("q", -3)]));
        let timeline = store.timeline();
        let windows = &timeline.gauges["q"];
        assert_eq!(
            windows[0],
            GaugeWindow {
                start_ms: 0,
                end_ms: 10,
                last: 5,
                min: 5,
                max: 5
            }
        );
        assert_eq!(
            windows[1],
            GaugeWindow {
                start_ms: 10,
                end_ms: 20,
                last: -3,
                min: -3,
                max: 5
            }
        );
    }

    #[test]
    fn histogram_windows_use_bucket_deltas() {
        let first = HistogramSnapshot {
            count: 2,
            sum: 6,
            min: 2,
            max: 4,
            buckets: vec![(Some(2), 1), (Some(4), 1)],
            exemplars: Vec::new(),
        };
        let second = HistogramSnapshot {
            count: 5,
            sum: 100,
            min: 2,
            max: 64,
            buckets: vec![(Some(2), 1), (Some(4), 1), (Some(64), 3)],
            exemplars: Vec::new(),
        };
        let make = |h: HistogramSnapshot| TelemetrySnapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: [("lat".to_string(), h)].into_iter().collect(),
        };
        let store = TimeSeriesStore::new(8, 1);
        store.scrape_at(10, make(first));
        store.scrape_at(20, make(second));
        let timeline = store.timeline();
        let windows = &timeline.histograms["lat"];
        assert_eq!(windows[0].count, 2);
        assert_eq!(windows[1].count, 3);
        // second window saw only the three 64-bucket observations
        assert_eq!(windows[1].p50, 64);
        assert_eq!(windows[1].p99, 64);
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let store = TimeSeriesStore::new(8, 1);
            store.scrape_at(5, snap(&[("a", 1), ("b", 2)], &[("g", 7)]));
            store.scrape_at(25, snap(&[("a", 4), ("b", 2)], &[("g", -1)]));
            store.timeline()
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_json_string(), b.to_json_string());
        assert_eq!(a.to_table(), b.to_table());
        assert!(a.to_json_string().contains("\"rate_milli\""));
    }

    #[test]
    fn capacity_zero_disables() {
        let store = TimeSeriesStore::new(0, 1);
        assert!(!store.tick(0, || unreachable!("disabled store never scrapes")));
        assert!(store.is_empty());
    }
}

//! The WebFountain entity model.
//!
//! "The WebFountain data store component manages entities that are
//! represented in XML. An entity is a referenceable unit of information
//! such as a Web page." Entities carry raw text, source metadata, and the
//! annotations miners attach (token spans, subject spots, sentiments,
//! conceptual tokens). We serialize with serde (JSON) and provide an XML
//! writer for fidelity with the paper's representation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wf_types::{DocId, Span};

/// Where an entity came from: WebFountain ingests many source types, each
/// with "its own unique delivery method and format".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Crawled web page.
    Web,
    /// Traditional news feed.
    News,
    /// Bulletin board / forum post.
    BulletinBoard,
    /// NNTP (usenet).
    Nntp,
    /// Structured or unstructured customer data.
    CustomerData,
}

impl SourceKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::Web => "web",
            SourceKind::News => "news",
            SourceKind::BulletinBoard => "bboard",
            SourceKind::Nntp => "nntp",
            SourceKind::CustomerData => "customer",
        }
    }
}

/// A typed, span-anchored annotation attached by a miner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Annotation type ("token", "spot", "sentiment", "named-entity", ...).
    pub kind: String,
    /// The text region the annotation covers.
    pub span: Span,
    /// Free-form attributes (synset id, polarity, miner name, ...).
    pub attrs: BTreeMap<String, String>,
}

impl Annotation {
    pub fn new(kind: impl Into<String>, span: Span) -> Self {
        Annotation {
            kind: kind.into(),
            span,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute setter.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }
}

/// A stored entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Store-assigned identifier.
    pub id: DocId,
    /// Source locator (URL, feed id, ...).
    pub uri: String,
    /// Source type.
    pub source: SourceKind,
    /// Raw document text.
    pub text: String,
    /// Document-level metadata (domain, language, crawl date, ...).
    pub metadata: BTreeMap<String, String>,
    /// Miner-attached annotations, in attachment order.
    pub annotations: Vec<Annotation>,
    /// Version counter, bumped on every mutation through the store.
    pub version: u64,
}

impl Entity {
    /// Creates an unstored entity (the store assigns the real id at
    /// ingest; this uses a placeholder).
    pub fn new(uri: impl Into<String>, source: SourceKind, text: impl Into<String>) -> Self {
        Entity {
            id: DocId(u64::MAX),
            uri: uri.into(),
            source,
            text: text.into(),
            metadata: BTreeMap::new(),
            annotations: Vec::new(),
            version: 0,
        }
    }

    /// Builder-style metadata setter.
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Adds an annotation.
    pub fn annotate(&mut self, annotation: Annotation) {
        self.annotations.push(annotation);
    }

    /// All annotations of a given kind.
    pub fn annotations_of<'a>(
        &'a self,
        kind: &'a str,
    ) -> impl Iterator<Item = &'a Annotation> + 'a {
        self.annotations.iter().filter(move |a| a.kind == kind)
    }

    /// Removes all annotations of a kind (used when a miner re-runs).
    pub fn clear_annotations(&mut self, kind: &str) {
        self.annotations.retain(|a| a.kind != kind);
    }

    /// Serializes the entity as the XML representation the paper's data
    /// store uses.
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(self.text.len() + 256);
        out.push_str(&format!(
            "<entity id=\"{}\" source=\"{}\" version=\"{}\">\n",
            self.id.as_u64(),
            self.source.as_str(),
            self.version
        ));
        out.push_str(&format!("  <uri>{}</uri>\n", xml_escape(&self.uri)));
        for (k, v) in &self.metadata {
            out.push_str(&format!(
                "  <meta name=\"{}\">{}</meta>\n",
                xml_escape(k),
                xml_escape(v)
            ));
        }
        out.push_str(&format!("  <text>{}</text>\n", xml_escape(&self.text)));
        for a in &self.annotations {
            out.push_str(&format!(
                "  <annotation kind=\"{}\" start=\"{}\" end=\"{}\"",
                xml_escape(&a.kind),
                a.span.start,
                a.span.end
            ));
            for (k, v) in &a.attrs {
                out.push_str(&format!(" {}=\"{}\"", xml_escape(k), xml_escape(v)));
            }
            out.push_str("/>\n");
        }
        out.push_str("</entity>\n");
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entity {
        let mut e = Entity::new(
            "http://example.com/review1",
            SourceKind::Web,
            "Great camera.",
        )
        .with_metadata("domain", "digital-camera");
        e.annotate(
            Annotation::new("spot", Span::new(6, 12))
                .with_attr("synset", "0")
                .with_attr("variant", "camera"),
        );
        e
    }

    #[test]
    fn annotations_by_kind() {
        let mut e = sample();
        e.annotate(Annotation::new("sentiment", Span::new(0, 13)).with_attr("polarity", "+"));
        assert_eq!(e.annotations_of("spot").count(), 1);
        assert_eq!(e.annotations_of("sentiment").count(), 1);
        assert_eq!(e.annotations_of("token").count(), 0);
    }

    #[test]
    fn clear_annotations_removes_only_kind() {
        let mut e = sample();
        e.annotate(Annotation::new("sentiment", Span::new(0, 13)));
        e.clear_annotations("spot");
        assert_eq!(e.annotations_of("spot").count(), 0);
        assert_eq!(e.annotations_of("sentiment").count(), 1);
    }

    #[test]
    fn xml_round_trip_shape() {
        let xml = sample().to_xml();
        assert!(xml.starts_with("<entity "));
        assert!(xml.contains("<meta name=\"domain\">digital-camera</meta>"));
        assert!(xml.contains("annotation kind=\"spot\""));
        assert!(xml.ends_with("</entity>\n"));
    }

    #[test]
    fn xml_escapes_special_characters() {
        let e = Entity::new("http://a?q=<&>", SourceKind::News, "1 < 2 & \"three\"");
        let xml = e.to_xml();
        assert!(xml.contains("&lt;&amp;&gt;"));
        assert!(xml.contains("1 &lt; 2 &amp; &quot;three&quot;"));
    }

    #[test]
    fn serde_json_round_trip() {
        let e = sample();
        let json = serde_json::to_string(&e).unwrap();
        let back: Entity = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        let spot = e.annotations_of("spot").next().unwrap();
        assert_eq!(spot.attr("synset"), Some("0"));
        assert_eq!(spot.attr("missing"), None);
    }
}

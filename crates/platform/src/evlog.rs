//! Deterministic structured event log — the third observability pillar.
//!
//! Metrics (PR 2) say *how much*, traces (PR 3) say *where the time
//! went*; this module adds the *narrative*: leveled records with a
//! stable `target` path, `key=value` fields, and trace/span correlation
//! ids, accumulated in a fixed-capacity ring with full drop accounting.
//!
//! **Conservation law.** Every emission is accounted for exactly once:
//! `emitted == kept + sampled + dropped`, where `sampled` counts
//! records suppressed by the per-`(target, level)` token bucket before
//! they reach the ring, `dropped` counts records evicted by capacity
//! pressure (or refused by a zero-capacity ring), and `kept` is what
//! the ring still holds.
//!
//! **Determinism.** Records are stamped with **simulated** milliseconds
//! (the same virtual clock as faults, traces, and serving), never wall
//! time. The token-bucket sampler refills on that clock, so sampling
//! decisions replay exactly as long as each `(target, level)` key is
//! emitted from a single logical timeline — which the instrumented hot
//! paths guarantee by scoping targets per shard (`miner.shard:3`,
//! `store.shard:0`, `durable.shard:1`) or per single-threaded loop
//! (`serving.loop`, `bus.svc:search`). Raw trace ids are allocated from
//! atomics, so exports never print them: [`EvLog::snapshot`] renumbers
//! traces canonically (ascending raw id — root allocation order, which
//! is deterministic because top-level operations open on one thread)
//! and sorts records by `(sim_ms, target, level, message, fields)`.
//! Same seed ⇒ byte-identical text and JSON exports.

use crate::trace::{SpanId, TraceId, TraceSpan};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default ring capacity (matches the flight recorder's scale).
pub const DEFAULT_EVLOG_CAPACITY: usize = 4096;
/// Default token-bucket burst per `(target, level)` key.
pub const DEFAULT_SAMPLE_BURST: u64 = 64;
/// Default simulated ms per token refill (0 disables sampling).
pub const DEFAULT_SAMPLE_REFILL_MS: u64 = 8;

/// Record severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
}

impl Level {
    pub const ALL: [Level; 4] = [Level::Error, Level::Warn, Level::Info, Level::Debug];

    /// Stable lowercase label used in exports and the filter grammar.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a label back to a level (filter grammar, JSON import).
    pub fn parse(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown level {other:?} (error|warn|info|debug)")),
        }
    }

    /// Severity rank: error=0 … debug=3 (filters keep `rank <= max`).
    pub fn rank(self) -> u8 {
        match self {
            Level::Error => 0,
            Level::Warn => 1,
            Level::Info => 2,
            Level::Debug => 3,
        }
    }
}

/// One structured log record as emitted (raw correlation ids retained;
/// exports go through the canonicalizing [`EvLogSnapshot`] instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvRecord {
    /// Simulated-clock timestamp.
    pub sim_ms: u64,
    pub level: Level,
    /// Stable dotted emission-site path (`bus.svc:search`,
    /// `miner.shard:2`); scoped so one logical timeline owns each key.
    pub target: String,
    pub message: String,
    /// Sorted `key=value` context fields.
    pub fields: BTreeMap<String, String>,
    /// Owning trace, when emitted from a traced path.
    pub trace: Option<TraceId>,
    /// Emitting span within the trace.
    pub span: Option<SpanId>,
}

/// Per-`(target, level)` token bucket, refilled on the simulated clock.
#[derive(Debug)]
struct SampleBucket {
    tokens: u64,
    last_refill_ms: u64,
}

/// The fixed-capacity event-log ring with drop accounting and
/// deterministic sampling. Owned by [`crate::telemetry::Telemetry`];
/// hot paths resolve the `Arc` once and emit lock-cheaply.
#[derive(Debug)]
pub struct EvLog {
    /// `seq % capacity` indexes a slot; eviction is oldest-first.
    slots: Vec<Mutex<Option<(u64, EvRecord)>>>,
    next_seq: AtomicU64,
    emitted: AtomicU64,
    sampled: AtomicU64,
    dropped: AtomicU64,
    burst: u64,
    refill_every_ms: u64,
    buckets: Mutex<BTreeMap<(String, Level), SampleBucket>>,
    /// Capacity 0 disables the log entirely (emit becomes a no-op, no
    /// accounting) — the "log-off" arm of the overhead bench.
    enabled: bool,
}

impl Default for EvLog {
    fn default() -> Self {
        EvLog::with_capacity(DEFAULT_EVLOG_CAPACITY)
    }
}

impl EvLog {
    /// A ring holding up to `capacity` records (0 disables logging
    /// entirely), with default sampling.
    pub fn with_capacity(capacity: usize) -> EvLog {
        EvLog {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next_seq: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            burst: DEFAULT_SAMPLE_BURST,
            refill_every_ms: DEFAULT_SAMPLE_REFILL_MS,
            buckets: Mutex::new(BTreeMap::new()),
            enabled: capacity > 0,
        }
    }

    /// Overrides the sampler: each `(target, level)` key starts with
    /// `burst` tokens and regains one every `refill_every_ms` simulated
    /// ms. `refill_every_ms == 0` disables sampling (everything admitted).
    pub fn with_sampling(mut self, burst: u64, refill_every_ms: u64) -> EvLog {
        self.burst = burst;
        self.refill_every_ms = refill_every_ms;
        self
    }

    /// Whether emissions are recorded at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total emissions offered (before sampling and eviction).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Emissions suppressed by the token-bucket sampler.
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Admitted records later evicted by capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records still retained: `emitted - sampled - dropped`.
    pub fn kept(&self) -> u64 {
        self.emitted() - self.sampled() - self.dropped()
    }

    /// Token-bucket admission for one `(target, level)` arrival.
    fn admit(&self, target: &str, level: Level, sim_ms: u64) -> bool {
        if self.refill_every_ms == 0 {
            return true;
        }
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry((target.to_string(), level))
            .or_insert(SampleBucket {
                tokens: self.burst,
                last_refill_ms: 0,
            });
        if sim_ms > bucket.last_refill_ms {
            let refilled = (sim_ms - bucket.last_refill_ms) / self.refill_every_ms;
            if refilled > 0 {
                bucket.tokens = (bucket.tokens + refilled).min(self.burst);
                bucket.last_refill_ms += refilled * self.refill_every_ms;
            }
        }
        if bucket.tokens > 0 {
            bucket.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Offers one record; returns whether it was admitted to the ring.
    /// A full ring evicts its oldest record (counted as `dropped`).
    pub fn emit(&self, rec: EvRecord) -> bool {
        if !self.enabled {
            return false;
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
        if !self.admit(&rec.target, rec.level, rec.sim_ms) {
            self.sampled.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let evicted = self.slots[(seq as usize) % self.slots.len()]
            .lock()
            .replace((seq, rec))
            .is_some();
        if evicted {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Convenience emission without trace context.
    pub fn event(
        &self,
        level: Level,
        target: &str,
        sim_ms: u64,
        message: impl Into<String>,
        fields: &[(&str, String)],
    ) -> bool {
        if !self.enabled {
            return false;
        }
        self.emit(EvRecord {
            sim_ms,
            level,
            target: target.to_string(),
            message: message.into(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            trace: None,
            span: None,
        })
    }

    /// Convenience emission correlated to `span`: the record inherits
    /// the span's trace/span ids and its current simulated time.
    pub fn event_in(
        &self,
        level: Level,
        span: &TraceSpan,
        target: &str,
        message: impl Into<String>,
        fields: &[(&str, String)],
    ) -> bool {
        if !self.enabled {
            return false;
        }
        self.emit(EvRecord {
            sim_ms: span.start_sim_ms() + span.elapsed_sim_ms(),
            level,
            target: target.to_string(),
            message: message.into(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            trace: Some(span.trace_id()),
            span: Some(span.span_id()),
        })
    }

    /// Retained records in emission-sequence order (raw ids intact —
    /// in-process joins against the flight recorder use these).
    pub fn records(&self) -> Vec<EvRecord> {
        let mut out: Vec<(u64, EvRecord)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Canonicalized point-in-time copy: counters plus records with
    /// renumbered trace ids, in deterministic order. The exportable
    /// view behind `wfsm logs`.
    pub fn snapshot(&self) -> EvLogSnapshot {
        let records = self.records();
        // canonical trace numbering: ascending raw id == the order the
        // top-level operations opened, which same-seed runs replay
        let mut traces: Vec<u64> = records
            .iter()
            .filter_map(|r| r.trace.map(|t| t.0))
            .collect();
        traces.sort_unstable();
        traces.dedup();
        let canonical =
            |t: Option<TraceId>| t.map(|t| traces.binary_search(&t.0).expect("present") as u64 + 1);
        let mut views: Vec<EvView> = records
            .iter()
            .map(|r| EvView {
                sim_ms: r.sim_ms,
                level: r.level,
                target: r.target.clone(),
                message: r.message.clone(),
                fields: r.fields.clone(),
                trace: canonical(r.trace),
            })
            .collect();
        views.sort();
        EvLogSnapshot {
            emitted: self.emitted(),
            kept: self.kept(),
            sampled: self.sampled(),
            dropped: self.dropped(),
            records: views,
        }
    }
}

/// One canonicalized record: raw span ids gone (interleaving-dependent),
/// trace renumbered 1..N in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvView {
    pub sim_ms: u64,
    pub level: Level,
    pub target: String,
    pub message: String,
    pub fields: BTreeMap<String, String>,
    /// Canonical 1-based trace number (shared with the snapshot's other
    /// records; `wfsm logs --trace N` filters on it).
    pub trace: Option<u64>,
}

impl Ord for EvView {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (
            self.sim_ms,
            &self.target,
            self.level.rank(),
            &self.message,
            &self.fields,
            self.trace,
        )
            .cmp(&(
                other.sim_ms,
                &other.target,
                other.level.rank(),
                &other.message,
                &other.fields,
                other.trace,
            ))
    }
}

impl PartialOrd for EvView {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Point-in-time, canonicalized event-log export with conservation
/// counters. Like `TelemetrySnapshot`, it round-trips through its own
/// JSON (`to_json_string` ↔ `from_json_str`) byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvLogSnapshot {
    pub emitted: u64,
    pub kept: u64,
    pub sampled: u64,
    pub dropped: u64,
    pub records: Vec<EvView>,
}

impl EvLogSnapshot {
    /// The conservation law every snapshot obeys.
    pub fn conserved(&self) -> bool {
        self.emitted == self.kept + self.sampled + self.dropped
    }

    /// A copy retaining only records matching `filter` (counters keep
    /// describing the full log — filtering is a view, not a re-run).
    pub fn filtered(&self, filter: &LogFilter) -> EvLogSnapshot {
        EvLogSnapshot {
            emitted: self.emitted,
            kept: self.kept,
            sampled: self.sampled,
            dropped: self.dropped,
            records: self
                .records
                .iter()
                .filter(|r| filter.matches(r))
                .cloned()
                .collect(),
        }
    }

    /// Fixed-layout text export: a counter header, then one line per
    /// record — `[  sim ms] LEVEL target message k=v … trace=N`.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "evlog: emitted={} kept={} sampled={} dropped={} shown={}\n",
            self.emitted,
            self.kept,
            self.sampled,
            self.dropped,
            self.records.len()
        );
        for r in &self.records {
            let _ = write!(
                out,
                "[{:>7}ms] {:<5} {} {}",
                r.sim_ms,
                r.level.label().to_uppercase(),
                r.target,
                r.message
            );
            for (k, v) in &r.fields {
                let _ = write!(out, " {k}={v}");
            }
            if let Some(t) = r.trace {
                let _ = write!(out, " trace={t}");
            }
            out.push('\n');
        }
        out
    }

    /// Canonical JSON value (sorted keys via `BTreeMap`-backed objects).
    pub fn to_json(&self) -> Value {
        let mut counters: BTreeMap<String, Value> = BTreeMap::new();
        counters.insert("dropped".into(), Value::from(self.dropped));
        counters.insert("emitted".into(), Value::from(self.emitted));
        counters.insert("kept".into(), Value::from(self.kept));
        counters.insert("sampled".into(), Value::from(self.sampled));
        let records: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                let mut obj: BTreeMap<String, Value> = BTreeMap::new();
                obj.insert(
                    "fields".into(),
                    Value::Object(
                        r.fields
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
                            .collect(),
                    ),
                );
                obj.insert("level".into(), Value::from(r.level.label()));
                obj.insert("message".into(), Value::from(r.message.as_str()));
                obj.insert("sim_ms".into(), Value::from(r.sim_ms));
                obj.insert("target".into(), Value::from(r.target.as_str()));
                obj.insert(
                    "trace".into(),
                    r.trace.map(Value::from).unwrap_or(Value::Null),
                );
                Value::Object(obj)
            })
            .collect();
        let mut root: BTreeMap<String, Value> = BTreeMap::new();
        root.insert("counters".into(), Value::Object(counters));
        root.insert("records".into(), Value::Array(records));
        Value::Object(root)
    }

    /// Pretty canonical JSON, newline-terminated: the `wfsm logs
    /// --format json` payload, byte-identical for same-seed runs.
    pub fn to_json_string(&self) -> String {
        let mut out =
            serde_json::to_string_pretty(&self.to_json()).expect("Value renders infallibly");
        out.push('\n');
        out
    }

    /// Parses [`EvLogSnapshot::to_json_string`] output back; the pair
    /// forms a fixpoint (`parse(export(s)) == s`).
    pub fn from_json_str(text: &str) -> Result<EvLogSnapshot, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("invalid evlog JSON: {e}"))?;
        let counters = need_object(&value, "counters")?;
        let records = match value.get("records") {
            Some(Value::Array(items)) => items,
            _ => return Err("evlog JSON missing \"records\" array".into()),
        };
        let mut views = Vec::with_capacity(records.len());
        for item in records {
            let fields = match item.get("fields") {
                Some(Value::Object(map)) => map
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| format!("record field {k:?} is not a string"))
                    })
                    .collect::<Result<BTreeMap<_, _>, String>>()?,
                _ => return Err("record missing \"fields\" object".into()),
            };
            let level = item
                .get("level")
                .and_then(Value::as_str)
                .ok_or("record missing \"level\"")
                .and_then(|s| Level::parse(s).map_err(|_| "record has invalid \"level\""))
                .map_err(String::from)?;
            let trace = match item.get("trace") {
                Some(Value::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("record \"trace\" is not a number")?),
            };
            views.push(EvView {
                sim_ms: need_u64(item, "sim_ms")?,
                level,
                target: need_str(item, "target")?,
                message: need_str(item, "message")?,
                fields,
                trace,
            });
        }
        Ok(EvLogSnapshot {
            emitted: need_u64(&Value::Object(counters.clone()), "emitted")?,
            kept: need_u64(&Value::Object(counters.clone()), "kept")?,
            sampled: need_u64(&Value::Object(counters.clone()), "sampled")?,
            dropped: need_u64(&Value::Object(counters.clone()), "dropped")?,
            records: views,
        })
    }
}

fn need_object<'a>(value: &'a Value, key: &str) -> Result<&'a BTreeMap<String, Value>, String> {
    match value.get(key) {
        Some(Value::Object(map)) => Ok(map),
        _ => Err(format!("evlog JSON missing {key:?} object")),
    }
}

fn need_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("evlog JSON missing numeric {key:?}"))
}

fn need_str(value: &Value, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("evlog JSON missing string {key:?}"))
}

/// The `wfsm logs` filter grammar, applied to canonicalized records:
/// `--level` caps verbosity (keep `rank <= level`), `--target` is a
/// prefix match, `--trace` matches the canonical trace number,
/// `--since`/`--until` bound `sim_ms` inclusively, and bare `key=value`
/// terms must all appear among a record's fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogFilter {
    pub max_level: Option<Level>,
    pub target_prefix: Option<String>,
    pub trace: Option<u64>,
    pub since: Option<u64>,
    pub until: Option<u64>,
    pub fields: BTreeMap<String, String>,
}

impl LogFilter {
    pub fn matches(&self, r: &EvView) -> bool {
        if let Some(max) = self.max_level {
            if r.level.rank() > max.rank() {
                return false;
            }
        }
        if let Some(prefix) = &self.target_prefix {
            if !r.target.starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(trace) = self.trace {
            if r.trace != Some(trace) {
                return false;
            }
        }
        if let Some(since) = self.since {
            if r.sim_ms < since {
                return false;
            }
        }
        if let Some(until) = self.until {
            if r.sim_ms > until {
                return false;
            }
        }
        self.fields.iter().all(|(k, v)| r.fields.get(k) == Some(v))
    }

    /// Adds one bare `key=value` filter term (the grammar's positional
    /// form); anything without `=` is malformed.
    pub fn add_term(&mut self, term: &str) -> Result<(), String> {
        match term.split_once('=') {
            Some((k, v)) if !k.is_empty() => {
                self.fields.insert(k.to_string(), v.to_string());
                Ok(())
            }
            _ => Err(format!("malformed filter {term:?} (expected key=value)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FlightRecorder;

    fn rec(sim_ms: u64, level: Level, target: &str, message: &str) -> EvRecord {
        EvRecord {
            sim_ms,
            level,
            target: target.to_string(),
            message: message.to_string(),
            fields: BTreeMap::new(),
            trace: None,
            span: None,
        }
    }

    #[test]
    fn conservation_holds_through_sampling_and_eviction() {
        let log = EvLog::with_capacity(4).with_sampling(8, 2);
        for i in 0..64 {
            log.emit(rec(i / 4, Level::Info, "t", "m"));
        }
        assert_eq!(log.emitted(), 64);
        assert_eq!(
            log.emitted(),
            log.kept() + log.sampled() + log.dropped(),
            "emitted == kept + sampled + dropped"
        );
        assert_eq!(log.kept() as usize, log.records().len());
        assert!(log.sampled() > 0, "bucket must have suppressed some");
        assert!(log.dropped() > 0, "ring must have evicted some");
        assert!(log.snapshot().conserved());
    }

    #[test]
    fn token_bucket_refills_on_the_simulated_clock() {
        let log = EvLog::with_capacity(64).with_sampling(2, 10);
        assert!(log.emit(rec(0, Level::Info, "t", "a")));
        assert!(log.emit(rec(0, Level::Info, "t", "b")));
        assert!(!log.emit(rec(5, Level::Info, "t", "c")), "burst exhausted");
        assert!(log.emit(rec(10, Level::Info, "t", "d")), "one token back");
        assert!(!log.emit(rec(11, Level::Info, "t", "e")));
        // independent keys have independent buckets
        assert!(log.emit(rec(11, Level::Error, "t", "f")));
        assert!(log.emit(rec(11, Level::Info, "u", "g")));
        assert_eq!(log.sampled(), 2);
    }

    #[test]
    fn zero_capacity_disables_logging_entirely() {
        let log = EvLog::with_capacity(0);
        assert!(!log.enabled());
        assert!(!log.emit(rec(0, Level::Error, "t", "m")));
        assert!(!log.event(Level::Error, "t", 0, "m", &[]));
        assert_eq!(log.emitted(), 0);
        assert!(log.records().is_empty());
    }

    #[test]
    fn sampling_can_be_disabled() {
        let log = EvLog::with_capacity(64).with_sampling(1, 0);
        for i in 0..32 {
            let message = format!("m{i}");
            assert!(log.emit(rec(0, Level::Debug, "hot", &message)));
        }
        assert_eq!(log.sampled(), 0);
        assert_eq!(log.kept(), 32);
    }

    #[test]
    fn snapshot_renumbers_traces_and_sorts_records() {
        let log = EvLog::with_capacity(16);
        let mut a = rec(5, Level::Warn, "b.t", "later");
        a.trace = Some(TraceId(901));
        let mut b = rec(1, Level::Error, "a.t", "earlier");
        b.trace = Some(TraceId(77));
        log.emit(a);
        log.emit(b);
        let snap = log.snapshot();
        assert_eq!(snap.records[0].message, "earlier");
        assert_eq!(snap.records[0].trace, Some(1), "raw 77 → canonical 1");
        assert_eq!(snap.records[1].trace, Some(2), "raw 901 → canonical 2");
        assert!(!snap.to_text().contains("901"), "raw ids never exported");
    }

    #[test]
    fn event_in_correlates_to_a_resolvable_trace() {
        let recorder = FlightRecorder::with_capacity(8);
        let log = EvLog::with_capacity(8);
        let mut span = recorder.root("op");
        span.advance(3);
        log.event_in(Level::Error, &span, "t", "boom", &[("k", "v".to_string())]);
        span.finish();
        let records = log.records();
        assert_eq!(records.len(), 1);
        let trace = records[0].trace.expect("correlated");
        assert!(recorder.contains_trace(trace));
        assert_eq!(records[0].sim_ms, 3);
        assert_eq!(records[0].fields.get("k").map(String::as_str), Some("v"));
    }

    #[test]
    fn json_export_parse_is_a_fixpoint() {
        let log = EvLog::with_capacity(8);
        log.event(
            Level::Warn,
            "store.shard:0",
            7,
            "get miss",
            &[("doc", "42".to_string())],
        );
        let mut traced = rec(9, Level::Error, "bus.svc:q", "timeout");
        traced.trace = Some(TraceId(3));
        log.emit(traced);
        let snap = log.snapshot();
        let text = snap.to_json_string();
        let back = EvLogSnapshot::from_json_str(&text).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.to_json_string(), text, "byte-identical re-export");
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(EvLogSnapshot::from_json_str("not json").is_err());
        assert!(EvLogSnapshot::from_json_str("{}").is_err());
        let no_records = r#"{"counters": {"dropped":0,"emitted":0,"kept":0,"sampled":0}}"#;
        assert!(EvLogSnapshot::from_json_str(no_records).is_err());
    }

    #[test]
    fn filter_grammar_matches_each_dimension() {
        let log = EvLog::with_capacity(16);
        log.event(
            Level::Error,
            "bus.svc:q",
            5,
            "boom",
            &[("doc", "1".to_string())],
        );
        log.event(
            Level::Info,
            "serving.loop",
            9,
            "shed",
            &[("doc", "2".to_string())],
        );
        let snap = log.snapshot();
        let level = LogFilter {
            max_level: Some(Level::Error),
            ..LogFilter::default()
        };
        assert_eq!(snap.filtered(&level).records.len(), 1);
        let target = LogFilter {
            target_prefix: Some("bus.".into()),
            ..LogFilter::default()
        };
        assert_eq!(snap.filtered(&target).records.len(), 1);
        let window = LogFilter {
            since: Some(6),
            until: Some(9),
            ..LogFilter::default()
        };
        assert_eq!(snap.filtered(&window).records.len(), 1);
        let mut field = LogFilter::default();
        field.add_term("doc=2").unwrap();
        assert_eq!(snap.filtered(&field).records.len(), 1);
        assert_eq!(snap.filtered(&field).records[0].message, "shed");
        assert!(field.add_term("nonsense").is_err());
        assert!(field.add_term("=value").is_err());
    }

    #[test]
    fn text_export_is_stable_and_human_readable() {
        let log = EvLog::with_capacity(8);
        log.event(
            Level::Warn,
            "durable.shard:1",
            12,
            "snapshot truncated",
            &[("declared", "8".to_string()), ("readable", "5".to_string())],
        );
        let text = log.snapshot().to_text();
        assert!(text.starts_with("evlog: emitted=1 kept=1 sampled=0 dropped=0 shown=1\n"));
        assert!(
            text.contains(
                "[     12ms] WARN  durable.shard:1 snapshot truncated declared=8 readable=5"
            ),
            "{text}"
        );
    }

    #[test]
    fn level_parse_round_trips() {
        for level in Level::ALL {
            assert_eq!(Level::parse(level.label()).unwrap(), level);
        }
        assert!(Level::parse("silly").is_err());
    }
}

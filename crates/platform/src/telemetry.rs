//! Deterministic observability: metrics and span tracing for the
//! simulated platform.
//!
//! The paper's cluster lives or dies by per-stage throughput (§5 budgets
//! ~10 docs/sec/node for the shallow-parser path), and the next round of
//! performance work needs a measurement substrate that can *prove* a
//! change moved a number. This module supplies it at laptop scale:
//!
//! - a [`Telemetry`] registry of named atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s, shared by every platform component of a
//!   [`Cluster`](crate::cluster::Cluster);
//! - lightweight [`Span`]s that accumulate **simulated** milliseconds (the
//!   same virtual clock the fault subsystem advances) — there is no
//!   wall-clock read anywhere, so identical seeds give byte-identical
//!   [`TelemetrySnapshot`]s;
//! - deterministic snapshot export: a human-readable table
//!   ([`TelemetrySnapshot::to_table`]) and canonical JSON with stable
//!   field ordering ([`TelemetrySnapshot::to_json_string`], backed by the
//!   `BTreeMap`-ordered `serde_json` shim), plus a parser
//!   ([`TelemetrySnapshot::from_json_str`]) so exported files round-trip.
//!
//! Metric names form a dotted taxonomy (`store.update.ok`,
//! `index.query.term`, `bus.faults.node_down`, `pipeline.processed`,
//! `span.pipeline.shard.sim_ms`); see DESIGN.md §8 for the full list.
//! Counters and histogram cells are plain relaxed atomics: hot paths pay
//! one `fetch_add`, and because every recorded value is itself
//! deterministic, concurrent merging cannot perturb a snapshot.

use crate::evlog::{EvLog, DEFAULT_EVLOG_CAPACITY};
use crate::trace::{FlightRecorder, TraceId, TraceSpan, DEFAULT_TRACE_CAPACITY};
use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (entity counts, live nodes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default exponential bucket ladder: upper bounds 1, 2, 4, … 65536, plus
/// an implicit overflow bucket. Suits both simulated-ms durations and
/// postings-scanned counts.
pub const DEFAULT_BUCKETS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// A bucket's representative observation: the trace it belongs to plus
/// the observed value, linking a latency histogram back to the flight
/// recorder (`wfsm trace` can dump the full causal tree).
///
/// Selection is deterministic: the **largest** value recorded into the
/// bucket wins, ties broken by the **smallest** trace id. Both rules are
/// commutative, so concurrent shard workers converge on the same exemplar
/// regardless of interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (simulated ms for latency histograms).
    pub value: u64,
    /// Raw [`TraceId`] of the trace the observation belongs to.
    pub trace: u64,
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]` (and greater than the
/// previous bound); one extra overflow bucket catches the rest. Bounds are
/// fixed at construction, so merging concurrent observations is pure
/// atomic addition and snapshots are deterministic. Observations recorded
/// via [`Histogram::record_exemplar`] additionally pin a per-bucket
/// [`Exemplar`] pointing at their trace.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    exemplars: Vec<Mutex<Option<Exemplar>>>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: (0..=bounds.len()).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation and offers it as the bucket's exemplar.
    /// The bucket keeps whichever observation is worst (max value; ties
    /// go to the smaller trace id), so an SLO breach always links to a
    /// representative trace of the slow path.
    pub fn record_exemplar(&self, value: u64, trace: TraceId) {
        self.record(value);
        let idx = self.bounds.partition_point(|&b| b < value);
        let mut slot = self.exemplars[idx].lock();
        let replace = match *slot {
            None => true,
            Some(e) => value > e.value || (value == e.value && trace.0 < e.trace),
        };
        if replace {
            *slot = Some(Exemplar {
                value,
                trace: trace.0,
            });
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `p`-th percentile (0..=100) from the bucket counts:
    /// the upper bound of the bucket containing the rank-`⌈p·count⌉`
    /// observation, clamped to the observed max (so single-value and
    /// overflow-heavy histograms report exact extremes). 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then(|| (self.bounds.get(i).copied(), c))
                })
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    let e = *slot.lock();
                    e.map(|e| (self.bounds.get(i).copied(), e))
                })
                .collect(),
        }
    }
}

/// A span in flight: accumulates simulated milliseconds and records them
/// into its histogram when finished (or dropped). Never reads wall time.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    sim_ms: u64,
    recorded: bool,
}

impl Span {
    /// Advances the span's simulated clock.
    pub fn advance(&mut self, sim_ms: u64) {
        self.sim_ms = self.sim_ms.saturating_add(sim_ms);
    }

    /// Simulated milliseconds accumulated so far.
    pub fn elapsed_ms(&self) -> u64 {
        self.sim_ms
    }

    /// Records the span and returns its duration.
    pub fn finish(mut self) -> u64 {
        self.record();
        self.sim_ms
    }

    fn record(&mut self) {
        if !self.recorded {
            self.recorded = true;
            self.hist.record(self.sim_ms);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// The metric registry: one per cluster (or per component under test).
///
/// Handles are get-or-create by name and cheap to clone; components
/// resolve them once at construction so hot paths touch only atomics.
/// Also owns the cluster's trace [`FlightRecorder`]; the snapshot merges
/// its `trace.spans` / `trace.evicted` totals into the counter section.
#[derive(Debug)]
pub struct Telemetry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    recorder: Arc<FlightRecorder>,
    evlog: Arc<EvLog>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
            recorder: FlightRecorder::with_capacity(DEFAULT_TRACE_CAPACITY),
            evlog: Arc::new(EvLog::with_capacity(DEFAULT_EVLOG_CAPACITY)),
        }
    }
}

impl Telemetry {
    /// A fresh, empty, shareable registry with the default trace
    /// capacity ([`DEFAULT_TRACE_CAPACITY`] retained spans).
    pub fn new() -> Arc<Telemetry> {
        Arc::new(Telemetry::default())
    }

    /// A registry whose flight recorder retains up to `capacity`
    /// completed spans (0 disables tracing entirely).
    pub fn with_trace_capacity(capacity: usize) -> Arc<Telemetry> {
        Telemetry::with_capacities(capacity, DEFAULT_EVLOG_CAPACITY)
    }

    /// A registry with explicit trace and event-log capacities (0
    /// disables the respective subsystem — the bench harness uses an
    /// evlog capacity of 0 for its log-off arm).
    pub fn with_capacities(trace_capacity: usize, evlog_capacity: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
            recorder: FlightRecorder::with_capacity(trace_capacity),
            evlog: Arc::new(EvLog::with_capacity(evlog_capacity)),
        })
    }

    /// The trace flight recorder owned by this registry.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The structured event log owned by this registry.
    pub fn evlog(&self) -> &Arc<EvLog> {
        &self.evlog
    }

    /// Opens a new trace rooted at `name` (one per top-level operation).
    pub fn trace_root(&self, name: impl Into<String>) -> TraceSpan {
        self.recorder.root(name)
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram registered under `name` with the default exponential
    /// buckets (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &DEFAULT_BUCKETS)
    }

    /// The histogram registered under `name`; `bounds` applies only on
    /// first creation (an existing histogram keeps its buckets).
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Opens a span recording into histogram `span.<name>.sim_ms`.
    pub fn span(&self, name: &str) -> Span {
        Span {
            hist: self.histogram(&format!("span.{name}.sim_ms")),
            sim_ms: 0,
            recorded: false,
        }
    }

    /// A point-in-time copy of every metric. Deterministic: names are
    /// ordered, and every recorded value traces back to the seeded
    /// simulation, never to wall time. Once any span has been recorded,
    /// the flight recorder's totals appear as `trace.spans` /
    /// `trace.evicted` counters.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let recorded = self.recorder.recorded();
        let evicted = self.recorder.evicted();
        if recorded > 0 || evicted > 0 {
            counters.insert("trace.spans".to_string(), recorded);
            counters.insert("trace.evicted".to_string(), evicted);
        }
        if self.evlog.emitted() > 0 {
            counters.insert("evlog.emitted".to_string(), self.evlog.emitted());
            counters.insert("evlog.kept".to_string(), self.evlog.kept());
            counters.insert("evlog.sampled".to_string(), self.evlog.sampled());
            counters.insert("evlog.dropped".to_string(), self.evlog.dropped());
        }
        TelemetrySnapshot {
            counters,
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(upper_bound, count)`; `None` is the
    /// overflow bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Per-bucket exemplars as `(upper_bound, exemplar)`, ascending like
    /// `buckets`; only buckets that received a
    /// [`Histogram::record_exemplar`] observation appear.
    pub exemplars: Vec<(Option<u64>, Exemplar)>,
}

impl HistogramSnapshot {
    /// Estimates the `p`-th percentile (0..=100) from the bucket counts:
    /// the upper bound of the bucket containing the rank-`⌈p·count⌉`
    /// observation, clamped to the observed max; the overflow bucket
    /// reports the max. Returns 0 for an empty histogram.
    ///
    /// Derived purely from `(count, max, buckets)`, so it needs no extra
    /// serialized state: exports compute it on the fly and re-exports of
    /// parsed snapshots reproduce it bit-for-bit.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bound, bucket_count) in &self.buckets {
            cumulative += bucket_count;
            if cumulative >= rank {
                return match bound {
                    Some(b) => (*b).min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// The worst retained exemplar: max value, ties broken by the smaller
    /// trace id (the same total order the buckets use internally).
    pub fn worst_exemplar(&self) -> Option<Exemplar> {
        self.exemplars
            .iter()
            .map(|(_, e)| *e)
            .max_by(|a, b| a.value.cmp(&b.value).then(b.trace.cmp(&a.trace)))
    }
}

/// Frozen state of a whole registry; compares bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// One counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// One histogram's frozen state, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("COUNTERS\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("GAUGES\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {value:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("HISTOGRAMS\n");
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "name", "count", "sum", "min", "max", "p50", "p95", "p99"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<44} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0)
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Canonical JSON tree: object keys are `BTreeMap`-sorted, histogram
    /// buckets ascend, the overflow bound renders as `null`.
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert(
            "counters".to_string(),
            Value::Object(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Value::Object(
                self.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<Value> = h
                    .buckets
                    .iter()
                    .map(|(le, count)| {
                        let mut b = BTreeMap::new();
                        b.insert("le".to_string(), le.map(Value::from).unwrap_or(Value::Null));
                        b.insert("count".to_string(), Value::from(*count));
                        if let Some((_, e)) = h.exemplars.iter().find(|(bound, _)| bound == le) {
                            let mut eo = BTreeMap::new();
                            eo.insert("trace".to_string(), Value::from(e.trace));
                            eo.insert("value".to_string(), Value::from(e.value));
                            b.insert("exemplar".to_string(), Value::Object(eo));
                        }
                        Value::Object(b)
                    })
                    .collect();
                let mut o = BTreeMap::new();
                o.insert("buckets".to_string(), Value::Array(buckets));
                o.insert("count".to_string(), Value::from(h.count));
                o.insert("max".to_string(), Value::from(h.max));
                o.insert("min".to_string(), Value::from(h.min));
                // percentiles are derived from the buckets at export time
                // (the parser recomputes rather than stores them)
                o.insert("p50".to_string(), Value::from(h.percentile(50.0)));
                o.insert("p95".to_string(), Value::from(h.percentile(95.0)));
                o.insert("p99".to_string(), Value::from(h.percentile(99.0)));
                o.insert("sum".to_string(), Value::from(h.sum));
                (k.clone(), Value::Object(o))
            })
            .collect();
        root.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(root)
    }

    /// Pretty-printed canonical JSON (the `wfsm metrics` export format).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("Value renders infallibly")
    }

    /// Parses a snapshot back from its JSON export.
    pub fn from_json(value: &Value) -> Result<TelemetrySnapshot, String> {
        let obj = value
            .as_object()
            .ok_or_else(|| format!("snapshot must be an object, got {}", value.kind()))?;
        let mut snap = TelemetrySnapshot::default();
        if let Some(counters) = obj.get("counters") {
            for (k, v) in need_object(counters, "counters")? {
                snap.counters
                    .insert(k.clone(), need_u64(v, &format!("counter {k}"))?);
            }
        }
        if let Some(gauges) = obj.get("gauges") {
            for (k, v) in need_object(gauges, "gauges")? {
                let n = v
                    .as_i64()
                    .ok_or_else(|| format!("gauge {k} must be an integer"))?;
                snap.gauges.insert(k.clone(), n);
            }
        }
        if let Some(histograms) = obj.get("histograms") {
            for (k, v) in need_object(histograms, "histograms")? {
                let h = need_object(v, &format!("histogram {k}"))?;
                let mut hs = HistogramSnapshot {
                    count: need_u64(h.get("count").unwrap_or(&Value::Null), "count")?,
                    sum: need_u64(h.get("sum").unwrap_or(&Value::Null), "sum")?,
                    min: need_u64(h.get("min").unwrap_or(&Value::Null), "min")?,
                    max: need_u64(h.get("max").unwrap_or(&Value::Null), "max")?,
                    buckets: Vec::new(),
                    exemplars: Vec::new(),
                };
                if let Some(Value::Array(buckets)) = h.get("buckets") {
                    for b in buckets {
                        let b = need_object(b, "bucket")?;
                        let le = match b.get("le") {
                            None | Some(Value::Null) => None,
                            Some(v) => Some(need_u64(v, "bucket le")?),
                        };
                        let count = need_u64(b.get("count").unwrap_or(&Value::Null), "bucket")?;
                        hs.buckets.push((le, count));
                        if let Some(ev) = b.get("exemplar") {
                            let eo = need_object(ev, "exemplar")?;
                            hs.exemplars.push((
                                le,
                                Exemplar {
                                    value: need_u64(
                                        eo.get("value").unwrap_or(&Value::Null),
                                        "exemplar value",
                                    )?,
                                    trace: need_u64(
                                        eo.get("trace").unwrap_or(&Value::Null),
                                        "exemplar trace",
                                    )?,
                                },
                            ));
                        }
                    }
                }
                snap.histograms.insert(k.clone(), hs);
            }
        }
        Ok(snap)
    }

    /// Parses a snapshot from JSON text.
    pub fn from_json_str(text: &str) -> Result<TelemetrySnapshot, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        TelemetrySnapshot::from_json(&value)
    }
}

fn need_object<'v>(value: &'v Value, what: &str) -> Result<&'v BTreeMap<String, Value>, String> {
    value
        .as_object()
        .ok_or_else(|| format!("{what} must be an object, got {}", value.kind()))
}

fn need_u64(value: &Value, what: &str) -> Result<u64, String> {
    value.as_u64().ok_or_else(|| {
        format!(
            "{what} must be a non-negative integer, got {}",
            value.kind()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let tele = Telemetry::new();
        let c = tele.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same name resolves to the same counter
        tele.counter("a.b").inc();
        assert_eq!(tele.snapshot().counter("a.b"), 6);
        assert_eq!(tele.snapshot().counter("missing"), 0);
    }

    #[test]
    fn gauges_go_both_ways() {
        let tele = Telemetry::new();
        let g = tele.gauge("nodes.up");
        g.set(4);
        g.add(-1);
        assert_eq!(tele.snapshot().gauge("nodes.up"), 3);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let tele = Telemetry::new();
        let h = tele.histogram_with("lat", &[10, 100]);
        for v in [0, 1, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        let snap = tele.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 5223);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 5000);
        assert_eq!(
            hs.buckets,
            vec![(Some(10), 3), (Some(100), 2), (None, 2)],
            "le-10, le-100 and overflow buckets"
        );
        assert_eq!(hs.buckets.iter().map(|(_, c)| c).sum::<u64>(), hs.count);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let tele = Telemetry::new();
        tele.histogram("quiet");
        let snap = tele.snapshot();
        let hs = snap.histogram("quiet").unwrap();
        assert_eq!((hs.count, hs.sum, hs.min, hs.max), (0, 0, 0, 0));
        assert!(hs.buckets.is_empty());
    }

    #[test]
    fn percentiles_follow_bucket_bounds() {
        let tele = Telemetry::new();
        let h = tele.histogram_with("lat", &[10, 100, 1000]);
        for v in 1..=100u64 {
            h.record(v);
        }
        // ranks 50/95/99 land in the le-10 / le-100 buckets
        assert_eq!(h.percentile(50.0), 100);
        assert_eq!(h.percentile(95.0), 100);
        assert_eq!(h.percentile(99.0), 100);
        assert_eq!(h.percentile(0.0), 10, "rank clamps to the first bucket");
        let snap = tele.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.percentile(5.0), 10);
        assert_eq!(hs.percentile(100.0), 100);
    }

    #[test]
    fn percentile_clamps_to_observed_extremes() {
        let tele = Telemetry::new();
        let h = tele.histogram("one");
        h.record(5); // lands in the le-8 bucket
        assert_eq!(h.percentile(50.0), 5, "clamped to max, not the bound");
        let overflow = tele.histogram_with("over", &[4]);
        overflow.record(1_000_000);
        assert_eq!(
            overflow.percentile(99.0),
            1_000_000,
            "overflow bucket reports the max"
        );
        let empty = tele.histogram("empty");
        assert_eq!(empty.percentile(50.0), 0);
    }

    /// Satellite contract: `percentile` on an empty histogram is 0 for
    /// every `p`, through both the live handle and the snapshot.
    #[test]
    fn empty_histogram_percentile_is_zero() {
        let tele = Telemetry::new();
        let h = tele.histogram("never.recorded");
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0, "empty histogram p{p} must be 0");
        }
        let snap = tele.snapshot();
        let hs = snap.histogram("never.recorded").unwrap();
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(hs.percentile(p), 0);
        }
        assert_eq!(hs.worst_exemplar(), None, "no observations, no exemplar");
    }

    #[test]
    fn exemplars_keep_the_worst_observation_per_bucket() {
        let tele = Telemetry::new();
        let h = tele.histogram_with("lat", &[10, 100]);
        h.record_exemplar(5, TraceId(9));
        h.record_exemplar(8, TraceId(4)); // larger value wins the le-10 bucket
        h.record_exemplar(8, TraceId(2)); // tie: smaller trace id wins
        h.record_exemplar(8, TraceId(3)); // tie with larger id: loses
        h.record_exemplar(50, TraceId(7));
        h.record(70); // plain record never displaces an exemplar
        let snap = tele.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(
            hs.exemplars,
            vec![
                (Some(10), Exemplar { value: 8, trace: 2 }),
                (
                    Some(100),
                    Exemplar {
                        value: 50,
                        trace: 7
                    }
                ),
            ]
        );
        assert_eq!(
            hs.worst_exemplar(),
            Some(Exemplar {
                value: 50,
                trace: 7
            })
        );
        assert_eq!(hs.count, 6, "record_exemplar still counts observations");
    }

    #[test]
    fn exemplars_round_trip_through_json() {
        let tele = Telemetry::new();
        let h = tele.histogram_with("lat", &[10]);
        h.record_exemplar(7, TraceId(3));
        h.record_exemplar(900, TraceId(12)); // overflow bucket
        h.record(2); // le-10 count without touching the exemplar
        let snap = tele.snapshot();
        let text = snap.to_json_string();
        assert!(text.contains("\"exemplar\""), "{text}");
        let back = TelemetrySnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap, "exemplars survive export → parse");
        assert_eq!(back.to_json_string(), text, "re-export is a fixpoint");
        assert_eq!(
            back.histogram("lat").unwrap().worst_exemplar(),
            Some(Exemplar {
                value: 900,
                trace: 12
            })
        );
    }

    #[test]
    fn trace_counters_merge_into_snapshot() {
        let tele = Telemetry::with_trace_capacity(2);
        assert_eq!(
            tele.snapshot().counter("trace.spans"),
            0,
            "quiet recorder stays out of the snapshot"
        );
        assert!(!tele.snapshot().counters.contains_key("trace.spans"));
        for i in 0..3 {
            tele.trace_root(format!("op:{i}")).finish();
        }
        let snap = tele.snapshot();
        assert_eq!(snap.counter("trace.spans"), 3);
        assert_eq!(snap.counter("trace.evicted"), 1);
    }

    #[test]
    fn spans_record_simulated_time_on_finish_or_drop() {
        let tele = Telemetry::new();
        let mut span = tele.span("work");
        span.advance(30);
        span.advance(12);
        assert_eq!(span.elapsed_ms(), 42);
        assert_eq!(span.finish(), 42);
        {
            let mut dropped = tele.span("work");
            dropped.advance(7);
        } // recorded by Drop
        let snap = tele.snapshot();
        let hs = snap.histogram("span.work.sim_ms").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 49);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let tele = Telemetry::new();
        tele.counter("z.last").add(3);
        tele.counter("a.first").inc();
        tele.gauge("g").set(-2);
        let h = tele.histogram_with("h", &[8]);
        h.record(5);
        h.record(500);
        let snap = tele.snapshot();
        let text = snap.to_json_string();
        let back = TelemetrySnapshot::from_json_str(&text).unwrap();
        assert_eq!(snap, back);
        // canonical ordering: keys sorted, so a.first precedes z.last
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z, "JSON keys must be sorted");
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let tele = Telemetry::new();
        let c = tele.counter("hits");
        let h = tele.histogram("vals");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for v in 0..100u64 {
                        c.inc();
                        h.record(v);
                    }
                });
            }
        });
        let snap = tele.snapshot();
        assert_eq!(snap.counter("hits"), 800);
        let hs = snap.histogram("vals").unwrap();
        assert_eq!(hs.count, 800);
        assert_eq!(hs.sum, 8 * (0..100).sum::<u64>());
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 99);
    }

    #[test]
    fn table_lists_every_section() {
        let tele = Telemetry::new();
        tele.counter("c").inc();
        tele.gauge("g").set(1);
        tele.histogram("h").record(9);
        let table = tele.snapshot().to_table();
        assert!(table.contains("COUNTERS"), "{table}");
        assert!(table.contains("GAUGES"), "{table}");
        assert!(table.contains("HISTOGRAMS"), "{table}");
        assert_eq!(
            TelemetrySnapshot::default().to_table(),
            "(no metrics recorded)\n"
        );
    }
}

//! The cluster manager: the simulated WebFountain deployment.
//!
//! The real system is "a loosely coupled, shared-nothing parallel cluster"
//! of hundreds of Linux servers. The simulation binds together a sharded
//! [`DataStore`] (one shard per node), an [`Indexer`], and a [`ServiceBus`],
//! tracks per-node health, and reports per-node balance statistics —
//! enough to exercise the same dataflow (ingest → store → mine → index →
//! query) at laptop scale, including the failure modes: a [`FaultPlan`]
//! injects node outages and slow calls, Down nodes fail their shards over
//! to healthy ones, and pipeline runs degrade instead of panicking.

use crate::durable::{DurableStorage, ShardRecoveryStats, SnapshotStats, StopReason};
use crate::entity::Entity;
use crate::faults::{FaultPlan, NodeHealth};
use crate::index::Indexer;
use crate::miner::{FaultContext, MinerPipeline, PipelineStats};
use crate::store::DataStore;
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::timeseries::TimeSeriesStore;
use crate::vinci::ServiceBus;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_types::{Error, NodeId, Result, RetryPolicy};

/// Static description of one simulated node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    pub id: NodeId,
    /// Flavor string, for the Fig-1 style report ("x335", "x350").
    pub model: &'static str,
}

/// The simulated cluster. One [`Telemetry`] registry is shared by the
/// store, indexer, bus, and every pipeline run, so a single snapshot
/// covers the whole deployment.
pub struct Cluster {
    nodes: Vec<NodeInfo>,
    store: DataStore,
    indexer: Indexer,
    bus: ServiceBus,
    telemetry: Arc<Telemetry>,
    health: RwLock<Vec<NodeHealth>>,
    fault_plan: RwLock<Option<FaultPlan>>,
    retry_policy: RwLock<RetryPolicy>,
    scoreboard: RwLock<Vec<NodeScore>>,
    /// Cluster-wide simulated clock: the sum of every top-level
    /// operation's elapsed simulated time, in completion order. Purely
    /// deterministic — drives SLO windowing in the health engine.
    sim_clock: AtomicU64,
    /// Optional metrics-over-time store: when attached, every clock
    /// advance offers the registry a scrape, so pipeline / chaos / serve
    /// runs produce timelines for free.
    timeline: RwLock<Option<Arc<TimeSeriesStore>>>,
    /// Optional durable layer (shared with the store): enables
    /// checkpoints and crash/restart recovery.
    durability: RwLock<Option<Arc<DurableStorage>>>,
}

/// Rolling per-node operational record: what `wfsm top` renders and the
/// doctor report embeds. Accumulated across every [`Cluster::run_pipeline`]
/// and [`Cluster::rebuild_index`]; `health` reflects the node's current
/// state at read time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeScore {
    /// Node (== shard) index.
    pub node: u32,
    /// Hardware flavor, from [`NodeInfo`].
    pub model: String,
    pub health: NodeHealth,
    /// Pipeline runs that touched this node's shard.
    pub runs: u64,
    pub processed: u64,
    pub failed: u64,
    pub retries: u64,
    /// Injected faults drawn while mining this node's shard.
    pub faults: u64,
    /// Times this node's shard had to run on a stand-in node (pipeline
    /// or index rebuild).
    pub failovers: u64,
    /// Times this node's shard was abandoned whole (panic/unplaced).
    pub skipped: u64,
    /// Cumulative simulated ms this node's shard consumed in pipelines.
    pub sim_ms: u64,
    /// Most recent failure on this node's shard, if any.
    pub last_error: Option<String>,
}

/// Snapshot of cluster state for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    pub nodes: usize,
    pub entities: usize,
    pub per_node_entities: Vec<usize>,
    pub indexed_docs: usize,
    pub distinct_terms: usize,
    pub distinct_concepts: usize,
    pub services: Vec<String>,
    /// Per-node health, in node order.
    pub health: Vec<NodeHealth>,
}

/// Outcome of [`Cluster::rebuild_index`] under failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexRebuildStats {
    /// Entities (re-)indexed.
    pub indexed: usize,
    /// Shards whose node was Down and no healthy node could stand in.
    pub skipped_shards: usize,
    /// Shards indexed by a stand-in node because their owner was Down.
    pub failed_over: usize,
}

/// Outcome of [`Cluster::restart_node`]: what recovery replayed and how
/// much simulated time the restart consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRestart {
    pub node: u32,
    /// Snapshot/WAL replay stats for the node's shard.
    pub stats: ShardRecoveryStats,
    /// Entities re-indexed into the inverted index during the restart.
    pub reindexed: usize,
    /// Total simulated ms the restart consumed (replay + rebuild).
    pub sim_ms: u64,
}

impl Cluster {
    /// Boots a cluster of `node_count` nodes, all healthy, sharing one
    /// telemetry registry across every component.
    pub fn new(node_count: usize) -> Result<Self> {
        let telemetry = Telemetry::new();
        let store = DataStore::with_telemetry(node_count, Arc::clone(&telemetry))?;
        let nodes: Vec<NodeInfo> = (0..node_count)
            .map(|i| NodeInfo {
                id: NodeId(i as u32),
                // alternate the two xSeries models of the paper's cluster
                model: if i % 2 == 0 { "x335" } else { "x350" },
            })
            .collect();
        Ok(Cluster {
            health: RwLock::new(vec![NodeHealth::Up; nodes.len()]),
            scoreboard: RwLock::new(
                nodes
                    .iter()
                    .map(|n| NodeScore {
                        node: n.id.0,
                        model: n.model.to_string(),
                        health: NodeHealth::Up,
                        runs: 0,
                        processed: 0,
                        failed: 0,
                        retries: 0,
                        faults: 0,
                        failovers: 0,
                        skipped: 0,
                        sim_ms: 0,
                        last_error: None,
                    })
                    .collect(),
            ),
            nodes,
            store,
            indexer: Indexer::with_telemetry(Arc::clone(&telemetry)),
            bus: ServiceBus::with_telemetry(Arc::clone(&telemetry)),
            telemetry,
            fault_plan: RwLock::new(None),
            retry_policy: RwLock::new(RetryPolicy::default()),
            sim_clock: AtomicU64::new(0),
            timeline: RwLock::new(None),
            durability: RwLock::new(None),
        })
    }

    pub fn store(&self) -> &DataStore {
        &self.store
    }

    pub fn indexer(&self) -> &Indexer {
        &self.indexer
    }

    pub fn bus(&self) -> &ServiceBus {
        &self.bus
    }

    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// The registry shared by every component of this cluster.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// A complete, deterministic metrics snapshot: per-service bus stats
    /// are flushed first so nothing is in flight.
    pub fn metrics_snapshot(&self) -> TelemetrySnapshot {
        self.bus.flush_stats();
        self.telemetry.snapshot()
    }

    /// The cluster's simulated clock: total simulated ms consumed by
    /// completed top-level operations (pipeline runs, index rebuilds,
    /// plus anything added via [`Cluster::advance_clock`]).
    pub fn sim_now(&self) -> u64 {
        self.sim_clock.load(Ordering::Relaxed)
    }

    /// Advances the cluster clock by externally-driven simulated time
    /// (e.g. an ingest batch performed directly against the store).
    pub fn advance_clock(&self, sim_ms: u64) {
        self.advance_sim(sim_ms);
        self.tick_timeline();
    }

    /// Bumps the clock and forwards the new time to the durable layer,
    /// so WAL records carry the cluster's simulated timestamps.
    fn advance_sim(&self, sim_ms: u64) {
        let now = self.sim_clock.fetch_add(sim_ms, Ordering::Relaxed) + sim_ms;
        if let Some(durable) = self.durability.read().as_ref() {
            durable.set_sim_now(now);
        }
    }

    /// Attaches a durable layer to this cluster and its store; from now
    /// on every store mutation is WAL-logged and the cluster can
    /// [`Cluster::checkpoint`] and [`Cluster::restart_node`].
    pub fn attach_durability(&self, storage: Arc<DurableStorage>) -> Result<()> {
        self.store.attach_durability(Arc::clone(&storage))?;
        storage.set_sim_now(self.sim_now());
        *self.durability.write() = Some(storage);
        Ok(())
    }

    /// The attached durable layer, if any.
    pub fn durability(&self) -> Option<Arc<DurableStorage>> {
        self.durability.read().clone()
    }

    /// Attaches a metrics-over-time store and returns it: from now on
    /// every clock advance (pipeline run, index rebuild,
    /// [`Cluster::advance_clock`]) offers the shared registry a scrape at
    /// the cluster's simulated time.
    pub fn enable_timeline(&self, capacity: usize, interval_ms: u64) -> Arc<TimeSeriesStore> {
        let store = Arc::new(TimeSeriesStore::new(capacity, interval_ms));
        *self.timeline.write() = Some(Arc::clone(&store));
        self.tick_timeline();
        store
    }

    /// The attached metrics-over-time store, if any.
    pub fn timeline(&self) -> Option<Arc<TimeSeriesStore>> {
        self.timeline.read().clone()
    }

    /// Scrapes the registry into the attached timeline when a sample is
    /// due at the current simulated time. No-op without a timeline.
    pub fn tick_timeline(&self) {
        let Some(timeline) = self.timeline.read().clone() else {
            return;
        };
        timeline.tick(self.sim_now(), || self.metrics_snapshot());
    }

    /// Forces a scrape at the current simulated time regardless of the
    /// scrape interval — call once after a workload so the timeline's
    /// last sample is the final state. No-op without a timeline.
    pub fn flush_timeline(&self) {
        let Some(timeline) = self.timeline.read().clone() else {
            return;
        };
        timeline.scrape_at(self.sim_now(), self.metrics_snapshot());
    }

    /// The per-node scoreboard, with `health` refreshed to the node's
    /// current state.
    pub fn scoreboard(&self) -> Vec<NodeScore> {
        let health = self.healths();
        self.scoreboard
            .read()
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.health = health
                    .get(s.node as usize)
                    .copied()
                    .unwrap_or(NodeHealth::Up);
                s
            })
            .collect()
    }

    /// Installs (or clears) the fault plan consulted by pipeline runs.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault_plan.write() = plan;
    }

    /// The retry policy applied to faulted pipeline operations.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry_policy.write() = policy;
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry_policy.read()
    }

    /// Marks a node Up / Degraded / Down. Out-of-range ids are ignored.
    pub fn set_health(&self, node: NodeId, health: NodeHealth) {
        if let Some(slot) = self.health.write().get_mut(node.0 as usize) {
            *slot = health;
        }
    }

    /// Health of one node (`Up` for unknown ids).
    pub fn health_of(&self, node: NodeId) -> NodeHealth {
        self.health
            .read()
            .get(node.0 as usize)
            .copied()
            .unwrap_or(NodeHealth::Up)
    }

    /// Per-node health snapshot, in node order.
    pub fn healths(&self) -> Vec<NodeHealth> {
        self.health.read().clone()
    }

    /// Nodes currently not Down.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.health
            .read()
            .iter()
            .enumerate()
            .filter(|(_, h)| **h != NodeHealth::Down)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Runs a miner pipeline across all nodes in parallel, honoring node
    /// health (Down shards fail over; a fully-down cluster skips shards
    /// rather than panicking) and the installed fault plan. Each run is one
    /// trace in the flight recorder: `cluster.run_pipeline` wrapping the
    /// pipeline's per-shard span tree.
    pub fn run_pipeline(&self, pipeline: &MinerPipeline) -> PipelineStats {
        let plan = self.fault_plan.read().clone();
        let health = self.healths();
        let ctx = FaultContext {
            plan: plan.as_ref(),
            retry: self.retry_policy(),
            health: &health,
        };
        let mut root = self.telemetry.trace_root("cluster.run_pipeline");
        let stats = pipeline.run_traced(&self.store, &ctx, &mut root);
        root.attr("processed", stats.processed.to_string());
        root.attr("failed", stats.failed.to_string());
        self.advance_sim(root.elapsed_sim_ms());
        root.finish();
        self.tick_timeline();
        {
            let mut board = self.scoreboard.write();
            for outcome in &stats.shards {
                let Some(score) = board.get_mut(outcome.shard) else {
                    continue;
                };
                score.runs += 1;
                score.processed += outcome.processed as u64;
                score.failed += outcome.failed as u64;
                score.retries += outcome.retries;
                score.faults += outcome.faults;
                score.failovers += u64::from(outcome.failed_over);
                score.skipped += u64::from(outcome.skipped);
                score.sim_ms += outcome.sim_ms;
                if let Some(err) = &outcome.last_error {
                    score.last_error = Some(err.clone());
                }
            }
        }
        stats
    }

    /// (Re-)indexes every stored entity, including miner annotations.
    /// Shards owned by Down nodes are indexed by a healthy stand-in; with
    /// no healthy node left they are skipped and counted. Traced as one
    /// `cluster.rebuild_index` trace with a span per shard (store reads
    /// inside the scan are deliberately untraced to bound trace volume).
    pub fn rebuild_index(&self) -> IndexRebuildStats {
        let health = self.healths();
        let health_of = |n: usize| health.get(n).copied().unwrap_or(NodeHealth::Up);
        let mut stats = IndexRebuildStats::default();
        // (shard, failed_over, skipped) per shard, for the scoreboard
        let mut shard_outcomes: Vec<(usize, bool, bool)> = Vec::new();
        let mut root = self.telemetry.trace_root("cluster.rebuild_index");
        for shard in 0..self.store.shard_count() {
            let mut span = root.child(format!("shard:{shard}"));
            let executor = match health_of(shard) {
                NodeHealth::Up | NodeHealth::Degraded => Some(shard),
                NodeHealth::Down => {
                    (0..self.store.shard_count()).find(|&n| health_of(n) != NodeHealth::Down)
                }
            };
            let Some(executor) = executor else {
                stats.skipped_shards += 1;
                shard_outcomes.push((shard, false, true));
                span.event("unplaced");
                span.finish();
                continue;
            };
            if executor != shard {
                stats.failed_over += 1;
                shard_outcomes.push((shard, true, false));
                span.event(format!("failover:node:{executor}"));
            }
            let mut indexed_here = 0usize;
            for id in self.store.shard_ids(NodeId(shard as u32)) {
                if let Ok(entity) = self.store.get(id) {
                    self.indexer.index_entity(&entity);
                    indexed_here += 1;
                }
            }
            stats.indexed += indexed_here;
            span.attr("indexed", indexed_here.to_string());
            span.finish();
        }
        root.attr("indexed", stats.indexed.to_string());
        self.advance_sim(root.elapsed_sim_ms());
        root.finish();
        self.tick_timeline();
        {
            // rebuild outcomes land on the scoreboard too: a failed-over
            // or skipped shard is an operator-visible event
            let mut board = self.scoreboard.write();
            for (shard, failed_over, skipped) in shard_outcomes {
                if let Some(score) = board.get_mut(shard) {
                    score.failovers += u64::from(failed_over);
                    score.skipped += u64::from(skipped);
                    if skipped {
                        score.last_error = Some("unplaced (rebuild)".to_string());
                    }
                }
            }
        }
        self.telemetry
            .counter("cluster.rebuild.indexed")
            .add(stats.indexed as u64);
        self.telemetry
            .counter("cluster.rebuild.skipped_shards")
            .add(stats.skipped_shards as u64);
        self.telemetry
            .counter("cluster.rebuild.failed_over")
            .add(stats.failed_over as u64);
        stats
    }

    /// Snapshots every shard through the durable layer (truncating each
    /// shard's WAL), as one `cluster.checkpoint` trace. Call at
    /// quiescent points — between pipeline waves, after ingest.
    pub fn checkpoint(&self) -> Result<Vec<SnapshotStats>> {
        let storage = self
            .durability()
            .ok_or_else(|| Error::Config("no durable storage attached".into()))?;
        let mut root = self.telemetry.trace_root("cluster.checkpoint");
        let mut out = Vec::with_capacity(self.store.shard_count());
        for node in 0..self.store.shard_count() {
            let mut span = root.child(format!("snapshot:shard:{node}"));
            let stats = storage.snapshot_shard(&self.store, NodeId(node as u32))?;
            span.attr("entities", stats.entities.to_string());
            span.attr("bytes", stats.snapshot_bytes.to_string());
            span.advance(stats.entities * crate::durable::SNAPSHOT_ENTITY_COST_MS);
            root.advance(span.finish());
            out.push(stats);
        }
        let elapsed = root.elapsed_sim_ms();
        root.finish();
        self.advance_sim(elapsed);
        self.tick_timeline();
        Ok(out)
    }

    /// Simulated crash of one node: its shard's in-memory entities are
    /// lost and the node goes Down. Durable state survives for
    /// [`Cluster::restart_node`]. Returns how many entities were lost.
    pub fn drop_node_state(&self, node: NodeId) -> usize {
        let lost = self.store.drop_shard(node);
        self.set_health(node, NodeHealth::Down);
        self.telemetry.counter("cluster.node_crashes").inc();
        lost
    }

    /// [`Cluster::restart_node_with`] without a per-entity hook.
    pub fn restart_node(&self, node: NodeId) -> Result<NodeRestart> {
        self.restart_node_with(node, |_| {})
    }

    /// Restarts a crashed node from durable state: replays its snapshot
    /// and WAL (repairing any invalid tail), restores the shard's
    /// entities, incrementally rebuilds the inverted index, and hands
    /// each recovered entity to `on_entity` so callers can rebuild
    /// co-located indices (e.g. the sentiment index). The node comes
    /// back Up; the whole restart is one `cluster.restart_node` trace
    /// feeding `wfsm profile`.
    pub fn restart_node_with<F: FnMut(&Entity)>(
        &self,
        node: NodeId,
        mut on_entity: F,
    ) -> Result<NodeRestart> {
        let storage = self
            .durability()
            .ok_or_else(|| Error::Config("no durable storage attached".into()))?;
        if node.0 as usize >= self.store.shard_count() {
            return Err(Error::Config(format!("no node {}", node.0)));
        }
        let mut root = self.telemetry.trace_root("cluster.restart_node");
        root.attr("node", node.0.to_string());

        let mut replay = root.child("recover.replay");
        let recovery = storage.recover_shard(node.0)?;
        storage.repair_shard(node.0, &recovery)?;
        replay.attr("replayed", recovery.stats.replayed.to_string());
        replay.attr("last_lsn", recovery.stats.last_lsn.to_string());
        if recovery.stats.stop != StopReason::EndOfLog {
            replay.event(format!("truncated:{}", recovery.stats.stop.label()));
        }
        if recovery.stats.snapshot_truncated {
            replay.event("snapshot_truncated");
        }
        replay.advance(recovery.stats.sim_ms);
        root.advance(replay.finish());

        // whatever the crash left behind is dropped before restore, so
        // the shard holds exactly what the durable state says it should
        self.store.drop_shard(node);
        let mut rebuild = root.child("recover.rebuild");
        let mut reindexed = 0usize;
        for entity in &recovery.entities {
            self.store.restore_entity(entity.clone());
            self.indexer.index_entity(entity);
            on_entity(entity);
            reindexed += 1;
        }
        rebuild.attr("reindexed", reindexed.to_string());
        rebuild.advance(reindexed as u64 * crate::durable::REPLAY_COST_MS);
        root.advance(rebuild.finish());

        self.set_health(node, NodeHealth::Up);
        let elapsed = root.elapsed_sim_ms();
        root.finish();
        self.telemetry
            .counter("durable.recovered_entities")
            .add(recovery.stats.recovered_entities);
        self.telemetry
            .counter("durable.recovery_sim_ms")
            .add(elapsed);
        self.telemetry.counter("cluster.node_restarts").inc();
        self.advance_sim(elapsed);
        self.tick_timeline();
        Ok(NodeRestart {
            node: node.0,
            stats: recovery.stats,
            reindexed,
            sim_ms: elapsed,
        })
    }

    /// Current cluster state for reports.
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            nodes: self.nodes.len(),
            entities: self.store.len(),
            per_node_entities: self.store.shard_sizes(),
            indexed_docs: self.indexer.doc_count(),
            distinct_terms: self.indexer.term_count(),
            distinct_concepts: self.indexer.concept_count(),
            services: self.bus.service_names(),
            health: self.healths(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Entity, SourceKind};
    use crate::miner::EntityMiner;

    struct LengthMiner;
    impl EntityMiner for LengthMiner {
        fn name(&self) -> &str {
            "length"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            entity
                .metadata
                .insert("length".into(), entity.text.len().to_string());
            Ok(())
        }
    }

    fn seeded_cluster(nodes: usize, docs: usize) -> Cluster {
        let cluster = Cluster::new(nodes).unwrap();
        for i in 0..docs {
            cluster.store().insert(Entity::new(
                format!("uri://{i}"),
                SourceKind::Web,
                format!("document number {i} about cameras"),
            ));
        }
        cluster
    }

    #[test]
    fn cluster_boots_with_nodes() {
        let cluster = Cluster::new(8).unwrap();
        assert_eq!(cluster.nodes().len(), 8);
        assert_eq!(cluster.nodes()[0].model, "x335");
        assert_eq!(cluster.nodes()[1].model, "x350");
        assert!(cluster.healths().iter().all(|h| *h == NodeHealth::Up));
    }

    #[test]
    fn end_to_end_ingest_mine_index_query() {
        let cluster = seeded_cluster(4, 12);
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        let stats = cluster.run_pipeline(&pipeline);
        assert_eq!(stats.processed, 12);
        cluster.rebuild_index();
        let report = cluster.report();
        assert_eq!(report.entities, 12);
        assert_eq!(report.indexed_docs, 12);
        assert_eq!(report.per_node_entities.iter().sum::<usize>(), 12);
        assert!(report.distinct_terms > 5);
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(Cluster::new(0).is_err());
    }

    #[test]
    fn down_node_shard_fails_over() {
        let cluster = seeded_cluster(4, 20);
        cluster.set_health(NodeId(2), NodeHealth::Down);
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        let stats = cluster.run_pipeline(&pipeline);
        assert_eq!(stats.processed, 20, "failover keeps every entity mined");
        assert_eq!(stats.failed_over, 1);
        assert_eq!(stats.skipped_shards, 0);
        let idx = cluster.rebuild_index();
        assert_eq!(idx.indexed, 20);
        assert_eq!(idx.failed_over, 1);
    }

    #[test]
    fn fully_down_cluster_skips_instead_of_panicking() {
        let cluster = seeded_cluster(2, 10);
        cluster.set_health(NodeId(0), NodeHealth::Down);
        cluster.set_health(NodeId(1), NodeHealth::Down);
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        let stats = cluster.run_pipeline(&pipeline);
        assert_eq!(stats.processed, 0);
        assert_eq!(stats.failed, 10);
        assert_eq!(stats.skipped_shards, 2);
        let idx = cluster.rebuild_index();
        assert_eq!(idx.indexed, 0);
        assert_eq!(idx.skipped_shards, 2);
    }

    #[test]
    fn components_share_one_registry() {
        let cluster = seeded_cluster(2, 6);
        cluster
            .bus()
            .register("echo", Arc::new(|v: &serde_json::Value| Ok(v.clone())));
        let _ = cluster.bus().call("echo", &serde_json::Value::Null);
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        let stats = cluster.run_pipeline(&pipeline);
        let rebuild = cluster.rebuild_index();
        cluster
            .indexer()
            .query(&crate::index::Query::Term("cameras".into()))
            .unwrap();
        let snap = cluster.metrics_snapshot();
        // one snapshot sees store, bus, pipeline, rebuild and index activity
        assert_eq!(snap.counter("store.insert"), 6);
        assert_eq!(snap.counter("bus.calls"), 1);
        assert_eq!(snap.counter("bus.service.echo.calls"), 1);
        assert_eq!(snap.counter("pipeline.processed"), stats.processed as u64);
        assert_eq!(
            snap.counter("cluster.rebuild.indexed"),
            rebuild.indexed as u64
        );
        assert_eq!(snap.counter("index.query.total"), 1);
        assert_eq!(snap.gauge("store.entities"), 6);
    }

    #[test]
    fn cluster_ops_leave_traces_in_the_flight_recorder() {
        let cluster = seeded_cluster(3, 9);
        cluster.set_health(NodeId(1), NodeHealth::Down);
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        cluster.run_pipeline(&pipeline);
        cluster.rebuild_index();
        let traces = cluster.telemetry().recorder().last_traces(2);
        assert_eq!(traces.len(), 2, "one trace per top-level op");
        let run = &traces[0].1[0];
        assert_eq!(run.name, "cluster.run_pipeline");
        assert!(
            run.find("cluster.run_pipeline/pipeline.run/shard:2")
                .is_some(),
            "pipeline shards nest under the cluster root"
        );
        let rebuild = &traces[1].1[0];
        assert_eq!(rebuild.name, "cluster.rebuild_index");
        let shard1 = rebuild.find("shard:1").expect("shard:1 span");
        assert!(
            shard1
                .events
                .iter()
                .any(|e| e.label.starts_with("failover:")),
            "down node's shard records its stand-in: {:?}",
            shard1.events
        );
        assert_eq!(rebuild.attrs.get("indexed").map(String::as_str), Some("9"));
    }

    #[test]
    fn attached_timeline_scrapes_cluster_ops() {
        let cluster = seeded_cluster(3, 9);
        let timeline = cluster.enable_timeline(64, 1);
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        cluster.run_pipeline(&pipeline);
        cluster.rebuild_index();
        cluster.advance_clock(10);
        cluster.flush_timeline();
        let tl = timeline.timeline();
        assert!(tl.scrapes >= 2, "ops scraped: {}", tl.scrapes);
        assert_eq!(tl.end_ms, cluster.sim_now());
        // the summed increases telescope to the final counter value
        let snap = cluster.metrics_snapshot();
        assert_eq!(
            tl.total_increase("pipeline.processed"),
            snap.counter("pipeline.processed")
        );
        assert_eq!(
            tl.total_increase("cluster.rebuild.indexed"),
            snap.counter("cluster.rebuild.indexed")
        );
    }

    #[test]
    fn live_nodes_excludes_down() {
        let cluster = Cluster::new(3).unwrap();
        cluster.set_health(NodeId(1), NodeHealth::Down);
        cluster.set_health(NodeId(2), NodeHealth::Degraded);
        assert_eq!(cluster.live_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(cluster.health_of(NodeId(1)), NodeHealth::Down);
    }
}

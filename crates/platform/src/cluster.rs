//! The cluster manager: the simulated WebFountain deployment.
//!
//! The real system is "a loosely coupled, shared-nothing parallel cluster"
//! of hundreds of Linux servers. The simulation binds together a sharded
//! [`DataStore`] (one shard per node), an [`Indexer`], and a [`ServiceBus`],
//! and reports per-node balance statistics — enough to exercise the same
//! dataflow (ingest → store → mine → index → query) at laptop scale.

use crate::index::Indexer;
use crate::miner::{MinerPipeline, PipelineStats};
use crate::store::DataStore;
use crate::vinci::ServiceBus;
use wf_types::{NodeId, Result};

/// Static description of one simulated node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    pub id: NodeId,
    /// Flavor string, for the Fig-1 style report ("x335", "x350").
    pub model: &'static str,
}

/// The simulated cluster.
pub struct Cluster {
    nodes: Vec<NodeInfo>,
    store: DataStore,
    indexer: Indexer,
    bus: ServiceBus,
}

/// Snapshot of cluster state for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    pub nodes: usize,
    pub entities: usize,
    pub per_node_entities: Vec<usize>,
    pub indexed_docs: usize,
    pub distinct_terms: usize,
    pub distinct_concepts: usize,
    pub services: Vec<String>,
}

impl Cluster {
    /// Boots a cluster of `node_count` nodes.
    pub fn new(node_count: usize) -> Result<Self> {
        let store = DataStore::new(node_count)?;
        let nodes = (0..node_count)
            .map(|i| NodeInfo {
                id: NodeId(i as u32),
                // alternate the two xSeries models of the paper's cluster
                model: if i % 2 == 0 { "x335" } else { "x350" },
            })
            .collect();
        Ok(Cluster {
            nodes,
            store,
            indexer: Indexer::new(),
            bus: ServiceBus::new(),
        })
    }

    pub fn store(&self) -> &DataStore {
        &self.store
    }

    pub fn indexer(&self) -> &Indexer {
        &self.indexer
    }

    pub fn bus(&self) -> &ServiceBus {
        &self.bus
    }

    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Runs a miner pipeline across all nodes in parallel.
    pub fn run_pipeline(&self, pipeline: &MinerPipeline) -> PipelineStats {
        pipeline.run(&self.store)
    }

    /// (Re-)indexes every stored entity, including miner annotations.
    pub fn rebuild_index(&self) {
        self.store.for_each(|entity| self.indexer.index_entity(entity));
    }

    /// Current cluster state for reports.
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            nodes: self.nodes.len(),
            entities: self.store.len(),
            per_node_entities: self.store.shard_sizes(),
            indexed_docs: self.indexer.doc_count(),
            distinct_terms: self.indexer.term_count(),
            distinct_concepts: self.indexer.concept_count(),
            services: self.bus.service_names(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Entity, SourceKind};
    use crate::miner::EntityMiner;

    struct LengthMiner;
    impl EntityMiner for LengthMiner {
        fn name(&self) -> &str {
            "length"
        }
        fn process(&self, entity: &mut Entity) -> Result<()> {
            entity
                .metadata
                .insert("length".into(), entity.text.len().to_string());
            Ok(())
        }
    }

    #[test]
    fn cluster_boots_with_nodes() {
        let cluster = Cluster::new(8).unwrap();
        assert_eq!(cluster.nodes().len(), 8);
        assert_eq!(cluster.nodes()[0].model, "x335");
        assert_eq!(cluster.nodes()[1].model, "x350");
    }

    #[test]
    fn end_to_end_ingest_mine_index_query() {
        let cluster = Cluster::new(4).unwrap();
        for i in 0..12 {
            cluster.store().insert(Entity::new(
                format!("uri://{i}"),
                SourceKind::Web,
                format!("document number {i} about cameras"),
            ));
        }
        let pipeline = MinerPipeline::new().add(Box::new(LengthMiner));
        let stats = cluster.run_pipeline(&pipeline);
        assert_eq!(stats.processed, 12);
        cluster.rebuild_index();
        let report = cluster.report();
        assert_eq!(report.entities, 12);
        assert_eq!(report.indexed_docs, 12);
        assert_eq!(report.per_node_entities.iter().sum::<usize>(), 12);
        assert!(report.distinct_terms > 5);
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(Cluster::new(0).is_err());
    }
}

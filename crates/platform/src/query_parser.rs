//! A query language for the indexer.
//!
//! WebFountain applications pose "boolean, range, regular expression,
//! spherical, and other complex query types" against the indexer. This
//! module gives those queries a textual form:
//!
//! ```text
//! camera AND (battery OR "picture quality") AND NOT music
//! meta:domain=digital-camera AND concept:sentiment:polarity=+
//! meta:date=[2004-02..2004-03] AND regex:nr[0-9]+
//! ```
//!
//! Grammar (case-insensitive keywords, AND binds tighter than OR):
//!
//! ```text
//! or-expr   := and-expr (OR and-expr)*
//! and-expr  := unary (AND? unary)*        adjacent terms imply AND
//! unary     := NOT unary | atom
//! atom      := '(' or-expr ')' | '"' word+ '"' | meta:field=value
//!            | meta:field=[lo..hi] | concept:token | regex:pattern | word
//! ```
//!
//! Regex patterns are validated at parse time, so a malformed pattern is
//! a parse error rather than a deferred execution error.

use crate::index::Query;
use crate::regex::Regex;
use wf_types::{Error, Result};

/// Parses a query string into the indexer's [`Query`] AST.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut parser = QueryParser { tokens, pos: 0 };
    let query = parser.or_expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(Error::Query(format!(
            "unexpected trailing input near {:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(query)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Phrase(Vec<String>),
    Meta(String, String),
    MetaRange(String, String, String),
    Concept(String),
    Regex(String),
    Word(String),
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        match c {
            '(' => {
                out.push(Tok::LParen);
                chars.next();
            }
            ')' => {
                out.push(Tok::RParen);
                chars.next();
            }
            '"' => {
                chars.next();
                let start = i + 1;
                let mut end = start;
                for (j, d) in chars.by_ref() {
                    if d == '"' {
                        end = j;
                        break;
                    }
                    end = j + d.len_utf8();
                }
                if end >= input.len() || !input[end..].starts_with('"') {
                    // `end` points at the closing quote found above; if we
                    // ran off the end, the phrase was unterminated
                    if end == input.len() {
                        return Err(Error::Query("unterminated phrase".into()));
                    }
                }
                let words: Vec<String> = input[start..end]
                    .split_whitespace()
                    .map(|w| w.to_lowercase())
                    .collect();
                if words.is_empty() {
                    return Err(Error::Query("empty phrase".into()));
                }
                out.push(Tok::Phrase(words));
            }
            _ => {
                // bare token up to whitespace or paren
                let start = i;
                let mut end = i;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_whitespace() || d == '(' || d == ')' {
                        break;
                    }
                    end = j + d.len_utf8();
                    chars.next();
                }
                let raw = &input[start..end];
                out.push(classify(raw)?);
            }
        }
    }
    Ok(out)
}

fn classify(raw: &str) -> Result<Tok> {
    match raw.to_ascii_uppercase().as_str() {
        "AND" => return Ok(Tok::And),
        "OR" => return Ok(Tok::Or),
        "NOT" => return Ok(Tok::Not),
        _ => {}
    }
    if let Some(rest) = raw.strip_prefix("meta:") {
        let (field, value) = rest
            .split_once('=')
            .ok_or_else(|| Error::Query(format!("meta: needs field=value, got {raw:?}")))?;
        if field.is_empty() || value.is_empty() {
            return Err(Error::Query(format!("empty meta field/value in {raw:?}")));
        }
        // range form: meta:field=[lo..hi] (inclusive, lexicographic)
        if let Some(body) = value.strip_prefix('[') {
            let Some(body) = body.strip_suffix(']') else {
                return Err(Error::Query(format!("unclosed range bracket in {raw:?}")));
            };
            let Some((lo, hi)) = body.split_once("..") else {
                return Err(Error::Query(format!("range needs lo..hi in {raw:?}")));
            };
            if lo.is_empty() || hi.is_empty() {
                return Err(Error::Query(format!("empty range bound in {raw:?}")));
            }
            return Ok(Tok::MetaRange(
                field.to_string(),
                lo.to_string(),
                hi.to_string(),
            ));
        }
        return Ok(Tok::Meta(field.to_string(), value.to_string()));
    }
    if let Some(rest) = raw.strip_prefix("concept:") {
        if rest.is_empty() {
            return Err(Error::Query("empty concept token".into()));
        }
        return Ok(Tok::Concept(rest.to_string()));
    }
    if let Some(rest) = raw.strip_prefix("regex:") {
        if rest.is_empty() {
            return Err(Error::Query("empty regex pattern".into()));
        }
        // fail fast: a malformed pattern is a parse error, not an
        // execution-time surprise
        if let Err(e) = Regex::new(rest) {
            return Err(Error::Query(format!("invalid regex {rest:?}: {e}")));
        }
        return Ok(Tok::Regex(rest.to_string()));
    }
    Ok(Tok::Word(raw.to_lowercase()))
}

struct QueryParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl QueryParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn or_expr(&mut self) -> Result<Query> {
        let mut branches = vec![self.and_expr()?];
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            branches.push(self.and_expr()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Query::Or(branches)
        })
    }

    fn and_expr(&mut self) -> Result<Query> {
        let mut parts = vec![self.unary()?];
        loop {
            match self.peek() {
                Some(Tok::And) => {
                    self.pos += 1;
                    parts.push(self.unary()?);
                }
                // adjacency implies AND: `camera battery`
                Some(Tok::Or) | Some(Tok::RParen) | None => break,
                Some(_) => parts.push(self.unary()?),
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Query::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Query> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(Query::Not(Box::new(self.unary()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Query> {
        let tok = self
            .peek()
            .cloned()
            .ok_or_else(|| Error::Query("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(match tok {
            Tok::LParen => {
                let inner = self.or_expr()?;
                if self.peek() != Some(&Tok::RParen) {
                    return Err(Error::Query("unclosed parenthesis".into()));
                }
                self.pos += 1;
                inner
            }
            Tok::Phrase(words) => Query::Phrase(words),
            Tok::Meta(field, value) => Query::MetaEquals(field, value),
            Tok::MetaRange(field, lo, hi) => Query::MetaRange { field, lo, hi },
            Tok::Concept(token) => Query::Concept(token),
            Tok::Regex(pattern) => Query::Regex(pattern),
            Tok::Word(word) => Query::Term(word),
            other => {
                return Err(Error::Query(format!("unexpected token {other:?}")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_term() {
        assert_eq!(parse_query("camera").unwrap(), Query::Term("camera".into()));
    }

    #[test]
    fn implicit_and() {
        assert_eq!(
            parse_query("camera battery").unwrap(),
            Query::And(vec![
                Query::Term("camera".into()),
                Query::Term("battery".into())
            ])
        );
    }

    #[test]
    fn precedence_and_over_or() {
        let q = parse_query("a AND b OR c").unwrap();
        assert_eq!(
            q,
            Query::Or(vec![
                Query::And(vec![Query::Term("a".into()), Query::Term("b".into())]),
                Query::Term("c".into()),
            ])
        );
    }

    #[test]
    fn parentheses_override() {
        let q = parse_query("a AND (b OR c)").unwrap();
        assert_eq!(
            q,
            Query::And(vec![
                Query::Term("a".into()),
                Query::Or(vec![Query::Term("b".into()), Query::Term("c".into())]),
            ])
        );
    }

    #[test]
    fn not_and_nested_not() {
        assert_eq!(
            parse_query("NOT music").unwrap(),
            Query::Not(Box::new(Query::Term("music".into())))
        );
        assert_eq!(
            parse_query("NOT NOT music").unwrap(),
            Query::Not(Box::new(Query::Not(Box::new(Query::Term("music".into())))))
        );
    }

    #[test]
    fn phrases() {
        assert_eq!(
            parse_query("\"picture quality\"").unwrap(),
            Query::Phrase(vec!["picture".into(), "quality".into()])
        );
    }

    #[test]
    fn meta_concept_regex_atoms() {
        assert_eq!(
            parse_query("meta:domain=camera").unwrap(),
            Query::MetaEquals("domain".into(), "camera".into())
        );
        assert_eq!(
            parse_query("concept:sentiment:polarity=+").unwrap(),
            Query::Concept("sentiment:polarity=+".into())
        );
        assert_eq!(
            parse_query("regex:nr[0-9]+").unwrap(),
            Query::Regex("nr[0-9]+".into())
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("a and b or not c").unwrap();
        assert_eq!(
            q,
            Query::Or(vec![
                Query::And(vec![Query::Term("a".into()), Query::Term("b".into())]),
                Query::Not(Box::new(Query::Term("c".into()))),
            ])
        );
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("").is_err());
        assert!(parse_query("(a OR b").is_err());
        assert!(parse_query("a )").is_err());
        assert!(parse_query("\"unterminated").is_err());
        assert!(parse_query("meta:nofield").is_err());
        assert!(parse_query("concept:").is_err());
        assert!(parse_query("AND").is_err());
    }

    #[test]
    fn range_atoms() {
        assert_eq!(
            parse_query("meta:date=[2004-02..2004-03]").unwrap(),
            Query::MetaRange {
                field: "date".into(),
                lo: "2004-02".into(),
                hi: "2004-03".into(),
            }
        );
        assert_eq!(
            parse_query("camera meta:line=[0001..0010]").unwrap(),
            Query::And(vec![
                Query::Term("camera".into()),
                Query::MetaRange {
                    field: "line".into(),
                    lo: "0001".into(),
                    hi: "0010".into(),
                },
            ])
        );
    }

    fn err_of(input: &str) -> String {
        parse_query(input).unwrap_err().to_string()
    }

    #[test]
    fn unbalanced_paren_errors_name_the_problem() {
        assert!(err_of("(a OR b").contains("unclosed parenthesis"));
        assert!(err_of("((a)").contains("unclosed parenthesis"));
        assert!(err_of("a )").contains("trailing input"));
        assert!(err_of(")").contains("unexpected token"));
    }

    #[test]
    fn empty_phrase_is_rejected() {
        assert!(err_of("\"\"").contains("empty phrase"));
        assert!(err_of("\"   \"").contains("empty phrase"));
        assert!(err_of("camera \"\"").contains("empty phrase"));
    }

    #[test]
    fn malformed_ranges_are_rejected() {
        assert!(err_of("meta:date=[2004-02..2004-03").contains("unclosed range bracket"));
        assert!(err_of("meta:date=[2004-022004-03]").contains("range needs lo..hi"));
        assert!(err_of("meta:date=[..2004-03]").contains("empty range bound"));
        assert!(err_of("meta:date=[2004-02..]").contains("empty range bound"));
        assert!(err_of("meta:=[a..b]").contains("empty meta field"));
    }

    #[test]
    fn malformed_regex_fails_at_parse_time() {
        // note: `(` splits bare tokens in the lexer, so broken-class
        // patterns are the representative malformed inputs here
        assert!(err_of("regex:[a-").contains("invalid regex"));
        assert!(err_of("regex:[abc").contains("invalid regex"));
        assert!(parse_query("regex:nr[0-9]+").is_ok());
    }

    #[test]
    fn end_to_end_against_index() {
        use crate::entity::{Annotation, Entity, SourceKind};
        use crate::index::Indexer;
        use wf_types::{DocId, Span};
        let indexer = Indexer::new();
        let docs = [
            ("the camera has a great battery", "camera", true),
            ("the camera overheats", "camera", false),
            ("a song with a great chorus", "music", false),
        ];
        for (i, (text, domain, positive)) in docs.iter().enumerate() {
            let mut e = Entity::new(format!("u{i}"), SourceKind::Web, *text)
                .with_metadata("domain", *domain);
            e.id = DocId(i as u64);
            if *positive {
                e.annotate(
                    Annotation::new("sentiment", Span::new(0, 5)).with_attr("polarity", "+"),
                );
            }
            indexer.index_entity(&e);
        }
        let q = parse_query("camera AND meta:domain=camera AND NOT overheats").unwrap();
        assert_eq!(indexer.query(&q).unwrap(), vec![DocId(0)]);
        let q = parse_query("\"great battery\" OR \"great chorus\"").unwrap();
        assert_eq!(indexer.query(&q).unwrap(), vec![DocId(0), DocId(2)]);
        let q = parse_query("concept:sentiment:polarity=+").unwrap();
        assert_eq!(indexer.query(&q).unwrap(), vec![DocId(0)]);
    }
}

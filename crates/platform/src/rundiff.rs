//! Cross-run regression diff — the differential layer over the
//! deterministic observability exports.
//!
//! Every export in this workspace is byte-identical for a given seed,
//! which turns *comparison* into signal: any delta between two runs is
//! a real behavioural difference, never noise. [`RunDiff`] compares two
//! artifacts of the same kind —
//!
//! - **metrics snapshots** (`wfsm metrics --format json`): per-counter
//!   and per-gauge deltas;
//! - **profile exports** (`wfsm profile --format json`): per-stage
//!   self-time deltas over the folded span tree, attributing a
//!   regression to the exact `serve.query/...` path that grew.
//!
//! The verdict is machine-readable (`ok` / `changed` / `regressed`) so
//! gate tooling (`tools/bench_gate.py --diff-verdict`) can consume it:
//! `ok` means byte-equivalent runs, `changed` means values moved but no
//! stage self-time grew, `regressed` means at least one stage got
//! slower. Surface via `wfsm diff <run-a> <run-b>`.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What kind of artifact a diff compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    Metrics,
    Profile,
}

impl ArtifactKind {
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Metrics => "metrics",
            ArtifactKind::Profile => "profile",
        }
    }

    /// Sniffs an artifact's shape: a profile export carries `roots`, a
    /// metrics snapshot a `counters` object.
    fn detect(value: &Value) -> Result<ArtifactKind, String> {
        if matches!(value.get("roots"), Some(Value::Array(_))) {
            Ok(ArtifactKind::Profile)
        } else if matches!(value.get("counters"), Some(Value::Object(_))) {
            Ok(ArtifactKind::Metrics)
        } else {
            Err(
                "unrecognized artifact shape (expected a metrics snapshot or profile export)"
                    .into(),
            )
        }
    }
}

/// One counter (or gauge) whose value differs between the runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueDelta {
    pub name: String,
    pub a: i64,
    pub b: i64,
}

impl ValueDelta {
    pub fn delta(&self) -> i64 {
        self.b - self.a
    }
}

/// One profile stage whose self-time or hit count moved; `path` is the
/// `/`-joined span path from the folded tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDelta {
    pub path: String,
    pub self_ms_a: u64,
    pub self_ms_b: u64,
    pub count_a: u64,
    pub count_b: u64,
}

impl StageDelta {
    /// Positive when run B spent more self-time in this stage.
    pub fn delta_ms(&self) -> i64 {
        self.b_ms() - self.a_ms()
    }

    fn a_ms(&self) -> i64 {
        self.self_ms_a as i64
    }

    fn b_ms(&self) -> i64 {
        self.self_ms_b as i64
    }

    /// A regression: self-time grew.
    pub fn regressed(&self) -> bool {
        self.self_ms_b > self.self_ms_a
    }
}

/// The comparison of two same-kind observability artifacts. Only
/// changed entries are listed, in name/path order, so two identical
/// runs produce an empty (and byte-stable) diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDiff {
    pub kind: ArtifactKind,
    /// Changed counters, by name (metrics artifacts).
    pub counters: Vec<ValueDelta>,
    /// Changed gauges, by name (metrics artifacts).
    pub gauges: Vec<ValueDelta>,
    /// Changed stages, by path (profile artifacts).
    pub stages: Vec<StageDelta>,
}

fn numeric_section(value: &Value, key: &str) -> BTreeMap<String, i64> {
    match value.get(key) {
        Some(Value::Object(map)) => map
            .iter()
            .filter_map(|(k, v)| v.as_i64().map(|n| (k.clone(), n)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn diff_section(a: &BTreeMap<String, i64>, b: &BTreeMap<String, i64>) -> Vec<ValueDelta> {
    let mut names: Vec<&String> = a.keys().chain(b.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .filter_map(|name| {
            let va = a.get(name).copied().unwrap_or(0);
            let vb = b.get(name).copied().unwrap_or(0);
            (va != vb).then(|| ValueDelta {
                name: name.clone(),
                a: va,
                b: vb,
            })
        })
        .collect()
}

/// Flattens a profile export's `roots` tree into
/// `path -> (self_ms, count)`.
fn flatten_profile(value: &Value) -> Result<BTreeMap<String, (u64, u64)>, String> {
    fn walk(
        node: &Value,
        prefix: &str,
        out: &mut BTreeMap<String, (u64, u64)>,
    ) -> Result<(), String> {
        let name = node
            .get("name")
            .and_then(Value::as_str)
            .ok_or("profile node missing \"name\"")?;
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        let self_ms = node.get("self_ms").and_then(Value::as_u64).unwrap_or(0);
        let count = node.get("count").and_then(Value::as_u64).unwrap_or(0);
        out.insert(path.clone(), (self_ms, count));
        if let Some(Value::Array(children)) = node.get("children") {
            for child in children {
                walk(child, &path, out)?;
            }
        }
        Ok(())
    }
    let mut out = BTreeMap::new();
    if let Some(Value::Array(roots)) = value.get("roots") {
        for root in roots {
            walk(root, "", &mut out)?;
        }
    }
    Ok(out)
}

impl RunDiff {
    /// Compares two artifact documents (already-parsed JSON). Both must
    /// be the same kind; mixing a metrics snapshot with a profile is an
    /// error, not a silent empty diff.
    pub fn between(a: &Value, b: &Value) -> Result<RunDiff, String> {
        let kind_a = ArtifactKind::detect(a)?;
        let kind_b = ArtifactKind::detect(b)?;
        if kind_a != kind_b {
            return Err(format!(
                "artifact kinds differ: run-a is {} but run-b is {}",
                kind_a.label(),
                kind_b.label()
            ));
        }
        match kind_a {
            ArtifactKind::Metrics => Ok(RunDiff {
                kind: kind_a,
                counters: diff_section(
                    &numeric_section(a, "counters"),
                    &numeric_section(b, "counters"),
                ),
                gauges: diff_section(&numeric_section(a, "gauges"), &numeric_section(b, "gauges")),
                stages: Vec::new(),
            }),
            ArtifactKind::Profile => {
                let flat_a = flatten_profile(a)?;
                let flat_b = flatten_profile(b)?;
                let mut paths: Vec<&String> = flat_a.keys().chain(flat_b.keys()).collect();
                paths.sort();
                paths.dedup();
                let stages = paths
                    .into_iter()
                    .filter_map(|path| {
                        let (sa, ca) = flat_a.get(path).copied().unwrap_or((0, 0));
                        let (sb, cb) = flat_b.get(path).copied().unwrap_or((0, 0));
                        (sa != sb || ca != cb).then(|| StageDelta {
                            path: path.clone(),
                            self_ms_a: sa,
                            self_ms_b: sb,
                            count_a: ca,
                            count_b: cb,
                        })
                    })
                    .collect();
                Ok(RunDiff {
                    kind: kind_a,
                    counters: Vec::new(),
                    gauges: Vec::new(),
                    stages,
                })
            }
        }
    }

    /// Parses and compares two artifact texts.
    pub fn between_texts(a: &str, b: &str) -> Result<RunDiff, String> {
        let va: Value = serde_json::from_str(a).map_err(|e| format!("run-a is not JSON: {e}"))?;
        let vb: Value = serde_json::from_str(b).map_err(|e| format!("run-b is not JSON: {e}"))?;
        RunDiff::between(&va, &vb)
    }

    /// Stages whose self-time grew from A to B.
    pub fn regressions(&self) -> usize {
        self.stages.iter().filter(|s| s.regressed()).count()
    }

    /// Any difference at all?
    pub fn changed(&self) -> bool {
        !(self.counters.is_empty() && self.gauges.is_empty() && self.stages.is_empty())
    }

    /// `ok` (identical) / `changed` (moved, nothing slower) /
    /// `regressed` (some stage's self-time grew).
    pub fn verdict(&self) -> &'static str {
        if self.regressions() > 0 {
            "regressed"
        } else if self.changed() {
            "changed"
        } else {
            "ok"
        }
    }

    /// Canonical machine-readable report (sorted keys, newline-
    /// terminated) — what gate tooling consumes.
    pub fn to_json_string(&self) -> String {
        let delta_json = |d: &ValueDelta| {
            let mut obj: BTreeMap<String, Value> = BTreeMap::new();
            obj.insert("a".into(), Value::from(d.a));
            obj.insert("b".into(), Value::from(d.b));
            obj.insert("delta".into(), Value::from(d.delta()));
            obj.insert("name".into(), Value::from(d.name.as_str()));
            Value::Object(obj)
        };
        let mut root: BTreeMap<String, Value> = BTreeMap::new();
        root.insert(
            "counters".into(),
            Value::Array(self.counters.iter().map(delta_json).collect()),
        );
        root.insert(
            "gauges".into(),
            Value::Array(self.gauges.iter().map(delta_json).collect()),
        );
        root.insert("kind".into(), Value::from(self.kind.label()));
        root.insert("regressions".into(), Value::from(self.regressions() as u64));
        root.insert(
            "stages".into(),
            Value::Array(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut obj: BTreeMap<String, Value> = BTreeMap::new();
                        obj.insert("count_a".into(), Value::from(s.count_a));
                        obj.insert("count_b".into(), Value::from(s.count_b));
                        obj.insert("delta_ms".into(), Value::from(s.delta_ms()));
                        obj.insert("path".into(), Value::from(s.path.as_str()));
                        obj.insert("self_ms_a".into(), Value::from(s.self_ms_a));
                        obj.insert("self_ms_b".into(), Value::from(s.self_ms_b));
                        Value::Object(obj)
                    })
                    .collect(),
            ),
        );
        root.insert("verdict".into(), Value::from(self.verdict()));
        let mut out =
            serde_json::to_string_pretty(&Value::Object(root)).expect("Value renders infallibly");
        out.push('\n');
        out
    }

    /// Human-readable report for `wfsm diff` without `--format json`.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "run diff ({}): {} counter(s), {} gauge(s), {} stage(s) changed; {} regression(s) — {}\n",
            self.kind.label(),
            self.counters.len(),
            self.gauges.len(),
            self.stages.len(),
            self.regressions(),
            self.verdict()
        );
        for d in self.counters.iter().chain(self.gauges.iter()) {
            let _ = writeln!(out, "  {} {} -> {} ({:+})", d.name, d.a, d.b, d.delta());
        }
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {} self {}ms -> {}ms ({:+}ms, count {} -> {}){}",
                s.path,
                s.self_ms_a,
                s.self_ms_b,
                s.delta_ms(),
                s.count_a,
                s.count_b,
                if s.regressed() { "  REGRESSED" } else { "" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(counters: &[(&str, u64)], gauges: &[(&str, i64)]) -> String {
        let mut c: BTreeMap<String, Value> = BTreeMap::new();
        for (k, v) in counters {
            c.insert(k.to_string(), Value::from(*v));
        }
        let mut g: BTreeMap<String, Value> = BTreeMap::new();
        for (k, v) in gauges {
            g.insert(k.to_string(), Value::from(*v));
        }
        let mut root: BTreeMap<String, Value> = BTreeMap::new();
        root.insert("counters".into(), Value::Object(c));
        root.insert("gauges".into(), Value::Object(g));
        Value::Object(root).to_json_string()
    }

    fn profile(stages: &[(&str, u64, u64)]) -> String {
        // one root per (name, self_ms, count), no nesting
        let roots: Vec<Value> = stages
            .iter()
            .map(|(name, self_ms, count)| {
                let mut o: BTreeMap<String, Value> = BTreeMap::new();
                o.insert("children".into(), Value::Array(Vec::new()));
                o.insert("count".into(), Value::from(*count));
                o.insert("name".into(), Value::from(*name));
                o.insert("self_ms".into(), Value::from(*self_ms));
                o.insert("total_ms".into(), Value::from(*self_ms));
                Value::Object(o)
            })
            .collect();
        let mut root: BTreeMap<String, Value> = BTreeMap::new();
        root.insert("roots".into(), Value::Array(roots));
        root.insert("spans".into(), Value::from(1u64));
        root.insert("total_ms".into(), Value::from(1u64));
        Value::Object(root).to_json_string()
    }

    #[test]
    fn identical_metrics_diff_is_ok() {
        let a = metrics(&[("x", 3)], &[("g", -1)]);
        let diff = RunDiff::between_texts(&a, &a).unwrap();
        assert!(!diff.changed());
        assert_eq!(diff.regressions(), 0);
        assert_eq!(diff.verdict(), "ok");
        assert!(diff.to_json_string().contains("\"verdict\": \"ok\""));
    }

    #[test]
    fn counter_and_gauge_deltas_are_reported() {
        let a = metrics(&[("x", 3), ("same", 1)], &[("g", 4)]);
        let b = metrics(&[("x", 5), ("same", 1), ("new", 2)], &[("g", 1)]);
        let diff = RunDiff::between_texts(&a, &b).unwrap();
        assert_eq!(diff.verdict(), "changed");
        let names: Vec<&str> = diff.counters.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["new", "x"], "only changed counters, sorted");
        assert_eq!(diff.counters[1].delta(), 2);
        assert_eq!(diff.gauges[0].delta(), -3);
    }

    #[test]
    fn profile_regressions_attribute_to_stage_paths() {
        let a = profile(&[("serve.query", 100, 10), ("mine", 50, 5)]);
        let b = profile(&[("serve.query", 130, 10), ("mine", 40, 5)]);
        let diff = RunDiff::between_texts(&a, &b).unwrap();
        assert_eq!(diff.verdict(), "regressed");
        assert_eq!(diff.regressions(), 1);
        assert_eq!(diff.stages.len(), 2, "improvement also listed");
        let slow = diff.stages.iter().find(|s| s.regressed()).unwrap();
        assert_eq!(slow.path, "serve.query");
        assert_eq!(slow.delta_ms(), 30);
        assert!(diff.to_text().contains("REGRESSED"), "{}", diff.to_text());
    }

    #[test]
    fn nested_profile_paths_join_with_slash() {
        let a = r#"{"roots":[{"name":"serve.query","self_ms":1,"count":1,"total_ms":5,
            "children":[{"name":"dispatch","self_ms":4,"count":1,"total_ms":4,"children":[]}]}]}"#;
        let b = r#"{"roots":[{"name":"serve.query","self_ms":1,"count":1,"total_ms":9,
            "children":[{"name":"dispatch","self_ms":8,"count":1,"total_ms":8,"children":[]}]}]}"#;
        let diff = RunDiff::between_texts(a, b).unwrap();
        assert_eq!(diff.stages.len(), 1);
        assert_eq!(diff.stages[0].path, "serve.query/dispatch");
    }

    #[test]
    fn mixed_kinds_and_garbage_are_rejected() {
        let m = metrics(&[("x", 1)], &[]);
        let p = profile(&[("s", 1, 1)]);
        assert!(RunDiff::between_texts(&m, &p)
            .unwrap_err()
            .contains("artifact kinds differ"));
        assert!(RunDiff::between_texts("not json", &m)
            .unwrap_err()
            .contains("run-a is not JSON"));
        assert!(RunDiff::between_texts("{}", &m)
            .unwrap_err()
            .contains("unrecognized artifact shape"));
    }

    #[test]
    fn diff_json_is_deterministic() {
        let a = profile(&[("stage", 10, 2)]);
        let b = profile(&[("stage", 12, 2)]);
        let d1 = RunDiff::between_texts(&a, &b).unwrap().to_json_string();
        let d2 = RunDiff::between_texts(&a, &b).unwrap().to_json_string();
        assert_eq!(d1, d2);
        assert!(d1.contains("\"verdict\": \"regressed\""), "{d1}");
        assert!(d1.contains("\"regressions\": 1"), "{d1}");
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an entity (document) in the WebFountain data store.
///
/// WebFountain calls stored units "entities"; a web page, a news article and
/// a bulletin-board post are all entities. Ids are dense u64s assigned by the
/// store at ingest time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u64);

impl DocId {
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc:{}", self.0)
    }
}

/// Identifier of a synonym set.
///
/// The spotter groups subject-term variants ("IBM", "International Business
/// Machines") into user-configurable synonym sets and annotates each spot
/// with the set id, so analytics can count all variants of a subject
/// together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SynsetId(pub u32);

impl SynsetId {
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SynsetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syn:{}", self.0)
    }
}

/// Identifier of a node in the simulated WebFountain cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_ids_order_by_value() {
        assert!(DocId(1) < DocId(2));
        assert_eq!(DocId(7).as_u64(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DocId(3).to_string(), "doc:3");
        assert_eq!(SynsetId(9).to_string(), "syn:9");
        assert_eq!(NodeId(0).to_string(), "node:0");
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into a source text.
///
/// Spans are the universal currency for locating tokens, phrases, spots and
/// annotations inside an entity's text. They always refer to byte offsets of
/// the original UTF-8 text, never character counts, so slicing with a span is
/// O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// Creates a new span. Panics in debug builds if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True when the byte offset `pos` falls inside the span.
    pub fn contains_offset(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }

    /// True when the two spans share at least one byte.
    pub fn overlaps(&self, other: Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn cover(&self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Slices `text` with this span. Panics if the span is out of bounds or
    /// not on UTF-8 boundaries, mirroring standard slice behaviour.
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(2, 7).len(), 5);
        assert!(!Span::new(2, 7).is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    fn containment() {
        let outer = Span::new(0, 10);
        assert!(outer.contains(Span::new(0, 10)));
        assert!(outer.contains(Span::new(3, 7)));
        assert!(!outer.contains(Span::new(3, 11)));
        assert!(outer.contains_offset(0));
        assert!(outer.contains_offset(9));
        assert!(!outer.contains_offset(10));
    }

    #[test]
    fn overlap() {
        assert!(Span::new(0, 5).overlaps(Span::new(4, 9)));
        assert!(!Span::new(0, 5).overlaps(Span::new(5, 9)));
        assert!(Span::new(2, 3).overlaps(Span::new(0, 10)));
    }

    #[test]
    fn cover_is_smallest_enclosing() {
        assert_eq!(Span::new(2, 5).cover(Span::new(7, 9)), Span::new(2, 9));
        assert_eq!(Span::new(7, 9).cover(Span::new(2, 5)), Span::new(2, 9));
    }

    #[test]
    fn slicing() {
        let text = "hello world";
        assert_eq!(Span::new(6, 11).slice(text), "world");
    }

    #[test]
    fn ordering_is_by_start_then_end() {
        let mut spans = vec![Span::new(5, 9), Span::new(0, 3), Span::new(0, 2)];
        spans.sort();
        assert_eq!(
            spans,
            vec![Span::new(0, 2), Span::new(0, 3), Span::new(5, 9)]
        );
    }
}

//! Shared primitive types for the WebFountain sentiment-mining reproduction.
//!
//! Every other crate in the workspace depends on this one. It deliberately
//! contains only small, dependency-light value types: text spans, sentiment
//! polarities, document identifiers, and the common error type.

mod error;
mod ids;
mod polarity;
mod retry;
mod span;

pub use error::{Error, Result};
pub use ids::{DocId, NodeId, SynsetId};
pub use polarity::Polarity;
pub use retry::RetryPolicy;
pub use span::Span;

use std::fmt;

/// Workspace-wide error type.
///
/// The system is a library first; every fallible public operation returns
/// `wf_types::Result` so callers get a single error surface across the
/// platform, NLP and mining crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A resource file (lexicon, pattern database, tag dictionary) failed to
    /// parse. Carries the resource name, 1-based line number and a message.
    Parse {
        resource: String,
        line: usize,
        message: String,
    },
    /// An entity lookup missed in the data store.
    NotFound(String),
    /// A component was configured inconsistently (e.g. empty subject list
    /// handed to the spotter, zero-node cluster).
    Config(String),
    /// A Vinci service call failed: no such service or handler error.
    Service(String),
    /// A query against the indexer was malformed.
    Query(String),
    /// A call exhausted its simulated-time budget (fault injection /
    /// degraded cluster). Terminal: retrying would exceed the budget again.
    Timeout(String),
    /// A node or service is (transiently) unreachable — retryable.
    Unavailable(String),
    /// A store update lost a race with a concurrent writer — retryable.
    Conflict(String),
}

impl Error {
    pub fn parse(resource: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        Error::Parse {
            resource: resource.into(),
            line,
            message: message.into(),
        }
    }

    /// True for failures that a retry may resolve (the fault subsystem and
    /// service bus retry exactly these).
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Unavailable(_) | Error::Conflict(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                resource,
                line,
                message,
            } => write!(f, "parse error in {resource}:{line}: {message}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Service(msg) => write!(f, "service error: {msg}"),
            Error::Query(msg) => write!(f, "query error: {msg}"),
            Error::Timeout(msg) => write!(f, "timeout: {msg}"),
            Error::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            Error::Conflict(msg) => write!(f, "conflict: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_location() {
        let err = Error::parse("sentiment.tsv", 12, "bad polarity");
        assert_eq!(
            err.to_string(),
            "parse error in sentiment.tsv:12: bad polarity"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_: &E) {}
        assert_std_error(&Error::NotFound("doc:1".into()));
    }
}

use std::fmt;

/// Workspace-wide error type.
///
/// The system is a library first; every fallible public operation returns
/// `wf_types::Result` so callers get a single error surface across the
/// platform, NLP and mining crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A resource file (lexicon, pattern database, tag dictionary) failed to
    /// parse. Carries the resource name, 1-based line number and a message.
    Parse {
        resource: String,
        line: usize,
        message: String,
    },
    /// An entity lookup missed in the data store.
    NotFound(String),
    /// A component was configured inconsistently (e.g. empty subject list
    /// handed to the spotter, zero-node cluster).
    Config(String),
    /// A Vinci service call failed: no such service or handler error.
    Service(String),
    /// A query against the indexer was malformed.
    Query(String),
}

impl Error {
    pub fn parse(resource: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        Error::Parse {
            resource: resource.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                resource,
                line,
                message,
            } => write!(f, "parse error in {resource}:{line}: {message}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Service(msg) => write!(f, "service error: {msg}"),
            Error::Query(msg) => write!(f, "query error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_location() {
        let err = Error::parse("sentiment.tsv", 12, "bad polarity");
        assert_eq!(
            err.to_string(),
            "parse error in sentiment.tsv:12: bad polarity"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_: &E) {}
        assert_std_error(&Error::NotFound("doc:1".into()));
    }
}

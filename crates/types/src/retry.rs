//! Retry policy for service calls and store mutations.
//!
//! The simulated cluster injects transient faults (node down, slow
//! response, update conflicts); callers recover by retrying with
//! exponential backoff under a per-call simulated-time budget. The policy
//! lives in `wf-types` so the platform, CLI and tests share one surface.

/// How a caller retries transient failures.
///
/// All durations are *simulated* milliseconds: the fault subsystem
/// advances a virtual clock instead of sleeping, so tests stay fast and
/// byte-for-byte deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated ms.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in simulated ms.
    pub max_backoff_ms: u64,
    /// Total simulated time allowed for one logical call, including
    /// latency and backoff. Exceeding it turns the call into
    /// `Error::Timeout`.
    pub timeout_budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            timeout_budget_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out (legacy behavior).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            timeout_budget_ms: u64::MAX,
        }
    }

    /// Backoff before retry number `retry` (1-based), in simulated ms:
    /// `base * 2^(retry-1)`, saturating, capped at `max_backoff_ms`.
    /// Monotone non-decreasing in `retry` and bounded by the cap.
    pub fn backoff_for(&self, retry: u32) -> u64 {
        if retry == 0 || self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = retry.saturating_sub(1).min(63);
        self.base_backoff_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            timeout_budget_ms: 1_000,
        };
        assert_eq!(p.backoff_for(1), 10);
        assert_eq!(p.backoff_for(2), 20);
        assert_eq!(p.backoff_for(3), 40);
        assert_eq!(p.backoff_for(4), 80);
        assert_eq!(p.backoff_for(5), 100, "capped");
        assert_eq!(p.backoff_for(40), 100, "still capped, no overflow");
    }

    #[test]
    fn backoff_is_monotone() {
        let p = RetryPolicy::default();
        let mut prev = 0;
        for retry in 1..=70 {
            let b = p.backoff_for(retry);
            assert!(b >= prev, "backoff shrank at retry {retry}");
            assert!(b <= p.max_backoff_ms);
            prev = b;
        }
    }

    #[test]
    fn none_policy_never_backs_off() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_for(1), 0);
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Neg;

/// Sentiment polarity of a term, phrase or (subject, sentiment) assignment.
///
/// The paper treats sentiment as an orientation deviating from the neutral
/// state: positive (`+`), negative (`-`), or neutral when no sentiment is
/// expressed about the subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Polarity {
    Positive,
    Negative,
    #[default]
    Neutral,
}

impl Polarity {
    /// Parses the paper's one-character notation: `+`, `-` (or `0`/`n` for
    /// neutral, which the paper leaves implicit).
    pub fn parse(s: &str) -> Option<Polarity> {
        match s.trim() {
            "+" | "positive" | "pos" => Some(Polarity::Positive),
            "-" | "negative" | "neg" => Some(Polarity::Negative),
            "0" | "n" | "neutral" => Some(Polarity::Neutral),
            _ => None,
        }
    }

    /// Reverses the polarity, as negating adverbs do. Neutral is a fixed
    /// point: "not" applied to a sentiment-free phrase stays sentiment-free.
    pub fn reversed(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            Polarity::Neutral => Polarity::Neutral,
        }
    }

    /// Conditionally reverses: used when a sentiment pattern's source carries
    /// the `~` inversion marker or a negation is in scope.
    pub fn reversed_if(self, flip: bool) -> Polarity {
        if flip {
            self.reversed()
        } else {
            self
        }
    }

    /// Numeric score used when summing term polarities over a phrase:
    /// +1 / -1 / 0.
    pub fn score(self) -> i32 {
        match self {
            Polarity::Positive => 1,
            Polarity::Negative => -1,
            Polarity::Neutral => 0,
        }
    }

    /// Converts a summed score back into a polarity by its sign.
    pub fn from_score(score: i32) -> Polarity {
        match score.cmp(&0) {
            std::cmp::Ordering::Greater => Polarity::Positive,
            std::cmp::Ordering::Less => Polarity::Negative,
            std::cmp::Ordering::Equal => Polarity::Neutral,
        }
    }

    /// True for positive or negative (i.e. sentiment-bearing) polarity.
    pub fn is_sentiment(self) -> bool {
        self != Polarity::Neutral
    }
}

impl Neg for Polarity {
    type Output = Polarity;
    fn neg(self) -> Polarity {
        self.reversed()
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Polarity::Positive => "+",
            Polarity::Negative => "-",
            Polarity::Neutral => "0",
        };
        f.write_str(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_notations() {
        assert_eq!(Polarity::parse("+"), Some(Polarity::Positive));
        assert_eq!(Polarity::parse("-"), Some(Polarity::Negative));
        assert_eq!(Polarity::parse("0"), Some(Polarity::Neutral));
        assert_eq!(Polarity::parse("positive"), Some(Polarity::Positive));
        assert_eq!(Polarity::parse(" neg "), Some(Polarity::Negative));
        assert_eq!(Polarity::parse("?"), None);
    }

    #[test]
    fn reversal_is_involutive() {
        for p in [Polarity::Positive, Polarity::Negative, Polarity::Neutral] {
            assert_eq!(p.reversed().reversed(), p);
        }
    }

    #[test]
    fn neutral_is_fixed_under_reversal() {
        assert_eq!(Polarity::Neutral.reversed(), Polarity::Neutral);
    }

    #[test]
    fn score_round_trip() {
        for p in [Polarity::Positive, Polarity::Negative, Polarity::Neutral] {
            assert_eq!(Polarity::from_score(p.score()), p);
        }
        assert_eq!(Polarity::from_score(5), Polarity::Positive);
        assert_eq!(Polarity::from_score(-3), Polarity::Negative);
    }

    #[test]
    fn neg_operator_matches_reversed() {
        assert_eq!(-Polarity::Positive, Polarity::Negative);
        assert_eq!(-Polarity::Negative, Polarity::Positive);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Polarity::Positive.to_string(), "+");
        assert_eq!(Polarity::Negative.to_string(), "-");
        assert_eq!(Polarity::Neutral.to_string(), "0");
    }
}

//! Candidate feature-term extraction heuristics.
//!
//! The paper's companion work (Yi et al., ICDM 2003) evaluated several
//! candidate heuristics and selection algorithms and found "the likelihood
//! ratio test on terms extracted with the bBNP heuristic" best. This
//! module implements the heuristic family so the comparison can be
//! reproduced:
//!
//! - **BNP**: every base noun phrase anywhere in the document;
//! - **dBNP**: definite base noun phrases (preceded by "the") anywhere;
//! - **bBNP**: definite base noun phrases at the *beginning* of a
//!   sentence, followed by a verb phrase (the strictest filter).

use crate::bbnp::extract_bbnp;
use wf_nlp::{AnalyzedSentence, ChunkKind, PosTag};

/// Candidate extraction heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateHeuristic {
    /// All base noun phrases.
    BNP,
    /// Definite base noun phrases.
    DBNP,
    /// Beginning definite base noun phrases followed by a verb phrase.
    BBNP,
}

impl CandidateHeuristic {
    pub fn as_str(self) -> &'static str {
        match self {
            CandidateHeuristic::BNP => "BNP",
            CandidateHeuristic::DBNP => "dBNP",
            CandidateHeuristic::BBNP => "bBNP",
        }
    }
}

/// Extracts candidates from one analyzed sentence under the heuristic.
pub fn extract_candidates(
    sentence: &AnalyzedSentence,
    heuristic: CandidateHeuristic,
) -> Vec<String> {
    match heuristic {
        CandidateHeuristic::BBNP => extract_bbnp(sentence).into_iter().collect(),
        CandidateHeuristic::DBNP => base_noun_phrases(sentence, true),
        CandidateHeuristic::BNP => base_noun_phrases(sentence, false),
    }
}

/// Common-noun base NPs (normalized, determiner stripped), optionally
/// restricted to definite ones.
fn base_noun_phrases(sentence: &AnalyzedSentence, definite_only: bool) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in &sentence.chunks {
        if chunk.kind != ChunkKind::NP {
            continue;
        }
        let mut start = chunk.start;
        let mut is_definite = false;
        if sentence.tags[start] == PosTag::DT {
            is_definite = sentence.tokens[start].lower() == "the";
            start += 1;
        }
        if definite_only && !is_definite {
            continue;
        }
        if start >= chunk.end {
            continue;
        }
        // base NP body: only JJ/NN tokens qualify (mirrors the bBNP
        // pattern alphabet, without the position/length constraints)
        let body_ok = (start..chunk.end)
            .all(|i| sentence.tags[i] == PosTag::JJ || sentence.tags[i].is_common_noun());
        let has_noun = (start..chunk.end).any(|i| sentence.tags[i].is_common_noun());
        if !body_ok || !has_noun || chunk.end - start > 3 {
            continue;
        }
        let term = sentence.tokens[start..chunk.end]
            .iter()
            .map(|t| t.lower())
            .collect::<Vec<_>>()
            .join(" ");
        out.push(term);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_nlp::Pipeline;

    fn candidates(text: &str, h: CandidateHeuristic) -> Vec<String> {
        let p = Pipeline::new();
        let sents = p.analyze(text);
        sents
            .iter()
            .flat_map(|s| extract_candidates(s, h))
            .collect()
    }

    #[test]
    fn bbnp_is_strictest() {
        let text = "I like the battery. The picture quality is superb near a lens.";
        let bnp = candidates(text, CandidateHeuristic::BNP);
        let dbnp = candidates(text, CandidateHeuristic::DBNP);
        let bbnp = candidates(text, CandidateHeuristic::BBNP);
        assert!(bnp.len() >= dbnp.len());
        assert!(dbnp.len() >= bbnp.len());
        assert_eq!(bbnp, vec!["picture quality"]);
    }

    #[test]
    fn dbnp_requires_definite_article() {
        let text = "A battery died. The battery charged.";
        let dbnp = candidates(text, CandidateHeuristic::DBNP);
        assert_eq!(dbnp, vec!["battery"]);
        let bnp = candidates(text, CandidateHeuristic::BNP);
        assert_eq!(bnp, vec!["battery", "battery"]);
    }

    #[test]
    fn mid_sentence_definite_np_counts_for_dbnp_not_bbnp() {
        let text = "I finally opened the manual yesterday.";
        assert_eq!(candidates(text, CandidateHeuristic::DBNP), vec!["manual"]);
        assert!(candidates(text, CandidateHeuristic::BBNP).is_empty());
    }

    #[test]
    fn proper_nouns_excluded_everywhere() {
        let text = "The Canon arrived.";
        for h in [
            CandidateHeuristic::BNP,
            CandidateHeuristic::DBNP,
            CandidateHeuristic::BBNP,
        ] {
            assert!(candidates(text, h).is_empty(), "{h:?}");
        }
    }

    #[test]
    fn long_nps_excluded() {
        let text = "The digital camera memory card slot broke.";
        assert!(candidates(text, CandidateHeuristic::DBNP).is_empty());
    }
}

//! Dunning likelihood-ratio test for feature-term selection.
//!
//! Following the paper (and Dunning 1993): for a candidate base noun phrase
//! with document counts over a topic collection D+ and a background
//! collection D−, the statistic −2·log λ is asymptotically χ²(1)
//! distributed, and "the higher the likelihood ratio, the more likely the
//! bnp is relevant to the topic".

/// 2×2 document counts for one candidate term (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Documents in D+ containing the candidate.
    pub c11: u64,
    /// Documents in D− containing the candidate.
    pub c12: u64,
    /// Documents in D+ *not* containing the candidate.
    pub c21: u64,
    /// Documents in D− *not* containing the candidate.
    pub c22: u64,
}

impl Counts {
    /// Builds counts from collection sizes and per-collection presence.
    pub fn from_presence(present_plus: u64, present_minus: u64, n_plus: u64, n_minus: u64) -> Self {
        assert!(present_plus <= n_plus, "presence exceeds |D+|");
        assert!(present_minus <= n_minus, "presence exceeds |D-|");
        Counts {
            c11: present_plus,
            c12: present_minus,
            c21: n_plus - present_plus,
            c22: n_minus - present_minus,
        }
    }

    /// r1 = C11 / (C11 + C12): of documents containing the candidate, the
    /// fraction that are on-topic.
    pub fn r1(&self) -> f64 {
        ratio(self.c11, self.c11 + self.c12)
    }

    /// r2 = C21 / (C21 + C22): of documents not containing the candidate,
    /// the fraction that are on-topic.
    pub fn r2(&self) -> f64 {
        ratio(self.c21, self.c21 + self.c22)
    }

    /// r = (C11 + C21) / N: the overall on-topic fraction.
    pub fn r(&self) -> f64 {
        ratio(
            self.c11 + self.c21,
            self.c11 + self.c12 + self.c21 + self.c22,
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// `x · ln(p)` with the convention `0 · ln(0) = 0`.
fn xlog(x: u64, p: f64) -> f64 {
    if x == 0 {
        0.0
    } else {
        debug_assert!(p > 0.0, "nonzero count with zero probability");
        x as f64 * p.ln()
    }
}

/// The paper's −2·log λ statistic.
///
/// Zero when r2 ≥ r1 (the candidate is not positively associated with the
/// topic); otherwise
/// `2·[logL(r1, r2) − logL(r, r)] ≥ 0`, asymptotically χ²(1).
///
/// ```
/// use wf_features::{likelihood_ratio, Counts, CHI2_95};
///
/// // a term present in 90/100 topic documents and 2/1000 background ones
/// let counts = Counts::from_presence(90, 2, 100, 1000);
/// assert!(likelihood_ratio(counts) > CHI2_95);
/// ```
pub fn likelihood_ratio(counts: Counts) -> f64 {
    let (r1, r2, r) = (counts.r1(), counts.r2(), counts.r());
    if r2 >= r1 {
        return 0.0;
    }
    let Counts { c11, c12, c21, c22 } = counts;
    let log_alt = xlog(c11, r1) + xlog(c12, 1.0 - r1) + xlog(c21, r2) + xlog(c22, 1.0 - r2);
    let log_null = xlog(c11 + c21, r) + xlog(c12 + c22, 1.0 - r);
    // log_null also needs the complements paired with each row's trials:
    // logL(r, r) = (C11+C21)·ln r + (C12+C22)·ln(1−r)
    2.0 * (log_alt - log_null)
}

/// χ²(1) critical value at 95% confidence.
pub const CHI2_95: f64 = 3.841;
/// χ²(1) critical value at 99% confidence.
pub const CHI2_99: f64 = 6.635;
/// χ²(1) critical value at 99.9% confidence.
pub const CHI2_999: f64 = 10.828;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strongly_topical_term_scores_high() {
        // in 90 of 100 on-topic docs, 2 of 1000 off-topic docs
        let c = Counts::from_presence(90, 2, 100, 1000);
        let lr = likelihood_ratio(c);
        assert!(lr > CHI2_999, "lr = {lr}");
    }

    #[test]
    fn uniform_term_scores_zero_or_tiny() {
        // present in 50% of both collections → r1 ≈ r (no signal)
        let c = Counts::from_presence(50, 500, 100, 1000);
        let lr = likelihood_ratio(c);
        assert!(lr < 0.5, "lr = {lr}");
    }

    #[test]
    fn anti_topical_term_scores_zero() {
        // present mostly in off-topic docs → r2 > r1 → clamped to 0
        let c = Counts::from_presence(1, 800, 100, 1000);
        assert_eq!(likelihood_ratio(c), 0.0);
    }

    #[test]
    fn statistic_is_nonnegative() {
        for (a, b, np, nm) in [
            (10u64, 0u64, 10u64, 10u64),
            (5, 5, 10, 10),
            (0, 0, 10, 10),
            (10, 10, 10, 10),
            (1, 1, 100, 1),
            (7, 3, 9, 11),
        ] {
            let c = Counts::from_presence(a.min(np), b.min(nm), np, nm);
            let lr = likelihood_ratio(c);
            assert!(lr >= 0.0, "negative lr {lr} for {c:?}");
            assert!(lr.is_finite(), "non-finite lr for {c:?}");
        }
    }

    #[test]
    fn monotone_in_topical_presence() {
        // more on-topic presence (same off-topic) → higher score
        let mut prev = -1.0;
        for present in [10u64, 30, 50, 70, 90] {
            let lr = likelihood_ratio(Counts::from_presence(present, 5, 100, 1000));
            assert!(lr > prev, "lr {lr} not increasing at {present}");
            prev = lr;
        }
    }

    #[test]
    fn degenerate_empty_collections() {
        let c = Counts::from_presence(0, 0, 0, 0);
        assert_eq!(likelihood_ratio(c), 0.0);
    }

    #[test]
    fn ratios_match_definitions() {
        let c = Counts {
            c11: 3,
            c12: 1,
            c21: 2,
            c22: 4,
        };
        assert!((c.r1() - 0.75).abs() < 1e-12);
        assert!((c.r2() - 2.0 / 6.0).abs() < 1e-12);
        assert!((c.r() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "presence exceeds")]
    fn presence_cannot_exceed_collection() {
        let _ = Counts::from_presence(11, 0, 10, 10);
    }
}

//! Topic-feature term extraction (the paper's Section 4.1).
//!
//! A *feature term* of a topic stands in a part-of or attribute-of
//! relationship with the topic (lens, battery, picture quality for a
//! digital camera). This crate implements the best-performing combination
//! the paper reports — the bBNP candidate heuristic with Dunning
//! likelihood-ratio selection ("bBNP-L"):
//!
//! - [`bbnp`]: definite base noun phrases at sentence beginnings followed
//!   by a verb phrase;
//! - [`likelihood`]: the −2·log λ statistic over D+/D− document counts;
//! - [`extractor`]: the combined ranker/selector.

pub mod bbnp;
pub mod extractor;
pub mod heuristics;
pub mod likelihood;

pub use bbnp::{extract_bbnp, extract_bbnps};
pub use extractor::{FeatureExtractor, ScoredFeature, Selection, SelectionMetric};
pub use heuristics::CandidateHeuristic;
pub use likelihood::{likelihood_ratio, Counts, CHI2_95, CHI2_99, CHI2_999};

//! The bBNP (beginning definite Base Noun Phrase) candidate heuristic.
//!
//! Per the paper: "bBNP [...] extracts definite base noun phrases at the
//! beginning of sentences followed by a verb phrase. A definite base noun
//! phrase is a noun phrase of the following patterns preceded by the
//! definite article the: NN / NN NN / JJ NN / NN NN NN / JJ NN NN /
//! JJ JJ NN". The heuristic exploits that "when the focus shifts from one
//! feature to another, the new feature is often expressed using a definite
//! noun phrase at the beginning of the next sentence" — "the battery"
//! suffices instead of "the battery of the digital camera".

use wf_nlp::{AnalyzedSentence, ChunkKind, PosTag};

/// The six admissible tag patterns after "the". Plural NNS counts as NN
/// (Table 2 of the paper lists plural feature terms like "lyrics").
const PATTERNS: &[&[TagClass]] = &[
    &[TagClass::N],
    &[TagClass::N, TagClass::N],
    &[TagClass::J, TagClass::N],
    &[TagClass::N, TagClass::N, TagClass::N],
    &[TagClass::J, TagClass::N, TagClass::N],
    &[TagClass::J, TagClass::J, TagClass::N],
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagClass {
    N,
    J,
}

fn classify(tag: PosTag) -> Option<TagClass> {
    if tag.is_common_noun() {
        Some(TagClass::N)
    } else if tag == PosTag::JJ {
        Some(TagClass::J)
    } else {
        None
    }
}

/// Extracts the bBNP candidate from one analyzed sentence, if the sentence
/// opens with `the <pattern>` immediately followed by a verb phrase.
/// The returned term is lower-cased without the determiner
/// ("The picture quality is superb." → "picture quality").
pub fn extract_bbnp(sentence: &AnalyzedSentence) -> Option<String> {
    let first = sentence.chunks.first()?;
    if first.kind != ChunkKind::NP || first.start != 0 {
        return None;
    }
    // must start with the definite article
    if sentence.tokens[first.start].lower() != "the" {
        return None;
    }
    // the tokens after "the" must match one of the six patterns exactly
    let body: Vec<TagClass> = (first.start + 1..first.end)
        .map(|i| classify(sentence.tags[i]))
        .collect::<Option<Vec<_>>>()?;
    if !PATTERNS.contains(&body.as_slice()) {
        return None;
    }
    // followed by a verb phrase (the next chunk)
    let next = sentence.chunks.get(1)?;
    if next.kind != ChunkKind::VP {
        return None;
    }
    let term = sentence.tokens[first.start + 1..first.end]
        .iter()
        .map(|t| t.lower())
        .collect::<Vec<_>>()
        .join(" ");
    Some(term)
}

/// Extracts all bBNP candidates from a document's analyzed sentences.
pub fn extract_bbnps(sentences: &[AnalyzedSentence]) -> Vec<String> {
    sentences.iter().filter_map(extract_bbnp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_nlp::Pipeline;

    fn bbnp_of(text: &str) -> Option<String> {
        let p = Pipeline::new();
        let sents = p.analyze(text);
        extract_bbnp(&sents[0])
    }

    #[test]
    fn single_noun_pattern() {
        assert_eq!(
            bbnp_of("The battery lasts all day."),
            Some("battery".into())
        );
    }

    #[test]
    fn noun_noun_pattern() {
        assert_eq!(
            bbnp_of("The picture quality is superb."),
            Some("picture quality".into())
        );
    }

    #[test]
    fn adjective_noun_is_accepted() {
        assert_eq!(
            bbnp_of("The optical viewfinder works well."),
            Some("optical viewfinder".into())
        );
    }

    #[test]
    fn three_noun_pattern() {
        assert_eq!(
            bbnp_of("The memory card slot feels loose."),
            Some("memory card slot".into())
        );
    }

    #[test]
    fn indefinite_article_rejected() {
        assert_eq!(bbnp_of("A battery lasts all day."), None);
    }

    #[test]
    fn mid_sentence_definite_np_rejected() {
        assert_eq!(bbnp_of("I think the battery is weak."), None);
    }

    #[test]
    fn must_be_followed_by_verb_phrase() {
        // sentence fragment with no VP after the NP
        assert_eq!(bbnp_of("The battery!"), None);
    }

    #[test]
    fn pronoun_start_rejected() {
        assert_eq!(bbnp_of("It takes great pictures."), None);
    }

    #[test]
    fn plural_head_accepted() {
        assert_eq!(bbnp_of("The lyrics are catchy."), Some("lyrics".into()));
    }

    #[test]
    fn proper_noun_head_rejected() {
        // bBNP is about common-noun feature terms, not names
        assert_eq!(bbnp_of("The Sony is great."), None);
    }

    #[test]
    fn too_long_np_rejected() {
        // four content tokens exceeds every pattern
        assert_eq!(bbnp_of("The digital camera memory card slot broke."), None);
    }

    #[test]
    fn extract_all_from_document() {
        let p = Pipeline::new();
        let sents =
            p.analyze("The battery lasts long. I like it. The picture quality is stunning.");
        assert_eq!(
            extract_bbnps(&sents),
            vec!["battery".to_string(), "picture quality".to_string()]
        );
    }
}

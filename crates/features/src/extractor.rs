//! The feature extractor: bBNP candidates + likelihood-ratio selection.
//!
//! Combines the two pieces the paper found best-performing ("the likelihood
//! ratio test on terms extracted with the bBNP heuristic", dubbed bBNP-L):
//! candidates come from topic documents D+, counts come from both D+ and a
//! background collection D−, and candidates are ranked by the Dunning
//! statistic.

use crate::bbnp::extract_bbnps;
use crate::heuristics::{extract_candidates, CandidateHeuristic};
use crate::likelihood::{likelihood_ratio, Counts};
use std::collections::{HashMap, HashSet};
use wf_nlp::Pipeline;

/// Ranking metric for candidate selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMetric {
    /// Dunning's −2·log λ against the background collection (the paper's
    /// best performer, "bBNP-L" when paired with the bBNP heuristic).
    LikelihoodRatio,
    /// Raw document frequency in D+ (the naive alternative; promotes
    /// generic terms that also saturate the background).
    Frequency,
}

/// A scored feature term.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredFeature {
    /// Lower-cased feature term ("picture quality").
    pub term: String,
    /// The −2·log λ statistic.
    pub score: f64,
    /// The 2×2 document counts behind the score.
    pub counts: Counts,
}

/// How to cut the ranked candidate list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// All candidates whose statistic exceeds a χ²(1) critical value
    /// (e.g. [`crate::likelihood::CHI2_95`]).
    Confidence(f64),
    /// The top N candidates by score.
    TopN(usize),
}

/// The feature extractor.
///
/// ```
/// use wf_features::FeatureExtractor;
///
/// let fx = FeatureExtractor::new();
/// let candidates = fx.candidates("The picture quality is superb.");
/// assert_eq!(candidates, vec!["picture quality".to_string()]);
/// ```
pub struct FeatureExtractor {
    pipeline: Pipeline,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureExtractor {
    pub fn new() -> Self {
        FeatureExtractor {
            pipeline: Pipeline::new(),
        }
    }

    /// bBNP candidates of one document (with duplicates, in order).
    pub fn candidates(&self, text: &str) -> Vec<String> {
        extract_bbnps(&self.pipeline.analyze(text))
    }

    /// Candidates under an arbitrary heuristic.
    pub fn candidates_with(&self, text: &str, heuristic: CandidateHeuristic) -> Vec<String> {
        self.pipeline
            .analyze(text)
            .iter()
            .flat_map(|s| extract_candidates(s, heuristic))
            .collect()
    }

    /// Ranks all candidates found in `d_plus` by likelihood ratio against
    /// the background `d_minus`. Returns features sorted by descending
    /// score (ties broken alphabetically for determinism).
    pub fn rank<S: AsRef<str>>(&self, d_plus: &[S], d_minus: &[S]) -> Vec<ScoredFeature> {
        self.rank_with(
            d_plus,
            d_minus,
            CandidateHeuristic::BBNP,
            SelectionMetric::LikelihoodRatio,
        )
    }

    /// Ranks with an explicit heuristic × metric combination (the design
    /// space the paper's companion work compared).
    pub fn rank_with<S: AsRef<str>>(
        &self,
        d_plus: &[S],
        d_minus: &[S],
        heuristic: CandidateHeuristic,
        metric: SelectionMetric,
    ) -> Vec<ScoredFeature> {
        // candidate set and per-document presence in D+
        let mut present_plus: HashMap<String, u64> = HashMap::new();
        let plus_docs: Vec<HashSet<String>> = d_plus
            .iter()
            .map(|doc| {
                self.candidates_with(doc.as_ref(), heuristic)
                    .into_iter()
                    .collect::<HashSet<_>>()
            })
            .collect();
        for doc in &plus_docs {
            for term in doc {
                *present_plus.entry(term.clone()).or_insert(0) += 1;
            }
        }
        if present_plus.is_empty() {
            return Vec::new();
        }
        // presence in D−: cheap substring containment scan (a term "occurs"
        // in a background document when its surface form appears; the
        // background side needs no bBNP structure per the paper's counts)
        let minus_lowered: Vec<String> =
            d_minus.iter().map(|d| d.as_ref().to_lowercase()).collect();
        let n_plus = d_plus.len() as u64;
        let n_minus = d_minus.len() as u64;
        let mut scored: Vec<ScoredFeature> = present_plus
            .into_iter()
            .map(|(term, in_plus)| {
                let in_minus = minus_lowered
                    .iter()
                    .filter(|doc| contains_term(doc, &term))
                    .count() as u64;
                let counts = Counts::from_presence(in_plus, in_minus, n_plus, n_minus);
                let score = match metric {
                    SelectionMetric::LikelihoodRatio => likelihood_ratio(counts),
                    SelectionMetric::Frequency => in_plus as f64,
                };
                ScoredFeature {
                    score,
                    term,
                    counts,
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.term.cmp(&b.term))
        });
        scored
    }

    /// Ranks and cuts with the given selection rule.
    pub fn select<S: AsRef<str>>(
        &self,
        d_plus: &[S],
        d_minus: &[S],
        selection: Selection,
    ) -> Vec<ScoredFeature> {
        let ranked = self.rank(d_plus, d_minus);
        match selection {
            Selection::Confidence(threshold) => {
                ranked.into_iter().filter(|f| f.score > threshold).collect()
            }
            Selection::TopN(n) => ranked.into_iter().take(n).collect(),
        }
    }
}

/// Word-boundary containment check for a (possibly multi-word) term in a
/// lower-cased document.
fn contains_term(doc_lowered: &str, term: &str) -> bool {
    let bytes = doc_lowered.as_bytes();
    let mut from = 0;
    while let Some(pos) = doc_lowered[from..].find(term) {
        let start = from + pos;
        let end = start + term.len();
        let before_ok = start == 0 || !bytes[start - 1].is_ascii_alphanumeric();
        let after_ok = end >= bytes.len() || !bytes[end].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::CHI2_95;

    fn camera_docs() -> Vec<String> {
        vec![
            "The battery lasts all day. The picture quality is superb.".to_string(),
            "The picture quality impresses everyone. The flash works well.".to_string(),
            "The battery drains quickly. The zoom feels smooth.".to_string(),
            "The picture quality is outstanding here.".to_string(),
        ]
    }

    fn background_docs() -> Vec<String> {
        vec![
            "The government announced a new policy today.".to_string(),
            "The weather was pleasant for the game.".to_string(),
            "Stocks fell sharply after the report.".to_string(),
            "The team won the championship.".to_string(),
            "A new restaurant opened downtown.".to_string(),
            "The movie was long and the theater was full.".to_string(),
        ]
    }

    #[test]
    fn ranks_topical_features_first() {
        let fx = FeatureExtractor::new();
        let ranked = fx.rank(&camera_docs(), &background_docs());
        assert!(!ranked.is_empty());
        let terms: Vec<&str> = ranked.iter().map(|f| f.term.as_str()).collect();
        assert!(terms.contains(&"picture quality"), "{terms:?}");
        assert!(terms.contains(&"battery"), "{terms:?}");
        // most frequent topical candidate ranks at the top
        assert_eq!(ranked[0].term, "picture quality");
    }

    #[test]
    fn scores_descend() {
        let fx = FeatureExtractor::new();
        let ranked = fx.rank(&camera_docs(), &background_docs());
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn confidence_selection_filters() {
        let fx = FeatureExtractor::new();
        let all = fx.rank(&camera_docs(), &background_docs());
        let selected = fx.select(
            &camera_docs(),
            &background_docs(),
            Selection::Confidence(CHI2_95),
        );
        assert!(selected.len() <= all.len());
        assert!(selected.iter().all(|f| f.score > CHI2_95));
    }

    #[test]
    fn top_n_selection_cuts() {
        let fx = FeatureExtractor::new();
        let top2 = fx.select(&camera_docs(), &background_docs(), Selection::TopN(2));
        assert_eq!(top2.len(), 2);
    }

    #[test]
    fn empty_collections() {
        let fx = FeatureExtractor::new();
        let empty: Vec<String> = Vec::new();
        assert!(fx.rank(&empty, &background_docs()).is_empty());
        // no background: still ranks, scores depend only on D+ spread
        let ranked = fx.rank(&camera_docs(), &empty);
        assert!(!ranked.is_empty());
        for f in &ranked {
            assert!(f.score.is_finite());
        }
    }

    #[test]
    fn background_occurrence_depresses_score() {
        let fx = FeatureExtractor::new();
        let d_plus = vec![
            "The battery lasts long.".to_string(),
            "The battery charges fast.".to_string(),
            "The battery holds up.".to_string(),
        ];
        let clean_bg: Vec<String> = (0..20)
            .map(|i| format!("Unrelated document number {i}."))
            .collect();
        let noisy_bg: Vec<String> = (0..20)
            .map(|i| format!("Document {i} mentions a battery somewhere."))
            .collect();
        let clean = fx.rank(&d_plus, &clean_bg);
        let noisy = fx.rank(&d_plus, &noisy_bg);
        let s_clean = clean.iter().find(|f| f.term == "battery").unwrap().score;
        let s_noisy = noisy.iter().find(|f| f.term == "battery").unwrap().score;
        assert!(s_clean > s_noisy, "{s_clean} vs {s_noisy}");
    }

    #[test]
    fn contains_term_boundaries() {
        assert!(contains_term("the battery died", "battery"));
        assert!(!contains_term("the batteryx died", "battery"));
        assert!(contains_term("picture quality matters", "picture quality"));
    }
}

//! General web-document and news corpora (petroleum and pharmaceutical
//! domains) for the Table 5 evaluation.
//!
//! Unlike reviews, "sentiment expressions are typically very sparse" here,
//! and the majority of sentiment-bearing sentences are the paper's
//! difficult I class: ambiguous out of context (case i), not describing
//! the subject (case ii), or carrying sentiment words without expressing
//! sentiment (case iii).

use crate::gold::{CaseClass, Corpus, Domain, GeneratedDoc, GoldMention};
use crate::review::background_doc;
use crate::vocab::{NEG_ADJ, PETRO_COMPANIES, PHARMA_PRODUCTS, POS_ADJ};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wf_types::Polarity;

/// Mix of evaluation sentences in general web documents. The remainder
/// after `clear + case_i + case_ii + case_iii` is plain-neutral filler
/// mentioning the subject without any sentiment words.
#[derive(Debug, Clone, Copy)]
pub struct WebMix {
    /// Clear sentiment at the subject.
    pub clear: f64,
    /// Ambiguous out of context (gold sentiment, surface misleading).
    pub case_i: f64,
    /// Sentiment about something else (gold neutral).
    pub case_ii: f64,
    /// Sentiment words, no sentiment (gold neutral).
    pub case_iii: f64,
}

impl Default for WebMix {
    fn default() -> Self {
        // I class = case_i + case_ii + case_iii ≈ 60% of sentiment-word
        // sentences, the lower edge of the paper's 60–90% band
        WebMix {
            clear: 0.40,
            case_i: 0.06,
            case_ii: 0.34,
            case_iii: 0.20,
        }
    }
}

/// Web corpus generation parameters.
#[derive(Debug, Clone)]
pub struct WebConfig {
    pub n_docs: usize,
    /// Subject-bearing evaluation sentences per document.
    pub eval_sentences: usize,
    /// Filler sentences per document (no subjects).
    pub filler_sentences: usize,
    pub mix: WebMix,
}

impl WebConfig {
    pub fn standard() -> Self {
        WebConfig {
            n_docs: 300,
            eval_sentences: 5,
            filler_sentences: 6,
            mix: WebMix::default(),
        }
    }

    pub fn small() -> Self {
        WebConfig {
            n_docs: 25,
            eval_sentences: 4,
            filler_sentences: 3,
            mix: WebMix::default(),
        }
    }
}

/// Generates the petroleum-domain web corpus.
pub fn petroleum_web(seed: u64, config: &WebConfig) -> Corpus {
    web_corpus(seed, config, Domain::PetroleumWeb, PETRO_COMPANIES)
}

/// Generates the pharmaceutical-domain web corpus.
pub fn pharma_web(seed: u64, config: &WebConfig) -> Corpus {
    web_corpus(seed, config, Domain::PharmaWeb, PHARMA_PRODUCTS)
}

/// Generates the petroleum news-article corpus.
pub fn petroleum_news(seed: u64, config: &WebConfig) -> Corpus {
    web_corpus(seed, config, Domain::PetroleumNews, PETRO_COMPANIES)
}

fn web_corpus(seed: u64, config: &WebConfig, domain: Domain, subjects: &[&str]) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let d_plus = (0..config.n_docs)
        .map(|_| web_doc(&mut rng, config, domain, subjects))
        .collect();
    let d_minus = (0..config.n_docs)
        .map(|_| background_doc(&mut rng))
        .collect();
    Corpus { d_plus, d_minus }
}

fn web_doc(
    rng: &mut StdRng,
    config: &WebConfig,
    domain: Domain,
    subjects: &[&str],
) -> GeneratedDoc {
    let mut sentences = Vec::new();
    let mut mentions = Vec::new();
    for _ in 0..config.filler_sentences {
        sentences.push(filler_sentence(rng, domain));
    }
    for _ in 0..config.eval_sentences {
        let subject = subjects[rng.random_range(0..subjects.len())];
        let pick = rng.random_range(0..100);
        let u: f64 = rng.random();
        let m = config.mix;
        let (sentence, polarity, case) = if u < m.clear {
            clear_sentence(domain, subject, rng, pick)
        } else if u < m.clear + m.case_i {
            case_i_sentence(subject, pick)
        } else if u < m.clear + m.case_i + m.case_ii {
            case_ii_sentence(subject, pick)
        } else if u < m.clear + m.case_i + m.case_ii + m.case_iii {
            case_iii_sentence(subject, pick)
        } else {
            plain_sentence(domain, subject, pick)
        };
        let idx = sentences.len();
        sentences.push(sentence);
        mentions.push(GoldMention {
            sentence: idx,
            subject: subject.to_string(),
            polarity,
            case,
        });
    }
    GeneratedDoc {
        domain,
        sentences,
        doc_label: None,
        mentions,
    }
}

fn filler_sentence(rng: &mut StdRng, domain: Domain) -> String {
    const PETRO: &[&str] = &[
        "Crude prices moved slightly on Tuesday.",
        "The pipeline project enters its second year.",
        "Analysts expect steady demand for diesel this quarter.",
        "The refinery processes about two hundred thousand barrels a day.",
        "Exploration budgets remain a topic of debate.",
    ];
    const PHARMA: &[&str] = &[
        "The clinical trial enrolled four hundred patients.",
        "Regulators published new labeling guidance this spring.",
        "The committee reviews dosage data every quarter.",
        "Prescription volumes held steady over the month.",
        "The conference covered three treatment areas.",
    ];
    let pool = match domain {
        Domain::PharmaWeb => PHARMA,
        _ => PETRO,
    };
    pool[rng.random_range(0..pool.len())].to_string()
}

/// Clear domain-appropriate sentiment at the subject.
fn clear_sentence(
    domain: Domain,
    subject: &str,
    rng: &mut StdRng,
    pick: usize,
) -> (String, Polarity, CaseClass) {
    let positive = rng.random_bool(0.5);
    let pa = POS_ADJ[pick % POS_ADJ.len()];
    let na = NEG_ADJ[pick % NEG_ADJ.len()];
    let pharma = matches!(domain, Domain::PharmaWeb);
    let sentence = if positive {
        let variants = if pharma {
            [
                format!("{subject} delivered {pa} trial results."),
                format!("Doctors praise {subject}."),
                format!("{subject} is {pa} for most patients."),
                format!("Patients are impressed by {subject}."),
            ]
        } else {
            [
                format!("{subject} delivered {pa} quarterly results."),
                format!("Analysts praise {subject}."),
                format!("{subject} is {pa} at controlling costs."),
                format!("Investors are impressed by {subject}."),
            ]
        };
        variants[pick % variants.len()].clone()
    } else {
        let variants = if pharma {
            [
                format!("{subject} caused {na} side effects in the study."),
                format!("Regulators call {subject} {na} and risky."),
                format!("{subject} is {na} for elderly patients."),
                format!("Patients are disappointed by {subject}."),
            ]
        } else {
            [
                format!("{subject} polluted the coastline again."),
                format!("Regulators call {subject} {na} and risky."),
                format!("{subject} is {na} at meeting safety rules."),
                format!("Investors are disappointed by {subject}."),
            ]
        };
        variants[pick % variants.len()].clone()
    };
    (
        sentence,
        if positive {
            Polarity::Positive
        } else {
            Polarity::Negative
        },
        CaseClass::Clear,
    )
}

/// Case i: ambiguous out of context (ironic or hedged; gold negative).
fn case_i_sentence(subject: &str, pick: usize) -> (String, Polarity, CaseClass) {
    let variants = [
        format!("Of course {subject} is doing wonderfully, as its lawyers keep insisting."),
        format!("{subject} is great at announcing delays."),
        format!("Naturally {subject} calls the spill report excellent news for transparency."),
    ];
    (
        variants[pick % variants.len()].clone(),
        Polarity::Negative,
        CaseClass::CaseI,
    )
}

/// Case ii: the sentiment describes something other than the subject.
fn case_ii_sentence(subject: &str, pick: usize) -> (String, Polarity, CaseClass) {
    let pa = POS_ADJ[pick % POS_ADJ.len()];
    let na = NEG_ADJ[pick % NEG_ADJ.len()];
    let variants = [
        format!("A spokesman for {subject} described the {na} storm damage."),
        format!("The {pa} harbor view surrounds the {subject} headquarters."),
        format!("Workers near the {subject} plant praised the {pa} local bakery."),
        format!("The report about {subject} arrived during a {na} news week."),
        format!("An analyst covering {subject} wrote a {pa} book about markets."),
    ];
    (
        variants[pick % variants.len()].clone(),
        Polarity::Neutral,
        CaseClass::CaseII,
    )
}

/// Case iii: sentiment words used non-evaluatively.
fn case_iii_sentence(subject: &str, pick: usize) -> (String, Polarity, CaseClass) {
    let variants = [
        format!("The good news is that {subject} will report results on Tuesday."),
        format!("For better or worse, {subject} will file the papers next week."),
        format!("{subject} named its new well Excellent Prospect Seven."),
        format!("The fine print in the {subject} filing runs to forty pages."),
    ];
    (
        variants[pick % variants.len()].clone(),
        Polarity::Neutral,
        CaseClass::CaseIII,
    )
}

/// Plain-neutral subject sentence, no sentiment words.
fn plain_sentence(domain: Domain, subject: &str, pick: usize) -> (String, Polarity, CaseClass) {
    let pharma = matches!(domain, Domain::PharmaWeb);
    let sentence = if pharma {
        let variants = [
            format!("{subject} entered a second trial phase in June."),
            format!("{subject} comes in two dosage forms."),
            format!("The {subject} label lists three ingredients."),
            format!("{subject} ships to pharmacies nationwide."),
        ];
        variants[pick % variants.len()].clone()
    } else {
        let variants = [
            format!("{subject} operates three refineries in the region."),
            format!("{subject} filed its quarterly report on Monday."),
            format!("The {subject} pipeline runs four hundred miles north."),
            format!("{subject} employs about two thousand workers."),
        ];
        variants[pick % variants.len()].clone()
    };
    (sentence, Polarity::Neutral, CaseClass::NeutralPlain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = petroleum_web(42, &WebConfig::small());
        let b = petroleum_web(42, &WebConfig::small());
        assert_eq!(a.d_plus, b.d_plus);
    }

    #[test]
    fn all_three_corpora_generate() {
        for corpus in [
            petroleum_web(1, &WebConfig::small()),
            pharma_web(1, &WebConfig::small()),
            petroleum_news(1, &WebConfig::small()),
        ] {
            assert_eq!(corpus.d_plus.len(), 25);
            for doc in &corpus.d_plus {
                assert_eq!(doc.mentions.len(), 4);
            }
        }
    }

    #[test]
    fn i_class_band_matches_paper() {
        // among mentions whose sentences contain sentiment words, the
        // I class share must land in the paper's 60–90% band
        let corpus = petroleum_web(7, &WebConfig::standard());
        let mut i_class = 0usize;
        let mut sentiment_word_cases = 0usize;
        for doc in &corpus.d_plus {
            for m in &doc.mentions {
                match m.case {
                    CaseClass::Clear
                    | CaseClass::CaseI
                    | CaseClass::CaseII
                    | CaseClass::CaseIII => {
                        sentiment_word_cases += 1;
                        if m.case.is_i_class() {
                            i_class += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        let ratio = i_class as f64 / sentiment_word_cases as f64;
        assert!((0.50..0.90).contains(&ratio), "I-class ratio {ratio}");
    }

    #[test]
    fn gold_labels_match_case_semantics() {
        let corpus = pharma_web(3, &WebConfig::small());
        for doc in &corpus.d_plus {
            for m in &doc.mentions {
                match m.case {
                    CaseClass::CaseII | CaseClass::CaseIII | CaseClass::NeutralPlain => {
                        assert_eq!(m.polarity, Polarity::Neutral)
                    }
                    CaseClass::Clear | CaseClass::CaseI => {
                        assert!(m.polarity.is_sentiment())
                    }
                    other => panic!("unexpected case in web corpus: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn subjects_appear_in_their_sentences() {
        let corpus = petroleum_news(9, &WebConfig::small());
        for doc in &corpus.d_plus {
            for m in &doc.mentions {
                assert!(doc.sentences[m.sentence].contains(&m.subject));
            }
        }
    }
}

//! Sentence templates for mention generation.
//!
//! Each template realizes one gold case class for a subject (and possibly
//! a contrast partner). Templates are authored against the behaviour of
//! the NLP stack: `Clear`/`Contrast` constructions are parseable by the
//! sentiment analyzer, `LexicalOnly` ones carry lexicon words outside
//! predicate structure, `Exotic` ones carry no lexicon words at all, and
//! the neutral/distractor ones must *not* bind sentiment to the subject.

use crate::gold::CaseClass;
use crate::vocab::{NEG_ADJ, POS_ADJ};
use wf_types::Polarity;

/// A realized sentence plus its gold mentions `(subject, polarity, case)`.
pub struct Realized {
    pub sentence: String,
    pub mentions: Vec<(String, Polarity, CaseClass)>,
}

fn adj(polarity: Polarity, pick: usize) -> &'static str {
    match polarity {
        Polarity::Positive => POS_ADJ[pick % POS_ADJ.len()],
        _ => NEG_ADJ[pick % NEG_ADJ.len()],
    }
}

/// Domain flavor for mention templates: product reviews talk about
/// pictures and viewfinders, music reviews about songs and melodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    Product,
    Music,
}

/// Clear sentiment templates with music-domain phrasing.
pub fn clear_music(subject: &str, polarity: Polarity, pick: usize) -> Realized {
    let a = adj(polarity, pick);
    let variants_pos = [
        format!("The {subject} is {a}."),
        format!("The {subject} delivers {a} melodies."),
        format!("I am impressed by the {subject}."),
        format!("The {subject} performs beautifully."),
        format!("I love the {subject}."),
        format!("The {subject} never disappoints."),
    ];
    let variants_neg = [
        format!("The {subject} is {a}."),
        format!("The {subject} delivers {a} melodies."),
        format!("I am disappointed by the {subject}."),
        format!("The {subject} performs poorly."),
        format!("The {subject} lacks a single memorable hook."),
        format!("The {subject} never performs well."),
    ];
    let sentence = match polarity {
        Polarity::Positive => variants_pos[pick % variants_pos.len()].clone(),
        _ => variants_neg[pick % variants_neg.len()].clone(),
    };
    Realized {
        sentence,
        mentions: vec![(subject.to_string(), polarity, CaseClass::Clear)],
    }
}

/// Clear templates dispatched by flavor.
pub fn clear_flavored(subject: &str, polarity: Polarity, pick: usize, flavor: Flavor) -> Realized {
    match flavor {
        Flavor::Product => clear(subject, polarity, pick),
        Flavor::Music => clear_music(subject, polarity, pick),
    }
}

/// Clear sentiment templates (SM-parseable). `pick` selects the variant
/// and adjective deterministically.
pub fn clear(subject: &str, polarity: Polarity, pick: usize) -> Realized {
    let a = adj(polarity, pick);
    let variants_pos = [
        format!("The {subject} is {a}."),
        format!("The {subject} takes {a} pictures."),
        format!("I am impressed by the {subject}."),
        format!("The {subject} performs beautifully."),
        format!("I love the {subject}."),
        format!("The {subject} excels in daily use."),
        format!("The {subject} delivers {a} results."),
        format!("The {subject} works flawlessly."),
        format!("The {a} {subject} earns its keep every day."),
        format!("The {subject} never disappoints."),
        format!("The {subject} does not lack anything important."),
    ];
    let variants_neg = [
        format!("The {subject} is {a}."),
        format!("The {subject} takes {a} pictures."),
        format!("I am disappointed by the {subject}."),
        format!("The {subject} performs poorly."),
        format!("I hate the {subject}."),
        format!("The {subject} lacks a working viewfinder."),
        format!("The {subject} malfunctions constantly."),
        format!("The {subject} fails to meet basic expectations."),
        format!("The {a} {subject} stays in the drawer."),
        format!("There is a real lack of polish in the {subject} software."),
        format!("The {subject} does not take good pictures."),
        format!("The {subject} never performs well."),
    ];
    let sentence = match polarity {
        Polarity::Positive => variants_pos[pick % variants_pos.len()].clone(),
        _ => variants_neg[pick % variants_neg.len()].clone(),
    };
    Realized {
        sentence,
        mentions: vec![(subject.to_string(), polarity, CaseClass::Clear)],
    }
}

/// Sentiment via lexicon words but outside predicate structure.
pub fn lexical_only(subject: &str, polarity: Polarity, pick: usize) -> Realized {
    let variants_pos = [
        format!("A superb little machine, the {subject}."),
        format!("Excellent value here, and the {subject} ships in a generous bundle."),
        format!("My verdict on the {subject}: wonderful, wonderful, wonderful."),
        format!("Five stars and a big thumbs up for the {subject} — outstanding."),
    ];
    let variants_neg = [
        format!("Utter junk, this {subject}."),
        format!("My verdict on the {subject}: dreadful."),
        format!("Such a mess, the whole {subject} experience — awful, frankly."),
        format!("Zero stars for the {subject} — worthless."),
    ];
    let sentence = match polarity {
        Polarity::Positive => variants_pos[pick % variants_pos.len()].clone(),
        _ => variants_neg[pick % variants_neg.len()].clone(),
    };
    Realized {
        sentence,
        mentions: vec![(subject.to_string(), polarity, CaseClass::LexicalOnly)],
    }
}

/// Idiomatic sentiment with no lexicon words (missed by everything).
pub fn exotic(subject: &str, polarity: Polarity, pick: usize) -> Realized {
    let variants_pos = [
        format!("I would buy the {subject} again in a heartbeat."),
        format!("After one week, the {subject} already owns my weekends."),
        format!("The {subject} goes everywhere with me now."),
    ];
    let variants_neg = [
        format!("The {subject} goes straight back to the shop tomorrow."),
        format!("I want my money back after a month with the {subject}."),
        format!("The {subject} now lives in a drawer."),
    ];
    let sentence = match polarity {
        Polarity::Positive => variants_pos[pick % variants_pos.len()].clone(),
        _ => variants_neg[pick % variants_neg.len()].clone(),
    };
    Realized {
        sentence,
        mentions: vec![(subject.to_string(), polarity, CaseClass::Exotic)],
    }
}

/// Sarcastic constructions: surface polarity is the opposite of gold.
/// Gold is always negative here (ironic praise), matching the common case.
pub fn sarcasm(subject: &str, pick: usize) -> Realized {
    let variants = [
        format!("Oh sure, the {subject} is just wonderful when it decides to start."),
        format!("The {subject} is great at eating batteries for breakfast."),
        format!("Naturally the {subject} is perfect, apart from everything it does."),
    ];
    Realized {
        sentence: variants[pick % variants.len()].clone(),
        mentions: vec![(subject.to_string(), Polarity::Negative, CaseClass::Sarcasm)],
    }
}

/// Contrastive multi-topic sentence: the subject gets `polarity`, the
/// partner the opposite.
pub fn contrast(subject: &str, other: &str, polarity: Polarity, pick: usize) -> Realized {
    let a = adj(polarity, pick);
    let comparative = match polarity {
        Polarity::Positive => ["better", "sharper", "faster"][pick % 3],
        _ => ["worse", "slower", "weaker"][pick % 3],
    };
    let sentence = match pick % 3 {
        0 => format!("Unlike the {other}, the {subject} is {a}."),
        1 => format!("Unlike the {other}, the {subject} takes {a} pictures."),
        _ => format!("The {subject} is {comparative} than the {other}."),
    };
    Realized {
        sentence,
        mentions: vec![
            (subject.to_string(), polarity, CaseClass::Contrast),
            (other.to_string(), polarity.reversed(), CaseClass::Contrast),
        ],
    }
}

/// Neutral mention, no sentiment words anywhere.
pub fn neutral_plain(subject: &str, pick: usize) -> Realized {
    let variants = [
        format!("The {subject} arrived on Tuesday."),
        format!("I bought the {subject} in March."),
        format!("The {subject} weighs about ten ounces."),
        format!("The {subject} stores files on a standard card."),
        format!("The {subject} comes in black and in silver."),
        format!("The {subject} uses two small batteries."),
        format!("My brother borrowed the {subject} for a trip."),
    ];
    Realized {
        sentence: variants[pick % variants.len()].clone(),
        mentions: vec![(
            subject.to_string(),
            Polarity::Neutral,
            CaseClass::NeutralPlain,
        )],
    }
}

/// Neutral mention with sentiment words directed at something else —
/// the collocation killer.
pub fn neutral_distractor(subject: &str, pick: usize) -> Realized {
    let pa = POS_ADJ[pick % POS_ADJ.len()];
    let na = NEG_ADJ[pick % NEG_ADJ.len()];
    let variants = [
        format!("I packed the {subject} next to a {pa} bouquet."),
        format!("The {subject} arrived while I was reading an {pa} novel."),
        format!("A friend with {na} handwriting borrowed the {subject}."),
        format!("The {subject} sat on the shelf beside a {na} old radio."),
        format!("The manual mentions the {pa} warranty terms for the {subject}."),
        format!("The {subject} appeared in a story about {na} weather."),
        format!("A courier praised the {pa} packaging while dropping the {subject} box."),
        format!("I carried the {subject} through a {na} storm."),
    ];
    Realized {
        sentence: variants[pick % variants.len()].clone(),
        mentions: vec![(
            subject.to_string(),
            Polarity::Neutral,
            CaseClass::NeutralDistractor,
        )],
    }
}

/// Feature sentence: a bBNP opener about a domain feature term, carrying
/// sentiment aligned with the document tone (feeds Tables 2 and 3; not a
/// product mention).
pub fn feature_sentence(feature: &str, polarity: Polarity, pick: usize) -> String {
    let a = adj(polarity, pick);
    let variants_pos = [
        format!("The {feature} is {a}."),
        format!("The {feature} works well."),
        format!("The {feature} feels {a}."),
        format!("The {feature} impressed me."),
    ];
    let variants_neg = [
        format!("The {feature} is {a}."),
        format!("The {feature} feels {a}."),
        format!("The {feature} disappointed me."),
        format!("The {feature} drains quickly."),
    ];
    match polarity {
        Polarity::Positive => variants_pos[pick % variants_pos.len()].clone(),
        _ => variants_neg[pick % variants_neg.len()].clone(),
    }
}

/// Neutral feature sentence (still a bBNP).
pub fn feature_sentence_neutral(feature: &str, pick: usize) -> String {
    let variants = [
        format!("The {feature} sits on the left side."),
        format!("The {feature} comes in the box."),
        format!("The {feature} uses a standard connector."),
        format!("The {feature} has three settings."),
    ];
    variants[pick % variants.len()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_templates_mention_subject() {
        for pick in 0..8 {
            for pol in [Polarity::Positive, Polarity::Negative] {
                let r = clear("Canon", pol, pick);
                assert!(r.sentence.contains("Canon"), "{}", r.sentence);
                assert_eq!(r.mentions.len(), 1);
                assert_eq!(r.mentions[0].1, pol);
            }
        }
    }

    #[test]
    fn contrast_yields_two_opposite_mentions() {
        let r = contrast("Canon", "Nikon", Polarity::Positive, 0);
        assert_eq!(r.mentions.len(), 2);
        assert_eq!(r.mentions[0].1, Polarity::Positive);
        assert_eq!(r.mentions[1].1, Polarity::Negative);
        assert!(r.sentence.contains("Unlike the Nikon"));
    }

    #[test]
    fn neutral_templates_are_neutral() {
        for pick in 0..7 {
            assert_eq!(
                neutral_plain("Canon", pick).mentions[0].1,
                Polarity::Neutral
            );
        }
        for pick in 0..8 {
            let r = neutral_distractor("Canon", pick);
            assert_eq!(r.mentions[0].1, Polarity::Neutral);
            assert_eq!(r.mentions[0].2, CaseClass::NeutralDistractor);
        }
    }

    #[test]
    fn sarcasm_is_gold_negative() {
        for pick in 0..3 {
            let r = sarcasm("Canon", pick);
            assert_eq!(r.mentions[0].1, Polarity::Negative);
        }
    }

    #[test]
    fn distractor_sentences_contain_sentiment_words() {
        use wf_baselines::CollocationClassifier;
        let c = CollocationClassifier::new();
        let mut with_sentiment = 0;
        for pick in 0..8 {
            let r = neutral_distractor("Canon", pick);
            let (p, n) = c.term_counts(&r.sentence);
            if p + n > 0 {
                with_sentiment += 1;
            }
        }
        assert!(with_sentiment >= 6, "only {with_sentiment}/8 have terms");
    }

    #[test]
    fn feature_sentences_start_with_the() {
        assert!(feature_sentence("battery", Polarity::Positive, 0).starts_with("The battery"));
        assert!(feature_sentence_neutral("zoom", 1).starts_with("The zoom"));
    }
}

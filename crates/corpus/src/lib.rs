//! Deterministic synthetic evaluation corpora.
//!
//! The paper evaluates on proprietary crawls (epinions/cnet/dpreview
//! product reviews; petroleum and pharmaceutical web pages; news
//! articles). Those datasets are unavailable, so this crate generates
//! synthetic equivalents that exhibit the *phenomena* the paper measures:
//! definite base noun phrases introducing features, multi-topic contrast
//! sentences, sarcasm, sparse-sentiment web pages, and the I-class
//! taxonomy — each sentence carrying gold (subject, polarity, case)
//! labels so every table can be scored exactly.
//!
//! Generation is seeded ([`rand::rngs::StdRng`]) and fully deterministic.

pub mod ambiguity;
pub mod gold;
pub mod review;
pub mod templates;
pub mod vocab;
pub mod web;

pub use ambiguity::{ambiguity_corpus, AmbiguityDoc, AMBIGUOUS_BRAND};
pub use gold::{CaseClass, Corpus, Domain, GeneratedDoc, GoldMention};
pub use review::{background_doc, camera_reviews, music_reviews, ReviewConfig, SlotWeights};
pub use web::{petroleum_news, petroleum_web, pharma_web, WebConfig, WebMix};

//! Gold-labeled corpus types.
//!
//! Every generated document carries per-mention gold labels: for each
//! (sentence, subject) pair the generator knows the intended polarity and
//! the *case class* of the construction, which lets the evaluation harness
//! reproduce the paper's I-class ablation (Table 5) exactly.

use serde::{Deserialize, Serialize};
use wf_types::Polarity;

/// Construction class of a gold mention. The first five are the review
/// phenomena driving Table 4; the `CaseI/II/III` classes are the paper's
/// "I class" taxonomy for general web documents (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseClass {
    /// Clear sentiment at the subject, expressed through standard
    /// predicate structure.
    Clear,
    /// Sentiment expressed with lexicon words but outside predicate
    /// structure (fragments, verbless constructions).
    LexicalOnly,
    /// Sentiment expressed idiomatically; no lexicon words at all.
    Exotic,
    /// Sarcastic/ironic: surface polarity opposite to the gold label
    /// (the paper's case i when taken out of context).
    Sarcasm,
    /// Contrastive multi-topic sentence ("Unlike X, Y ...").
    Contrast,
    /// Neutral mention with no sentiment words in the sentence.
    NeutralPlain,
    /// Neutral mention co-occurring with sentiment words directed at
    /// something else.
    NeutralDistractor,
    /// I-class case i: ambiguous out of context.
    CaseI,
    /// I-class case ii: sentiment not describing the subject.
    CaseII,
    /// I-class case iii: sentiment words but no sentiment expressed.
    CaseIII,
}

impl CaseClass {
    /// True for the paper's difficult "I class" (Table 5 ablation).
    pub fn is_i_class(self) -> bool {
        matches!(
            self,
            CaseClass::CaseI | CaseClass::CaseII | CaseClass::CaseIII
        )
    }
}

/// One gold-labeled subject mention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldMention {
    /// Index of the sentence within the document.
    pub sentence: usize,
    /// Canonical subject name as it appears in the subject list.
    pub subject: String,
    /// Gold polarity of the mention (what a human annotator would assign
    /// with full context).
    pub polarity: Polarity,
    /// Construction class.
    pub case: CaseClass,
}

/// Evaluation domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    DigitalCamera,
    MusicReview,
    PetroleumWeb,
    PharmaWeb,
    PetroleumNews,
    Background,
}

impl Domain {
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::DigitalCamera => "digital-camera",
            Domain::MusicReview => "music-review",
            Domain::PetroleumWeb => "petroleum-web",
            Domain::PharmaWeb => "pharma-web",
            Domain::PetroleumNews => "petroleum-news",
            Domain::Background => "background",
        }
    }
}

/// A generated document with gold labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedDoc {
    pub domain: Domain,
    /// Sentences in order (document text = sentences joined by spaces).
    pub sentences: Vec<String>,
    /// Document-level review label (reviews only; trains ReviewSeer).
    pub doc_label: Option<Polarity>,
    /// Gold subject mentions.
    pub mentions: Vec<GoldMention>,
}

impl GeneratedDoc {
    /// Full document text.
    pub fn text(&self) -> String {
        self.sentences.join(" ")
    }

    /// The sentence text of a mention.
    pub fn mention_sentence(&self, mention: &GoldMention) -> &str {
        &self.sentences[mention.sentence]
    }
}

/// A labeled corpus: the on-topic collection D+ and background D−.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    pub d_plus: Vec<GeneratedDoc>,
    pub d_minus: Vec<GeneratedDoc>,
}

impl Corpus {
    /// D+ document texts (for the feature extractor).
    pub fn d_plus_texts(&self) -> Vec<String> {
        self.d_plus.iter().map(|d| d.text()).collect()
    }

    /// D− document texts.
    pub fn d_minus_texts(&self) -> Vec<String> {
        self.d_minus.iter().map(|d| d.text()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_class_membership() {
        assert!(CaseClass::CaseI.is_i_class());
        assert!(CaseClass::CaseII.is_i_class());
        assert!(CaseClass::CaseIII.is_i_class());
        assert!(!CaseClass::Clear.is_i_class());
        assert!(!CaseClass::NeutralDistractor.is_i_class());
    }

    #[test]
    fn doc_text_joins_sentences() {
        let doc = GeneratedDoc {
            domain: Domain::Background,
            sentences: vec!["One.".into(), "Two.".into()],
            doc_label: None,
            mentions: vec![],
        };
        assert_eq!(doc.text(), "One. Two.");
    }
}

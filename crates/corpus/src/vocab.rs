//! Domain vocabularies for corpus generation.
//!
//! Feature-term lists mirror the paper's Table 2 so the reproduced
//! feature-extraction ranking is directly comparable; product lists mirror
//! Table 3's seven named brands plus eight masked ones (15 products).
//! Weights are Zipf-like so reference-count distributions have the paper's
//! head-heavy shape.

/// Digital camera feature terms in the paper's Table 2 rank order.
pub const CAMERA_FEATURES: &[&str] = &[
    "camera",
    "picture",
    "flash",
    "lens",
    "picture quality",
    "battery",
    "software",
    "price",
    "battery life",
    "viewfinder",
    "color",
    "feature",
    "image",
    "menu",
    "manual",
    "photo",
    "movie",
    "resolution",
    "quality",
    "zoom",
    // tail beyond the top-20 (the paper found 55 feature terms in total)
    "screen",
    "sensor",
    "shutter",
    "grip",
    "autofocus",
    "exposure",
    "playback",
    "interface",
    "charger",
    "strap",
];

/// Music review feature terms in the paper's Table 2 rank order.
pub const MUSIC_FEATURES: &[&str] = &[
    "song",
    "album",
    "track",
    "music",
    "piece",
    "band",
    "lyrics",
    "first movement",
    "second movement",
    "orchestra",
    "guitar",
    "final movement",
    "beat",
    "production",
    "chorus",
    "first track",
    "mix",
    "third movement",
    "piano",
    "work",
    // tail
    "melody",
    "rhythm",
    "tempo",
    "bass",
    "chorus line",
];

/// Camera product names: the seven brands of Table 3 plus eight more
/// (the paper counts 15 products).
pub const CAMERA_PRODUCTS: &[&str] = &[
    "Canon",
    "Nikon",
    "Sony",
    "Olympus",
    "Kodak",
    "Fuji",
    "Minolta",
    "Pentax",
    "Casio",
    "Panasonic",
    "Leica",
    "Ricoh",
    "Samsung",
    "Sigma",
    "Vivitar",
];

/// Synthetic music artists/albums (review subjects).
pub const MUSIC_ARTISTS: &[&str] = &[
    "Silverline",
    "The Blue Notes",
    "Aurora Quartet",
    "Redwood Choir",
    "Eastgate Trio",
    "The Night Owls",
    "Marble Arch",
    "Golden Hour",
    "Violet Sky",
    "Northern Echo",
];

/// Synthetic petroleum companies (masked like Fig. 4's "Product A..U").
pub const PETRO_COMPANIES: &[&str] = &[
    "Petrocorp",
    "Gulfex",
    "NorthSea Energy",
    "Crestline Oil",
    "Baltic Petroleum",
    "Redrock Fuels",
    "Atlas Drilling",
    "Meridian Gas",
];

/// Synthetic pharmaceutical products.
pub const PHARMA_PRODUCTS: &[&str] = &[
    "Veloxin",
    "Cardiplex",
    "Neurovan",
    "Osteolan",
    "Dermacil",
    "Respira",
    "Gastrelin",
    "Immunex Forte",
];

/// Positive sentiment adjectives used by templates (all in the lexicon).
pub const POS_ADJ: &[&str] = &[
    "excellent",
    "superb",
    "outstanding",
    "impressive",
    "remarkable",
    "sharp",
    "vibrant",
    "reliable",
    "sturdy",
    "responsive",
    "intuitive",
    "elegant",
    "smooth",
    "crisp",
    "wonderful",
];

/// Negative sentiment adjectives used by templates (all in the lexicon).
pub const NEG_ADJ: &[&str] = &[
    "terrible",
    "awful",
    "mediocre",
    "disappointing",
    "sluggish",
    "blurry",
    "grainy",
    "flimsy",
    "clunky",
    "unreliable",
    "confusing",
    "dull",
    "noisy",
    "defective",
    "dreadful",
];

/// Zipf-like weight for rank `i` (0-based): w ∝ 1/(i+1).
pub fn zipf_weight(i: usize) -> f64 {
    1.0 / (i as f64 + 1.0)
}

/// Samples an index in `[0, n)` with Zipf weights using a uniform draw in
/// `[0, 1)`.
pub fn zipf_sample(n: usize, uniform: f64) -> usize {
    debug_assert!(n > 0);
    let total: f64 = (0..n).map(zipf_weight).sum();
    let mut target = uniform * total;
    for i in 0..n {
        target -= zipf_weight(i);
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_top_terms_lead_the_lists() {
        assert_eq!(CAMERA_FEATURES[0], "camera");
        assert_eq!(CAMERA_FEATURES[1], "picture");
        assert_eq!(MUSIC_FEATURES[0], "song");
        assert_eq!(MUSIC_FEATURES[1], "album");
    }

    #[test]
    fn fifteen_camera_products() {
        assert_eq!(CAMERA_PRODUCTS.len(), 15);
        assert_eq!(CAMERA_PRODUCTS[0], "Canon");
    }

    #[test]
    fn zipf_sampling_is_head_heavy() {
        let n = 10;
        let first = (0..1000)
            .filter(|k| zipf_sample(n, *k as f64 / 1000.0) == 0)
            .count();
        let last = (0..1000)
            .filter(|k| zipf_sample(n, *k as f64 / 1000.0) == n - 1)
            .count();
        assert!(first > 5 * last.max(1), "first={first} last={last}");
    }

    #[test]
    fn zipf_sample_in_bounds() {
        for u in [0.0, 0.25, 0.5, 0.999] {
            assert!(zipf_sample(5, u) < 5);
        }
        assert_eq!(zipf_sample(1, 0.7), 0);
    }

    #[test]
    fn template_adjectives_are_sentiment_lexicon_words() {
        // keep vocab in sync with the embedded lexicon
        use wf_types::Polarity;
        let raw = include_str!("../../lexicon/data/sentiment.tsv");
        let has = |word: &str, pol: &str| {
            raw.lines()
                .any(|l| l.starts_with(&format!("{word}\tJJ\t{pol}")))
        };
        for w in POS_ADJ {
            assert!(has(w, "+"), "{w} missing from lexicon");
        }
        for w in NEG_ADJ {
            assert!(has(w, "-"), "{w} missing from lexicon");
        }
        let _ = Polarity::Positive;
    }
}

//! Ambiguous-subject corpus for the disambiguation experiment.
//!
//! The paper's example: the token "SUN" may mean SUN Microsystems or
//! Sunday, and "due to the high ambiguity of natural language, some token
//! strings that match the subject term may not refer to the intended
//! subject". We generate documents mentioning the camera brand "Apex"
//! alongside documents using "apex" as a common noun (mountaineering),
//! with gold on/off-topic labels per mention.

use crate::gold::Domain;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The ambiguous brand name.
pub const AMBIGUOUS_BRAND: &str = "Apex";

/// One document with gold topicality per "Apex" mention (all mentions in
/// a document share the gold label — brand pages talk about the camera,
/// climbing pages about summits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmbiguityDoc {
    pub domain: Domain,
    pub text: String,
    /// True when "Apex" refers to the camera brand here.
    pub on_topic: bool,
    /// True when the document carries sentiment wording around the
    /// mention (used to measure downstream false positives).
    pub has_sentiment_words: bool,
}

/// Generates `n_on` brand documents and `n_off` common-noun documents.
pub fn ambiguity_corpus(seed: u64, n_on: usize, n_off: usize) -> Vec<AmbiguityDoc> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::with_capacity(n_on + n_off);
    for _ in 0..n_on {
        docs.push(brand_doc(&mut rng));
    }
    for _ in 0..n_off {
        docs.push(climbing_doc(&mut rng));
    }
    docs
}

fn brand_doc(rng: &mut StdRng) -> AmbiguityDoc {
    const OPENERS: &[&str] = &[
        "The Apex camera arrived with a spare battery.",
        "I tested the Apex against two other cameras.",
        "The Apex ships with a zoom lens and a charger.",
    ];
    const SENTIMENT: &[&str] = &[
        "The Apex takes excellent pictures.",
        "The Apex is terrible in low light.",
        "I am impressed by the Apex viewfinder.",
    ];
    const FILLER: &[&str] = &[
        "The shutter feels responsive and the menu is plain.",
        "The memory card slot sits under a small door.",
        "The battery lasts a full day of shooting.",
    ];
    let has_sentiment = rng.random_bool(0.6);
    let mut sentences = vec![OPENERS[rng.random_range(0..OPENERS.len())].to_string()];
    if has_sentiment {
        sentences.push(SENTIMENT[rng.random_range(0..SENTIMENT.len())].to_string());
    }
    sentences.push(FILLER[rng.random_range(0..FILLER.len())].to_string());
    AmbiguityDoc {
        domain: Domain::DigitalCamera,
        text: sentences.join(" "),
        on_topic: true,
        has_sentiment_words: has_sentiment,
    }
}

fn climbing_doc(rng: &mut StdRng) -> AmbiguityDoc {
    const OPENERS: &[&str] = &[
        "We reached the Apex of the ridge before noon.",
        "The trail climbs toward the Apex through loose scree.",
        "From the Apex the whole valley opens up.",
    ];
    const SENTIMENT: &[&str] = &[
        "The Apex offers stunning views of the glacier.",
        "The Apex is beautiful at sunrise.",
        "The climb to the Apex is dreadful in the rain.",
    ];
    const FILLER: &[&str] = &[
        "The weather shifted as we descended the mountain trail.",
        "Our guide checked the rope at every anchor on the climb.",
        "The summit hut serves soup until the evening.",
    ];
    let has_sentiment = rng.random_bool(0.6);
    let mut sentences = vec![OPENERS[rng.random_range(0..OPENERS.len())].to_string()];
    if has_sentiment {
        sentences.push(SENTIMENT[rng.random_range(0..SENTIMENT.len())].to_string());
    }
    sentences.push(FILLER[rng.random_range(0..FILLER.len())].to_string());
    AmbiguityDoc {
        domain: Domain::Background,
        text: sentences.join(" "),
        on_topic: false,
        has_sentiment_words: has_sentiment,
    }
}

/// On-topic context terms for the camera-brand reading.
pub fn brand_context_terms() -> Vec<String> {
    [
        "camera",
        "lens",
        "battery",
        "zoom",
        "viewfinder",
        "shutter",
        "pictures",
        "menu",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Off-topic context terms (the mountaineering reading).
pub fn climbing_context_terms() -> Vec<String> {
    [
        "ridge", "trail", "valley", "glacier", "summit", "climb", "mountain", "scree", "rope",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = ambiguity_corpus(5, 10, 15);
        let b = ambiguity_corpus(5, 10, 15);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        assert_eq!(a.iter().filter(|d| d.on_topic).count(), 10);
    }

    #[test]
    fn every_doc_mentions_the_brand_token() {
        for doc in ambiguity_corpus(1, 5, 5) {
            assert!(doc.text.contains(AMBIGUOUS_BRAND), "{}", doc.text);
        }
    }

    #[test]
    fn context_vocabularies_are_disjoint() {
        let brand = brand_context_terms();
        for t in climbing_context_terms() {
            assert!(!brand.contains(&t), "{t} in both vocabularies");
        }
    }

    #[test]
    fn sentiment_flag_matches_content() {
        for doc in ambiguity_corpus(3, 20, 20) {
            if doc.has_sentiment_words {
                let lowered = doc.text.to_lowercase();
                assert!(
                    [
                        "excellent",
                        "terrible",
                        "impressed",
                        "stunning",
                        "beautiful",
                        "dreadful"
                    ]
                    .iter()
                    .any(|w| lowered.contains(w)),
                    "{}",
                    doc.text
                );
            }
        }
    }
}

//! Product-review corpus generators (digital camera and music domains).
//!
//! Collection sizes follow the paper: 485 D+ / 1838 D− for digital
//! cameras, 250 D+ / 2389 D− for music, all collected (here: generated
//! deterministically) with document-level review labels and per-mention
//! gold sentiment.

use crate::gold::{Corpus, Domain, GeneratedDoc, GoldMention};
use crate::templates;
use crate::vocab::{zipf_sample, CAMERA_FEATURES, CAMERA_PRODUCTS, MUSIC_ARTISTS, MUSIC_FEATURES};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wf_types::Polarity;

/// Mention-slot mix for review documents. Probabilities must sum to ≤ 1;
/// the remainder goes to `NeutralDistractor`.
#[derive(Debug, Clone, Copy)]
pub struct SlotWeights {
    pub clear: f64,
    pub lexical_only: f64,
    pub exotic: f64,
    pub sarcasm: f64,
    pub contrast: f64,
    pub neutral_plain: f64,
}

impl Default for SlotWeights {
    fn default() -> Self {
        // tuned so Table 4's shape holds: sentiment cases are a minority,
        // distractor-neutral mentions dominate (killing collocation
        // precision), and a sizable share of true sentiment is invisible
        // to structural analysis (capping the miner's recall)
        SlotWeights {
            clear: 0.10,
            lexical_only: 0.06,
            exotic: 0.04,
            sarcasm: 0.02,
            contrast: 0.05,
            neutral_plain: 0.16,
        }
    }
}

/// Review-corpus generation parameters.
#[derive(Debug, Clone)]
pub struct ReviewConfig {
    pub n_plus: usize,
    pub n_minus: usize,
    /// Product-mention sentences per document (besides the intro).
    pub mention_slots: usize,
    /// Feature sentences per document.
    pub feature_sentences: usize,
    pub weights: SlotWeights,
}

impl ReviewConfig {
    /// Paper-scale digital camera configuration (485 / 1838).
    pub fn camera() -> Self {
        ReviewConfig {
            n_plus: 485,
            n_minus: 1838,
            mention_slots: 4,
            feature_sentences: 40,
            weights: SlotWeights::default(),
        }
    }

    /// Paper-scale music configuration (250 / 2389).
    pub fn music() -> Self {
        ReviewConfig {
            n_plus: 250,
            n_minus: 2389,
            mention_slots: 4,
            feature_sentences: 24,
            weights: SlotWeights::default(),
        }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        ReviewConfig {
            n_plus: 20,
            n_minus: 40,
            mention_slots: 4,
            feature_sentences: 6,
            weights: SlotWeights::default(),
        }
    }
}

/// Generates the digital camera review corpus.
pub fn camera_reviews(seed: u64, config: &ReviewConfig) -> Corpus {
    reviews(
        seed,
        config,
        Domain::DigitalCamera,
        CAMERA_PRODUCTS,
        CAMERA_FEATURES,
    )
}

/// Generates the music review corpus.
pub fn music_reviews(seed: u64, config: &ReviewConfig) -> Corpus {
    reviews(
        seed,
        config,
        Domain::MusicReview,
        MUSIC_ARTISTS,
        MUSIC_FEATURES,
    )
}

fn flavor_of(domain: Domain) -> templates::Flavor {
    match domain {
        Domain::MusicReview => templates::Flavor::Music,
        _ => templates::Flavor::Product,
    }
}

fn reviews(
    seed: u64,
    config: &ReviewConfig,
    domain: Domain,
    subjects: &[&str],
    features: &[&str],
) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let d_plus = (0..config.n_plus)
        .map(|_| review_doc(&mut rng, config, domain, subjects, features))
        .collect();
    let d_minus = (0..config.n_minus)
        .map(|_| background_doc(&mut rng))
        .collect();
    Corpus { d_plus, d_minus }
}

fn review_doc(
    rng: &mut StdRng,
    config: &ReviewConfig,
    domain: Domain,
    subjects: &[&str],
    features: &[&str],
) -> GeneratedDoc {
    let doc_label = if rng.random_bool(0.5) {
        Polarity::Positive
    } else {
        Polarity::Negative
    };
    // a quarter of reviews are ambivalent: their sentences lean only
    // weakly toward the overall rating, which caps document-level
    // classifier accuracy the way real mixed reviews do
    let alignment = if rng.random_bool(0.32) { 0.55 } else { 0.85 };
    let subject = subjects[zipf_sample(subjects.len(), rng.random())];
    let mut sentences: Vec<String> = Vec::new();
    let mut mentions: Vec<GoldMention> = Vec::new();

    let push_realized =
        |r: templates::Realized, sentences: &mut Vec<String>, mentions: &mut Vec<GoldMention>| {
            let idx = sentences.len();
            sentences.push(r.sentence);
            for (subj, pol, case) in r.mentions {
                mentions.push(GoldMention {
                    sentence: idx,
                    subject: subj,
                    polarity: pol,
                    case,
                });
            }
        };

    // intro: a plain-neutral product mention opens every review
    push_realized(
        templates::neutral_plain(subject, rng.random_range(0..100)),
        &mut sentences,
        &mut mentions,
    );

    // reviewer chatter: generic definite NPs that also occur in the
    // background collection — frequency-based candidate selection admits
    // them, the likelihood-ratio test rejects them
    const CHATTER: &[&str] = &[
        "The weather turned cold that week.",
        "The weekend felt far too short.",
        "The shop opens at nine sharp.",
        "The traffic made me late again.",
        "The morning started slowly.",
        "The afternoon ran long.",
    ];
    for _ in 0..3 {
        sentences.push(CHATTER[rng.random_range(0..CHATTER.len())].to_string());
    }

    // interleave feature sentences and product-mention slots
    let mut feature_left = config.feature_sentences;
    let mut slots_left = config.mention_slots;
    while feature_left > 0 || slots_left > 0 {
        let take_feature = feature_left > 0
            && (slots_left == 0
                || rng.random_bool(feature_left as f64 / (feature_left + slots_left * 4) as f64));
        if take_feature {
            feature_left -= 1;
            let feature = features[zipf_sample(features.len(), rng.random())];
            let pick = rng.random_range(0..100);
            let sentence = if rng.random_bool(0.2) {
                // compound sentence referencing two features at once
                let second = features[zipf_sample(features.len(), rng.random())];
                let verb = match aligned_polarity(rng, doc_label, alignment) {
                    Polarity::Positive => "impressed",
                    _ => "disappointed",
                };
                format!("The {feature} and the {second} {verb} me.")
            } else if rng.random_bool(0.25) {
                templates::feature_sentence_neutral(feature, pick)
            } else {
                let pol = aligned_polarity(rng, doc_label, alignment);
                templates::feature_sentence(feature, pol, pick)
            };
            sentences.push(sentence);
        } else if slots_left > 0 {
            slots_left -= 1;
            let pick = rng.random_range(0..100);
            let pol = aligned_polarity(rng, doc_label, alignment);
            let w = config.weights;
            let u: f64 = rng.random();
            let r = if u < w.clear {
                templates::clear_flavored(subject, pol, pick, flavor_of(domain))
            } else if u < w.clear + w.lexical_only {
                templates::lexical_only(subject, pol, pick)
            } else if u < w.clear + w.lexical_only + w.exotic {
                templates::exotic(subject, pol, pick)
            } else if u < w.clear + w.lexical_only + w.exotic + w.sarcasm {
                templates::sarcasm(subject, pick)
            } else if u < w.clear + w.lexical_only + w.exotic + w.sarcasm + w.contrast {
                let other = pick_other(rng, subjects, subject);
                templates::contrast(subject, other, pol, pick)
            } else if u < w.clear
                + w.lexical_only
                + w.exotic
                + w.sarcasm
                + w.contrast
                + w.neutral_plain
            {
                templates::neutral_plain(subject, pick)
            } else {
                templates::neutral_distractor(subject, pick)
            };
            push_realized(r, &mut sentences, &mut mentions);
        }
    }

    GeneratedDoc {
        domain,
        sentences,
        doc_label: Some(doc_label),
        mentions,
    }
}

/// Sentence sentiments align with the overall review rating with the
/// document's alignment probability.
fn aligned_polarity(rng: &mut StdRng, doc_label: Polarity, alignment: f64) -> Polarity {
    if rng.random_bool(alignment) {
        doc_label
    } else {
        doc_label.reversed()
    }
}

fn pick_other<'a>(rng: &mut StdRng, subjects: &[&'a str], subject: &str) -> &'a str {
    loop {
        let candidate = subjects[rng.random_range(0..subjects.len())];
        if candidate != subject {
            return candidate;
        }
    }
}

/// A background (D−) document: generic web text with no domain features.
pub fn background_doc(rng: &mut StdRng) -> GeneratedDoc {
    const TEMPLATES: &[&str] = &[
        "The government announced a new policy on Monday.",
        "The team won the final game of the season.",
        "The weather stayed mild through the weekend.",
        "The recipe calls for butter and two eggs.",
        "Traffic on the bridge was heavy this morning.",
        "The committee will meet again in October.",
        "The museum opened a new wing downtown.",
        "Voters head to the polls next week.",
        "The library extended its evening hours.",
        "The festival drew a large crowd this year.",
        "The mayor spoke briefly about the budget.",
        "Rain is expected across the valley tomorrow.",
        "The school board approved the plan quietly.",
        "A new bakery opened on Fifth Street.",
        "The train service resumed after the holiday.",
        "The garden club planted trees along the avenue.",
        "The shelf in the hallway needs repair.",
        "The trip lasted three days in march.",
        "The drawer held old letters and a novel.",
        "The box arrived during the storm.",
        "The weather turned mild over the weekend.",
        "The shop downtown changed owners.",
        "The traffic eased by the afternoon.",
        "The morning news covered the election.",
    ];
    let n = rng.random_range(5..10);
    let sentences: Vec<String> = (0..n)
        .map(|_| TEMPLATES[rng.random_range(0..TEMPLATES.len())].to_string())
        .collect();
    GeneratedDoc {
        domain: Domain::Background,
        sentences,
        doc_label: None,
        mentions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gold::CaseClass;

    #[test]
    fn deterministic_for_same_seed() {
        let a = camera_reviews(7, &ReviewConfig::small());
        let b = camera_reviews(7, &ReviewConfig::small());
        assert_eq!(a.d_plus, b.d_plus);
        assert_eq!(a.d_minus, b.d_minus);
    }

    #[test]
    fn different_seeds_differ() {
        let a = camera_reviews(7, &ReviewConfig::small());
        let b = camera_reviews(8, &ReviewConfig::small());
        assert_ne!(a.d_plus, b.d_plus);
    }

    #[test]
    fn collection_sizes_match_config() {
        let c = camera_reviews(1, &ReviewConfig::small());
        assert_eq!(c.d_plus.len(), 20);
        assert_eq!(c.d_minus.len(), 40);
    }

    #[test]
    fn paper_scale_configs() {
        assert_eq!(ReviewConfig::camera().n_plus, 485);
        assert_eq!(ReviewConfig::camera().n_minus, 1838);
        assert_eq!(ReviewConfig::music().n_plus, 250);
        assert_eq!(ReviewConfig::music().n_minus, 2389);
    }

    #[test]
    fn every_doc_has_label_and_mentions() {
        let c = camera_reviews(3, &ReviewConfig::small());
        for doc in &c.d_plus {
            assert!(doc.doc_label.is_some());
            assert!(!doc.mentions.is_empty());
            for m in &doc.mentions {
                assert!(m.sentence < doc.sentences.len());
                assert!(
                    doc.sentences[m.sentence].contains(&m.subject),
                    "{} not in {:?}",
                    m.subject,
                    doc.sentences[m.sentence]
                );
            }
        }
    }

    #[test]
    fn neutral_mentions_dominate() {
        let c = camera_reviews(11, &ReviewConfig::camera());
        let all: Vec<&GoldMention> = c.d_plus.iter().flat_map(|d| d.mentions.iter()).collect();
        let neutral = all
            .iter()
            .filter(|m| m.polarity == Polarity::Neutral)
            .count();
        let ratio = neutral as f64 / all.len() as f64;
        assert!(
            (0.55..0.90).contains(&ratio),
            "neutral ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn background_docs_have_no_mentions() {
        let c = camera_reviews(5, &ReviewConfig::small());
        for doc in &c.d_minus {
            assert!(doc.mentions.is_empty());
            assert_eq!(doc.domain, Domain::Background);
        }
    }

    #[test]
    fn feature_sentences_present_for_extraction() {
        let c = camera_reviews(13, &ReviewConfig::small());
        let text = c.d_plus_texts().join(" ");
        assert!(text.contains("The camera") || text.contains("The picture"));
    }

    #[test]
    fn music_corpus_uses_music_vocabulary() {
        let c = music_reviews(2, &ReviewConfig::small());
        let text = c.d_plus_texts().join(" ");
        assert!(
            text.contains("The song") || text.contains("The album") || text.contains("The track")
        );
    }

    #[test]
    fn contrast_mentions_come_in_opposite_pairs() {
        let c = camera_reviews(17, &ReviewConfig::camera());
        let mut checked = 0;
        for doc in &c.d_plus {
            let contrasts: Vec<&GoldMention> = doc
                .mentions
                .iter()
                .filter(|m| m.case == CaseClass::Contrast)
                .collect();
            for pair in contrasts.chunks(2) {
                if pair.len() == 2 && pair[0].sentence == pair[1].sentence {
                    assert_eq!(pair[0].polarity, pair[1].polarity.reversed());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no contrast pairs generated at paper scale");
    }
}

//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::{Error, Number, Value};
use std::collections::BTreeMap;

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // consume '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // high surrogate: expect a \uXXXX low surrogate
                                if !self.eat("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 left pos after the 4 digits; compensate
                            // for the += 1 below
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // decode one UTF-8 scalar from the raw bytes
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12").unwrap(), Value::Number(Number::I64(-12)));
        assert_eq!(parse("3.5").unwrap(), Value::Number(Number::F64(3.5)));
        assert_eq!(parse("\"a b\"").unwrap(), Value::String("a b".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::String("line\nquote\"slash\\tab\tunicode é 日 end".into());
        let text = original.to_json_string();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn surrogate_pair() {
        // raw UTF-8 path
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        // \u escape path with a surrogate pair
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn control_chars_escaped_and_parsed() {
        let original = Value::String("\u{0001}\u{001f}".into());
        assert_eq!(parse(&original.to_json_string()).unwrap(), original);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}

//! Offline shim for `serde_json`.
//!
//! Renders and parses JSON text over the serde shim's [`Value`] tree and
//! provides a `json!` macro covering the workspace's usage (object /
//! array literals with expression values, including nested bare `{...}`
//! and `[...]`; object keys must be string literals).

mod parse;

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serializes a value to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Converts a value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Support for the `json!` macro: serializes by reference so interpolating
/// a field does not move it (matches real serde_json). Not public API.
#[doc(hidden)]
pub fn __json_to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports nested objects/arrays, `null`, and arbitrary interpolated
/// expressions (anything with an `Into<Value>` impl). Object keys must be
/// string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@array array $($tt)*);
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        let mut object: ::std::collections::BTreeMap<::std::string::String, $crate::Value> =
            ::std::collections::BTreeMap::new();
        $crate::json_internal!(@object object $($tt)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::__json_to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches object entries / array
/// elements one value at a time. Nested `{...}`/`[...]` values are matched
/// as token groups before the generic `expr` arms (a bare brace literal is
/// not a Rust expression).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- objects ----
    (@object $map:ident) => {};
    (@object $map:ident ,) => {};
    (@object $map:ident $key:literal : null , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : null) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
    };
    (@object $map:ident $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : { $($inner:tt)* }) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
    };
    (@object $map:ident $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : [ $($inner:tt)* ]) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
    };
    (@object $map:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::__json_to_value(&$value));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : $value:expr) => {
        $map.insert(($key).to_string(), $crate::__json_to_value(&$value));
    };
    // ---- arrays ----
    (@array $array:ident) => {};
    (@array $array:ident ,) => {};
    (@array $array:ident null , $($rest:tt)*) => {
        $array.push($crate::Value::Null);
        $crate::json_internal!(@array $array $($rest)*);
    };
    (@array $array:ident null) => {
        $array.push($crate::Value::Null);
    };
    (@array $array:ident { $($inner:tt)* } , $($rest:tt)*) => {
        $array.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@array $array $($rest)*);
    };
    (@array $array:ident { $($inner:tt)* }) => {
        $array.push($crate::json!({ $($inner)* }));
    };
    (@array $array:ident [ $($inner:tt)* ] , $($rest:tt)*) => {
        $array.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@array $array $($rest)*);
    };
    (@array $array:ident [ $($inner:tt)* ]) => {
        $array.push($crate::json!([ $($inner)* ]));
    };
    (@array $array:ident $value:expr , $($rest:tt)*) => {
        $array.push($crate::__json_to_value(&$value));
        $crate::json_internal!(@array $array $($rest)*);
    };
    (@array $array:ident $value:expr) => {
        $array.push($crate::__json_to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_scalars() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3), Value::from(3));
        assert_eq!(json!("hi"), Value::from("hi"));
        let x = 4u64;
        assert_eq!(json!(x + 1), Value::from(5u64));
    }

    #[test]
    fn json_macro_nested() {
        let items = vec!["a".to_string(), "b".to_string()];
        let v = json!({
            "name": "test",
            "meta": { "count": items.len(), "tags": items },
            "flags": [true, false, null],
            "nothing": null,
        });
        assert_eq!(v["name"], "test");
        assert_eq!(v["meta"]["count"], 2usize);
        assert_eq!(v["meta"]["tags"][1], "b");
        assert_eq!(v["flags"][2], Value::Null);
        assert!(v["nothing"].is_null());
    }

    #[test]
    fn to_string_round_trip() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_prints_indented() {
        let s = to_string_pretty(&json!({"a": 1})).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }
}

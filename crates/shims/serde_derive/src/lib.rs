//! Offline shim for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (for the
//! in-repo serde shim, whose traits are value-tree based) without `syn` /
//! `quote`, by walking the raw token stream. Supported shapes — the ones
//! this workspace uses:
//!
//! - structs with named fields            → JSON object
//! - tuple structs with exactly one field → the inner value (newtype)
//! - enums with only unit variants        → the variant name as a string
//!
//! Anything else produces a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with exactly one field.
    Newtype,
    /// Enum whose variants are all unit variants.
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, mode)
            .parse()
            .expect("serde_derive shim produced invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Parses the item: skips attributes and visibility, identifies
/// struct/enum, extracts the name and field/variant list.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    // skip attributes (#[...]) and visibility
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // optional pub(crate) / pub(super)
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type {name}"
            ));
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected {{...}} or (...) body, got {other:?}")),
    };
    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Ok((name, Shape::Named(named_fields(body.stream())?))),
        ("struct", Delimiter::Parenthesis) => {
            let n = count_top_level_fields(body.stream());
            if n == 1 {
                Ok((name, Shape::Newtype))
            } else {
                Err(format!(
                    "serde shim derive supports only 1-field tuple structs; {name} has {n}"
                ))
            }
        }
        ("enum", Delimiter::Brace) => Ok((name, Shape::UnitEnum(unit_variants(body.stream())?))),
        _ => Err(format!("unsupported item shape for {name}")),
    }
}

/// Field names of a named-field struct body. Commas inside generic types
/// (e.g. `BTreeMap<String, String>`) are skipped by tracking `<`/`>` depth
/// (parens/brackets/braces arrive as single groups and need no tracking).
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // skip attributes and visibility before the field name
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, got {tree:?}"));
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field, got {other:?}")),
        }
        // consume the type: everything until a comma at angle depth 0
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
    }
    Ok(fields)
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tree in body {
        match &tree {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    fields += 1;
                    saw_tokens = false;
                    continue;
                }
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

fn unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // skip attributes before the variant
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            return Err(format!("expected enum variant, got {tree:?}"));
        };
        variants.push(variant.to_string());
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!(
                    "serde shim derive supports only unit enum variants; found {other:?} after {}",
                    variants.last().unwrap()
                ))
            }
        }
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, mode: Mode) -> String {
    match (mode, shape) {
        (Mode::Serialize, Shape::Named(fields)) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut map = ::std::collections::BTreeMap::new();\n\
                         {inserts}\
                         ::serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        (Mode::Deserialize, Shape::Named(fields)) => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\n\
                             obj.get({f:?}).unwrap_or(&::serde::Value::Null)\n\
                         ).map_err(|e| ::serde::Error::custom(\n\
                             format!(\"{name}.{f}: {{e}}\")))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected object for \", stringify!({name}))))?;\n\
                         ::std::result::Result::Ok({name} {{\n{builds}}})\n\
                     }}\n\
                 }}"
            )
        }
        (Mode::Serialize, Shape::Newtype) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        (Mode::Deserialize, Shape::Newtype) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        (Mode::Serialize, Shape::UnitEnum(variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {:?},\n", v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{\n{arms}}}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        (Mode::Deserialize, Shape::UnitEnum(variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{v}),\n", v))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected string for \", stringify!({name}))))?;\n\
                         match s {{\n{arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no network access and no crates.io mirror, so
//! the real `parking_lot` cannot be fetched. This crate reproduces the
//! subset of its API the workspace uses — `RwLock` and `Mutex` whose lock
//! methods return guards directly (no `Result`, no poisoning) — on top of
//! the standard library primitives. A poisoned std lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn rwlock_survives_poison() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: lock is still usable
        *lock.write() += 1;
        assert_eq!(*lock.read(), 1);
    }
}

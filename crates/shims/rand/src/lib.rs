//! Offline shim for `rand` 0.10.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! sampling methods the workspace uses (`random`, `random_bool`,
//! `random_range`). The generator is xoshiro256++ seeded via SplitMix64 —
//! statistically solid for corpus generation and fault injection, and
//! fully deterministic for a given seed. The sampled *sequences* differ
//! from the real rand crate's `StdRng` (ChaCha12), which is fine: nothing
//! in the workspace depends on rand's exact stream, only on seeded
//! determinism.

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Sampling convenience methods, mirroring rand 0.10's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// A uniform sample from `start..end`. Panics when the range is empty,
    /// like the real rand crate.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(
            range.start < range.end,
            "random_range called with an empty range"
        );
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniform_int {
    ($($t:ty)*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let width = (end as i128 - start as i128) as u128;
                // Lemire-style widening multiply avoids modulo bias skew
                // enough for simulation purposes without a rejection loop.
                let hi = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
uniform_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

pub mod rngs {
    pub use super::StdRng;
}

/// The standard seedable generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // expand the seed with SplitMix64, per the xoshiro authors'
        // recommendation
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn random_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // crude uniformity check
        assert!((0.4..0.6).contains(&(sum / 1000.0)));
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}

//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the criterion call
//! surface this workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput::Bytes`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from real criterion: no statistical analysis, plots, or
//! saved baselines — each benchmark is timed over `sample_size` samples
//! after a short warm-up and median/min/max are printed. Good enough to
//! keep `cargo bench` runnable (and perf changes visible) offline.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle handed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Present for API parity with `criterion_group!`'s configured form.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// `criterion_main!` calls this; the shim runs benches eagerly, so
    /// there is nothing left to finalize.
    pub fn final_summary(&self) {}
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation; the shim uses it to print MiB/s for `Bytes`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if median.as_nanos() > 0 => {
                let mib_s = bytes as f64 / (1024.0 * 1024.0) / (median.as_nanos() as f64 / 1e9);
                format!("  {mib_s:.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let elem_s = n as f64 / (median.as_nanos() as f64 / 1e9);
                format!("  {elem_s:.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median:?} (min {min:?}, max {max:?}, n={}){rate}",
            self.name,
            sorted.len(),
        );
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up: a few unrecorded runs
        for _ in 0..2 {
            hint::black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // 2 warm-up + 3 recorded samples
        assert_eq!(runs, 5);
    }
}

//! Offline shim for `serde`.
//!
//! The build container cannot fetch crates, so this crate supplies the
//! subset of serde the workspace relies on: `Serialize` / `Deserialize`
//! traits (plus their derive macros from the sibling `serde_derive` shim)
//! and a JSON-shaped [`Value`] tree. Unlike real serde there is no
//! `Serializer`/`Deserializer` abstraction: serialization always goes
//! through `Value`, and the sibling `serde_json` shim renders/parses it.
//!
//! The derive macros support exactly the shapes used in this workspace:
//! structs with named fields, single-field tuple structs (newtypes), and
//! enums whose variants are all unit variants.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Serialization: convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization: reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

// ---- Serialize impls for primitives and std containers ----

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i128(*self as i128))
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize u8 u16 u32 usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// ---- Deserialize impls ----

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected integer, got {}", v.kind()
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
de_int!(i8 i16 i32 i64 isize u8 u16 u32 usize);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .ok_or_else(|| Error::custom(format!("expected u64, got {}", v.kind())))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_value(&some.to_value()).unwrap(),
            Some(7)
        );
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        assert_eq!(BTreeMap::<String, u32>::from_value(&v).unwrap(), m);
    }
}

//! JSON-shaped value tree: the single interchange representation of the
//! serde/serde_json shims.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number. Integers keep full 64-bit precision; floats are `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn from_i128(n: i128) -> Number {
        if let Ok(u) = u64::try_from(n) {
            Number::U64(u)
        } else if let Ok(i) = i64::try_from(n) {
            Number::I64(i)
        } else {
            Number::F64(n as f64)
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(n) => u64::try_from(n).ok(),
            Number::U64(n) => Some(n),
            Number::F64(f) if f.fract() == 0.0 && f >= 0.0 && f < 1.9e19 => Some(f as u64),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(n) => Some(n as f64),
            Number::U64(n) => Some(n as f64),
            Number::F64(f) => Some(f),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::F64(a), Number::F64(b)) => a == b,
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                _ => match (a.as_u64(), b.as_u64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => a.as_f64() == b.as_f64(),
                },
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(n) => write!(f, "{n}"),
            Number::U64(n) => write!(f, "{n}"),
            Number::F64(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1.0e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no Inf/NaN; mirror serde_json's `null`
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Human-readable kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Serializes to compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes to pretty JSON (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json_string())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// ---- From conversions (used by the json! macro) ----

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

macro_rules! value_from_int {
    ($($t:ty)*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::from_i128(n as i128))
            }
        }
        impl From<&$t> for Value {
            fn from(n: &$t) -> Value {
                Value::from(*n)
            }
        }
    )*};
}
value_from_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::F64(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::F64(f as f64))
    }
}

impl From<&f64> for Value {
    fn from(f: &f64) -> Value {
        Value::from(*f)
    }
}

impl From<&f32> for Value {
    fn from(f: &f32) -> Value {
        Value::from(*f)
    }
}

impl From<&bool> for Value {
    fn from(b: &bool) -> Value {
        Value::Bool(*b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

// ---- Comparisons with plain Rust values (test ergonomics) ----

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        Number::from_i128(*other as i128) == *n
                    }
                    _ => false,
                }
            }
        }
    )*};
}
value_eq_int!(i8 i16 i32 i64 u8 u16 u32 u64 usize isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(BTreeMap::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"]["deeper"].is_null());
    }

    #[test]
    fn compact_json_writer() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), Value::from(1));
        map.insert("b".to_string(), Value::from("x\ny"));
        let v = Value::Object(map);
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":"x\ny"}"#);
    }

    #[test]
    fn numeric_cross_variant_eq() {
        assert_eq!(Value::Number(Number::I64(3)), Value::Number(Number::U64(3)));
        assert_eq!(Value::from(3i64), 3u64);
    }
}

//! The regex subset proptest string strategies are written in.
//!
//! Supported: literal characters, character classes `[...]` (literals,
//! ranges, `-` literal when first/last), the `\PC` "printable" class, and
//! `{min,max}` repetition after any of those. That covers every pattern
//! in this workspace's property tests.

use crate::TestRng;

/// One compiled pattern element plus its repetition counts.
struct Element {
    class: CharClass,
    min: usize,
    max: usize,
}

enum CharClass {
    /// Exactly one char.
    Literal(char),
    /// Inclusive char ranges (single chars are 1-length ranges).
    Set(Vec<(char, char)>),
    /// `\PC`: any non-control char. Sampled from ASCII printable plus a
    /// spread of multi-byte scalars so byte-offset logic gets exercised.
    Printable,
}

/// Multi-byte sample pool for `\PC` (2-, 3- and 4-byte UTF-8).
const UNICODE_SAMPLE: &[char] = &[
    'é', 'ß', 'ñ', 'ø', 'Ω', 'λ', 'ж', '№', '—', '…', '“', '”', '日', '本', '語', '中', '€', '🙂',
    '😀', '🚀',
];

pub struct Pattern {
    elements: Vec<Element>,
}

impl Pattern {
    pub fn compile(pattern: &str) -> Result<Pattern, String> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let class = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut members: Vec<char> = Vec::new();
                    loop {
                        let Some(m) = chars.next() else {
                            return Err("unterminated character class".into());
                        };
                        if m == ']' {
                            break;
                        }
                        members.push(m);
                    }
                    let mut i = 0;
                    while i < members.len() {
                        // `a-z` range: '-' between two members, not at the ends
                        if i + 2 < members.len() && members[i + 1] == '-' {
                            set.push((members[i], members[i + 2]));
                            i += 3;
                        } else {
                            set.push((members[i], members[i]));
                            i += 1;
                        }
                    }
                    if set.is_empty() {
                        return Err("empty character class".into());
                    }
                    CharClass::Set(set)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        if chars.next() != Some('C') {
                            return Err("only \\PC is supported after \\P".into());
                        }
                        CharClass::Printable
                    }
                    Some(e @ ('\\' | '.' | '[' | ']' | '{' | '}' | '-')) => CharClass::Literal(e),
                    other => return Err(format!("unsupported escape \\{other:?}")),
                },
                '{' | '}' | ']' => return Err(format!("unexpected {c:?} in pattern")),
                lit => CharClass::Literal(lit),
            };
            // optional {min,max} repetition
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(d) => spec.push(d),
                        None => return Err("unterminated repetition".into()),
                    }
                }
                let (lo, hi) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("repetition {{{spec}}} needs 'min,max'"))?;
                let lo: usize = lo.trim().parse().map_err(|_| "bad repetition min")?;
                let hi: usize = hi.trim().parse().map_err(|_| "bad repetition max")?;
                if lo > hi {
                    return Err(format!("repetition {{{spec}}} is inverted"));
                }
                (lo, hi)
            } else {
                (1, 1)
            };
            elements.push(Element { class, min, max });
        }
        Ok(Pattern { elements })
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for element in &self.elements {
            let n = element.min + rng.below((element.max - element.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(element.class.sample(rng));
            }
        }
        out
    }
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Literal(c) => *c,
            CharClass::Set(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
                    }
                    pick -= span;
                }
                ranges[0].0
            }
            CharClass::Printable => {
                // mostly ASCII, with a spread of multi-byte scalars
                if rng.below(100) < 85 {
                    char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap_or(' ')
                } else {
                    UNICODE_SAMPLE[rng.below(UNICODE_SAMPLE.len() as u64) as usize]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("pattern-tests")
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let p = Pattern::compile("[a-zA-Z0-9 ,.!?'-]{0,40}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = p.generate(&mut r);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,.!?'-".contains(c)));
        }
    }

    #[test]
    fn printable_class_generates_valid_utf8_strings() {
        let p = Pattern::compile("\\PC{0,50}").unwrap();
        let mut r = rng();
        let mut saw_multibyte = false;
        for _ in 0..300 {
            let s = p.generate(&mut r);
            assert!(s.chars().count() <= 50);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_multibyte |= s.bytes().len() > s.chars().count();
        }
        assert!(saw_multibyte, "\\PC should exercise multi-byte chars");
    }

    #[test]
    fn trailing_dash_is_literal() {
        let p = Pattern::compile("[ab-]{1,1}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let s = p.generate(&mut r);
            assert!(["a", "b", "-"].contains(&s.as_str()), "{s:?}");
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(Pattern::compile("(group)").is_ok()); // parens are literals here
        assert!(Pattern::compile("[unterminated").is_err());
        assert!(Pattern::compile("a{2,1}").is_err());
    }
}

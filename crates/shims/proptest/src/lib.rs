//! Offline shim for `proptest`.
//!
//! A compact deterministic property-testing harness exposing the subset of
//! proptest's API this workspace uses:
//!
//! - `proptest! { #[test] fn name(arg in strategy, ...) { ... } }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! - string strategies from a regex subset (`"[a-z0-9 ]{0,60}"`, `"\\PC{0,200}"`)
//! - integer range strategies (`0u64..200`, `-5i32..=5`)
//! - `prop::collection::vec(strategy, size_range)`
//!
//! Differences from real proptest: no shrinking (the failing case is
//! reported as-is), and a fixed per-test deterministic seed derived from
//! the test name (override case count with `PROPTEST_CASES`, mix in an
//! extra seed with `PROPTEST_SEED` — CI runs a small seed matrix).

mod pattern;

use std::fmt;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — try another case.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "inputs rejected by prop_assume!"),
        }
    }
}

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed
        let mut hash = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        // PROPTEST_SEED varies the per-test stream (CI runs a seed matrix);
        // unset means the historical name-only seed, so default runs are
        // byte-for-byte reproducible across machines.
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            let mixed = seed
                .parse::<u64>()
                .unwrap_or_else(|_| Self::fnv(seed.as_bytes()));
            hash ^= mixed.wrapping_mul(0x9E3779B97F4A7C15);
        }
        TestRng { state: hash }
    }

    fn fnv(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf29ce484222325u64;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; bound must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    type Value: fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// String strategy: a pattern from the supported regex subset.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::Pattern::compile(self)
            .unwrap_or_else(|e| panic!("unsupported proptest pattern {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo + 1) as u64;
                (lo + rng.below(width) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A a, B b) (A a, B b, C c) (A a, B b, C c, D d));

/// `prop::collection` and friends.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};

        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// A strategy for vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = Strategy::generate(&self.size, rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Drives one property: generates cases, reruns on rejects, panics with
/// the case description on the first failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(10).max(100);
    while passed < cases {
        if attempts >= max_attempts {
            panic!(
                "property {name}: too many prop_assume! rejections \
                 ({passed}/{cases} cases after {attempts} attempts)"
            );
        }
        attempts += 1;
        let (desc, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed: {msg}\n  inputs: {desc}")
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            $crate::run_cases(stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                let mut desc = ::std::string::String::new();
                $(
                    desc.push_str(stringify!($arg));
                    desc.push_str(" = ");
                    desc.push_str(&::std::format!("{:?}; ", &$arg));
                )+
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (desc, outcome)
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i32..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn string_pattern_charset(s in "[ab]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'), "bad string {s:?}");
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec("[xy]{1,2}", 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuple_strategies_compose(
            pair in (0u8..4, 10u64..20),
            v in prop::collection::vec((0u8..4, "[ab]{1,1}", 5i32..8), 1..4),
        ) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            for (n, s, i) in &v {
                prop_assert!(*n < 4 && s.len() == 1 && (5..8).contains(i));
            }
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn proptest_seed_env_changes_the_stream() {
        // Env vars are process-global; serialize against other tests by
        // running both halves inside one test.
        let base = crate::TestRng::from_name("seed_probe").next_u64();
        std::env::set_var("PROPTEST_SEED", "20050405");
        let seeded = crate::TestRng::from_name("seed_probe").next_u64();
        std::env::set_var("PROPTEST_SEED", "not-a-number");
        let named = crate::TestRng::from_name("seed_probe").next_u64();
        std::env::remove_var("PROPTEST_SEED");
        let back = crate::TestRng::from_name("seed_probe").next_u64();
        assert_ne!(base, seeded);
        assert_ne!(base, named);
        assert_ne!(seeded, named);
        assert_eq!(base, back);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", |_rng| {
            (
                "n = 0".to_string(),
                Err(crate::TestCaseError::fail("forced failure")),
            )
        });
    }
}
